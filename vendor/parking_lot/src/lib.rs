//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Exposes the subset this workspace uses: [`Mutex`] whose `lock` returns a
//! guard directly (no poison `Result`), and [`Condvar`] whose `wait` takes
//! the guard by `&mut` rather than by value. Poisoned std locks are
//! recovered transparently, matching parking_lot's no-poisoning semantics.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive (mirrors `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership through an `&mut` reference (parking_lot's signature).
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable (mirrors `parking_lot::Condvar`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the lock held by `guard` and blocks until
    /// notified, reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_notify_round_trip() {
        let state = Arc::new((Mutex::new(0u32), Condvar::new()));
        let s2 = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            *g = 1;
            cv.notify_all();
            while *g != 2 {
                cv.wait(&mut g);
            }
        });
        let (m, cv) = &*state;
        {
            let mut g = m.lock();
            while *g != 1 {
                cv.wait(&mut g);
            }
            *g = 2;
            cv.notify_all();
        }
        handle.join().unwrap();
        assert_eq!(*m.lock(), 2);
    }
}
