//! Offline stand-in for `rayon`, exposing the subset this workspace uses
//! with genuine data parallelism built on `std::thread::scope`.
//!
//! Covered surface:
//! - `(a..b).into_par_iter()` over `u32` / `u64` / `usize` ranges, with
//!   `.map(..)`, `.map_init(..)`, `.for_each(..)`, `.collect()`, `.sum()`,
//!   and `.reduce(identity, op)` consumers;
//! - `slice.par_chunks(n)` with the same consumers;
//! - `rayon::scope(|s| s.spawn(..))` fork–join scopes;
//! - `ThreadPoolBuilder` / `ThreadPool::install` (implemented as a
//!   thread-count override for the duration of the closure);
//! - `current_num_threads()`.
//!
//! Work is split into at most `current_num_threads()` contiguous index
//! chunks, one OS thread per chunk. That preserves rayon's semantics for
//! every call site in this workspace (all of which are order-independent
//! or collect in index order) while keeping the implementation small
//! enough to audit. Results are always recombined in index order, so
//! `collect` is deterministic regardless of thread count.

use std::cell::Cell;
use std::fmt;
use std::ops::Range;

/// Re-exports that `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

// ---------------------------------------------------------------------------
// Thread-count configuration.

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; 0 = unset.
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The number of worker threads parallel operations will use, honouring an
/// enclosing [`ThreadPool::install`].
#[must_use]
pub fn current_num_threads() -> usize {
    let o = POOL_THREADS.with(Cell::get);
    if o > 0 {
        o
    } else {
        default_num_threads()
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]. Never produced by this
/// shim; exists for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _private: (),
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (0 = use the machine default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads,
        })
    }
}

/// A scoped thread-count configuration (mirrors `rayon::ThreadPool`).
///
/// The shim spawns threads per parallel call rather than keeping a resident
/// pool, so "installing" the pool just pins [`current_num_threads`] for the
/// duration of the closure — which is the only property the workspace's
/// call sites rely on.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let threads = if self.threads == 0 {
            default_num_threads()
        } else {
            self.threads
        };
        let _restore = Restore(POOL_THREADS.with(|c| c.replace(threads)));
        op()
    }
}

// ---------------------------------------------------------------------------
// Fork–join scopes.

/// A fork–join scope handle (mirrors `rayon::Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `body` onto the scope; all spawned work completes before
    /// [`scope`] returns.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Creates a fork–join scope: `f` may spawn tasks borrowing from the
/// enclosing stack frame; all of them finish before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

// ---------------------------------------------------------------------------
// Indexed parallel sources.

/// A source of `len()` independent items addressable by index.
///
/// This is the shim's replacement for rayon's producer/consumer machinery:
/// every parallel iterator in the workspace is an indexed source plus a
/// per-item mapping, so chunked evaluation over index ranges is sufficient.
pub trait IndexedSource: Sync {
    /// The item produced for each index.
    type Item;
    /// Number of items.
    fn len(&self) -> usize;
    /// Produces the item at `index` (< `len()`).
    fn item(&self, index: usize) -> Self::Item;
    /// True if the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Integer index types usable as range endpoints.
pub trait RangeIndex: Copy + Send + Sync {
    /// `self + offset`, assuming no overflow (ranges are validated).
    fn offset(self, by: usize) -> Self;
    /// Distance from `self` to `end` as a `usize`, saturating at 0.
    fn distance_to(self, end: Self) -> usize;
}

macro_rules! impl_range_index {
    ($($t:ty),*) => {$(
        impl RangeIndex for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn offset(self, by: usize) -> Self {
                self + by as $t
            }
            fn distance_to(self, end: Self) -> usize {
                if end > self { (end - self) as usize } else { 0 }
            }
        }
    )*};
}

impl_range_index!(u32, u64, usize);

/// Indexed source over an integer range.
pub struct RangeSource<T> {
    start: T,
    len: usize,
}

impl<T: RangeIndex> IndexedSource for RangeSource<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.len
    }
    fn item(&self, index: usize) -> T {
        self.start.offset(index)
    }
}

/// Indexed source over fixed-size sub-slices of a slice.
pub struct ChunkSource<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> IndexedSource for ChunkSource<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    fn item(&self, index: usize) -> &'a [T] {
        let lo = index * self.chunk;
        let hi = (lo + self.chunk).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// Conversion into a parallel iterator (mirrors
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The parallel-iterator type produced.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_into_par_iter_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Iter = ParIter<RangeSource<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                ParIter {
                    source: RangeSource {
                        start: self.start,
                        len: self.start.distance_to(self.end),
                    },
                }
            }
        }
    )*};
}

impl_into_par_iter_range!(u32, u64, usize);

/// `par_chunks` entry point for slices (mirrors `rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of length `chunk` (the last
    /// chunk may be shorter).
    fn par_chunks(&self, chunk: usize) -> ParIter<ChunkSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk: usize) -> ParIter<ChunkSource<'_, T>> {
        assert!(chunk > 0, "chunk size must be positive");
        ParIter {
            source: ChunkSource { slice: self, chunk },
        }
    }
}

// ---------------------------------------------------------------------------
// Chunked execution engine.

/// Splits `0..len` into at most `current_num_threads()` contiguous chunks,
/// evaluates each on its own thread, and returns per-chunk results in index
/// order. Runs inline when one thread suffices.
fn run_chunks<R, F>(len: usize, eval: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().clamp(1, len);
    if threads == 1 {
        return vec![eval(0, 0..len)];
    }
    let bounds: Vec<Range<usize>> = (0..threads)
        .map(|t| (len * t / threads)..(len * (t + 1) / threads))
        .collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads - 1);
        let eval = &eval;
        for (t, range) in bounds.iter().enumerate().skip(1) {
            let range = range.clone();
            handles.push(s.spawn(move || eval(t, range)));
        }
        let first = eval(0, bounds[0].clone());
        let mut out = Vec::with_capacity(threads);
        out.push(first);
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// Collection types constructible from ordered parallel results (mirrors
/// `rayon::iter::FromParallelIterator` for the cases the workspace uses).
pub trait FromParallelIterator<T> {
    /// Builds the collection from items already in index order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// A parallel iterator over an indexed source.
pub struct ParIter<S> {
    source: S,
}

impl<S: IndexedSource> ParIter<S> {
    /// Applies `f` to every item in parallel.
    pub fn map<F, R>(self, f: F) -> MapIter<S, F>
    where
        F: Fn(S::Item) -> R + Sync,
    {
        MapIter {
            source: self.source,
            f,
        }
    }

    /// Like [`ParIter::map`], with a per-worker scratch value created by
    /// `init` (mirrors rayon's `map_init`).
    pub fn map_init<I, T, F, R>(self, init: I, f: F) -> MapInitIter<S, I, F>
    where
        I: Fn() -> T + Sync,
        F: Fn(&mut T, S::Item) -> R + Sync,
    {
        MapInitIter {
            source: self.source,
            init,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let source = &self.source;
        run_chunks(source.len(), |_, range| {
            for i in range {
                f(source.item(i));
            }
        });
    }
}

/// Result of [`ParIter::map`].
pub struct MapIter<S, F> {
    source: S,
    f: F,
}

impl<S, F, R> MapIter<S, F>
where
    S: IndexedSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    /// Collects mapped items in index order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let source = &self.source;
        let f = &self.f;
        let chunks = run_chunks(source.len(), |_, range| {
            range.map(|i| f(source.item(i))).collect::<Vec<R>>()
        });
        C::from_ordered(chunks.into_iter().flatten().collect())
    }

    /// Sums mapped items.
    pub fn sum<T>(self) -> T
    where
        T: std::iter::Sum<R> + std::iter::Sum<T> + Send,
    {
        let source = &self.source;
        let f = &self.f;
        run_chunks(source.len(), |_, range| {
            range.map(|i| f(source.item(i))).sum::<T>()
        })
        .into_iter()
        .sum()
    }

    /// Reduces mapped items with `op`, using `identity` as the neutral
    /// element (mirrors rayon's `reduce`: `op` must be associative and
    /// `identity()` a left/right identity for it).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let source = &self.source;
        let f = &self.f;
        let op = &op;
        run_chunks(source.len(), |_, range| {
            range.map(|i| f(source.item(i))).fold(identity(), op)
        })
        .into_iter()
        .fold(identity(), op)
    }
}

/// Result of [`ParIter::map_init`].
pub struct MapInitIter<S, I, F> {
    source: S,
    init: I,
    f: F,
}

impl<S, I, T, F, R> MapInitIter<S, I, F>
where
    S: IndexedSource,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, S::Item) -> R + Sync,
    R: Send,
{
    /// Collects mapped items in index order; each worker chunk gets one
    /// scratch value from `init`.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let source = &self.source;
        let init = &self.init;
        let f = &self.f;
        let chunks = run_chunks(source.len(), |_, range| {
            let mut scratch = init();
            range
                .map(|i| f(&mut scratch, source.item(i)))
                .collect::<Vec<R>>()
        });
        C::from_ordered(chunks.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn range_map_collect_in_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn map_sum_matches_sequential() {
        let s: u64 = (0u32..10_000).into_par_iter().map(u64::from).sum();
        assert_eq!(s, 9_999 * 10_000 / 2);
    }

    #[test]
    fn map_init_counts_every_item() {
        let v: Vec<u32> = (0u32..257)
            .into_par_iter()
            .map_init(
                || 0u32,
                |acc, i| {
                    *acc += 1;
                    i
                },
            )
            .collect();
        assert_eq!(v, (0u32..257).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_reduce() {
        let data: Vec<u64> = (0..503).collect();
        let total = data
            .par_chunks(64)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 502 * 503 / 2);
    }

    #[test]
    fn for_each_visits_all() {
        let hits = AtomicU64::new(0);
        (0usize..777).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 777);
    }

    #[test]
    fn scope_joins_spawned_work() {
        let mut parts = vec![0u64; 4];
        {
            let mut rest: &mut [u64] = &mut parts;
            scope(|s| {
                for i in 0..4u64 {
                    let (head, tail) = rest.split_at_mut(1);
                    rest = tail;
                    s.spawn(move |_| head[0] = i + 1);
                }
            });
        }
        assert_eq!(parts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn scope_returns_value() {
        let out: Vec<usize> = scope(|s| {
            s.spawn(|_| {});
            vec![1, 2, 3]
        });
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(nested.install(current_num_threads), 1);
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // inverted ranges are the point
    fn empty_range_is_fine() {
        let v: Vec<u32> = (5u32..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let s: u64 = (5u64..2).into_par_iter().map(|_| 1u64).sum();
        assert_eq!(s, 0);
    }
}
