//! Offline stand-in for the `rand` crate, exposing exactly the trait
//! surface this workspace consumes: [`RngCore`], [`SeedableRng`], and the
//! [`Error`] type. The build environment has no network access to
//! crates.io, so the workspace vendors the small API subsets it needs (see
//! `vendor/` in the repository root).

use std::fmt;

/// Error type carried by [`RngCore::try_fill_bytes`].
///
/// The generators in this workspace are infallible, so this is never
/// constructed in practice; it exists for signature compatibility.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    #[must_use]
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Construction from a fixed-size seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, spreading it across the seed
    /// bytes little-endian (repeating if the seed is longer than 8 bytes).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for (i, b) in seed.as_mut().iter_mut().enumerate() {
            *b = state.to_le_bytes()[i % 8];
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bits = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bits[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_round_trips() {
        let g = Counter::seed_from_u64(0x0123_4567_89AB_CDEF);
        assert_eq!(g.0, 0x0123_4567_89AB_CDEF);
    }
}
