//! Offline stand-in for `criterion`, covering the subset the workspace's
//! benches use: `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally minimal: each benchmark runs a short
//! adaptive timing loop and prints the mean per-iteration wall-clock. The
//! point is that `cargo bench` compiles and produces comparable numbers
//! offline, not publication-grade confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque measurement of how much work one iteration performs.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Times closures handed to [`BenchmarkGroup::bench_function`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly (one warm-up plus a few timed samples) and
    /// records per-iteration timings.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let samples = self.target_samples.max(1);
        // Cap total measurement time so heavyweight benches stay usable.
        let budget = Duration::from_millis(500);
        let started = Instant::now();
        for _ in 0..samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > budget {
                break;
            }
        }
    }

    fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<Duration>() / self.samples.len() as u32)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput, reported alongside timings.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            // Keep the shim loop count modest regardless of requested size.
            target_samples: self.sample_size.clamp(1, 10),
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size.clamp(1, 10),
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finalizes the group (printing happens per-benchmark; this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        match b.mean() {
            Some(mean) => {
                let extra = match self.throughput {
                    Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
                        format!(" ({:.3e} elem/s)", n as f64 / mean.as_secs_f64())
                    }
                    Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
                        format!(" ({:.3e} B/s)", n as f64 / mean.as_secs_f64())
                    }
                    _ => String::new(),
                };
                println!(
                    "bench {}/{}: {:?} mean over {} samples{extra}",
                    self.name,
                    id.id,
                    mean,
                    b.samples.len()
                );
            }
            None => println!("bench {}/{}: no samples", self.name, id.id),
        }
    }
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 3,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Prevents the compiler from optimizing away a value (re-export of
/// `std::hint::black_box` under criterion's name).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10).throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_every_benchmark() {
        benches();
    }
}
