//! Offline stand-in for `proptest`, implementing the subset this workspace
//! uses: the `proptest!` macro, the `prop_assert!` family, `prop_assume!`,
//! range / tuple / `Just` / `any` strategies with `prop_map` and
//! `prop_flat_map`, and `collection::{vec, btree_set}`.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its deterministic case seed
//!   instead of a minimized input; rerunning the test replays the identical
//!   sequence, so failures stay reproducible.
//! - **Deterministic generation.** Case `i` of test `name` always draws
//!   from the same RNG stream (seeded from a hash of `name` and `i`), so
//!   results never flake across runs or machines.

use std::ops::{Range, RangeInclusive};

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub mod test_runner {
    //! Case execution: configuration, error type, deterministic RNG.

    /// Per-test configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` accepted cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case's inputs violated a `prop_assume!`; draw a fresh case.
        Reject,
        /// An assertion failed with the contained message.
        Fail(String),
    }

    /// Deterministic splitmix64 generator backing all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

        /// RNG for case number `case` of the test named `name`.
        #[must_use]
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ case.wrapping_mul(Self::GAMMA),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(Self::GAMMA);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift bound; bias is negligible for test generation.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives accepted cases until `config.cases` pass, panicking on the
    /// first failure. Rejected cases (via `prop_assume!`) are retried with
    /// fresh inputs, up to a generous global budget.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut accepted = 0u32;
        let mut attempt = 0u64;
        let max_attempts = 512 + u64::from(config.cases) * 16;
        while accepted < config.cases {
            attempt += 1;
            assert!(
                attempt <= max_attempts,
                "{name}: exceeded {max_attempts} attempts with only {accepted}/{} accepted cases \
                 (prop_assume! rejects nearly everything?)",
                config.cases
            );
            let mut rng = TestRng::for_case(name, attempt);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: case {attempt} (deterministic replay seed) failed: {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use super::{Range, RangeInclusive};

    /// A recipe for generating values (mirrors `proptest::strategy::Strategy`,
    /// minus shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<F, R>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> R,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> S,
            S: Strategy,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, R> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> R,
    {
        type Value = R;
        fn generate(&self, rng: &mut TestRng) -> R {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> S2,
        S2: Strategy,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        #[allow(clippy::cast_possible_truncation)]
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f32> {
        type Value = f32;
        #[allow(clippy::cast_possible_truncation)]
        fn generate(&self, rng: &mut TestRng) -> f32 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + (rng.unit_f64() as f32) * (hi - lo)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value over the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T` (mirrors `proptest::arbitrary::any`).
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    //! `vec` and `btree_set` collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A target size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = BTreeSet::new();
            // Collisions shrink the set; bounded retries keep generation
            // total even when the element domain is smaller than `target`.
            let mut tries = 0usize;
            while out.len() < target && tries < 16 + target * 8 {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }

    /// Ordered-set strategy (mirrors `proptest::collection::btree_set`).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} at {}:{}",
                    stringify!($cond),
                    file!(),
                    line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{} at {}:{}",
                    ::std::format!($($fmt)+),
                    file!(),
                    line!()
                ),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`: {}",
            lhs,
            rhs,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?} != {:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?} != {:?}`: {}",
            lhs,
            rhs,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Supports the forms used in this workspace: an optional leading
/// `#![proptest_config(..)]`, then `#[test]` functions whose arguments are
/// `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::core::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..50).prop_flat_map(|a| (Just(a), a..a + 10))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 5u32..17, f in 0.25f64..0.75) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        #[test]
        fn flat_map_orders(p in pair()) {
            prop_assert!(p.1 >= p.0 && p.1 < p.0 + 10);
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(0u64..100, 3..7),
                             s in prop::collection::btree_set(0u32..1000, 0..5)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(s.len() < 5);
        }

        #[test]
        fn assume_rejects(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u32..1000, 0.0f64..1.0);
        let a: Vec<_> = (0..20)
            .map(|i| strat.generate(&mut TestRng::for_case("det", i)))
            .collect();
        let b: Vec<_> = (0..20)
            .map(|i| strat.generate(&mut TestRng::for_case("det", i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic() {
        // No inner #[test] attribute: the generated fn is called directly,
        // and nested #[test] items are unnameable to the harness anyway.
        proptest! {
            fn inner(x in 0u32..1) {
                prop_assert!(x > 10);
            }
        }
        inner();
    }
}
