//! Edge-probability sensitivity study.
//!
//! §4.1 of the paper remarks that *"the probabilities of the edges have a
//! nonlinear influence on the runtime"* — their uniform-[0,1] assignment
//! versus Tang et al.'s constant 0.10 changes runtimes wholesale. This
//! example quantifies that: the same graph under four weight models, same
//! (k, ε), comparing θ, per-sample work, runtime, and the achieved spread.
//!
//! Run with: `cargo run --release -p ripples-core --example parameter_study`

use ripples_core::mt::imm_multithreaded;
use ripples_core::ImmParams;
use ripples_diffusion::{estimate_spread, DiffusionModel};
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;

fn main() {
    let spec = standin("soc-Epinions1").expect("catalog");
    let models: [(&str, WeightModel); 4] = [
        ("uniform[0,1)", WeightModel::UniformRandom { seed: 11 }),
        ("const 0.10", WeightModel::Constant(0.1)),
        ("weighted-cascade", WeightModel::WeightedCascade),
        ("trivalency", WeightModel::Trivalency { seed: 11 }),
    ];
    let k = 20u32;
    let eps = 0.5f64;
    let factory = StreamFactory::new(808);

    println!(
        "# Weight-model sensitivity: {} stand-in, k = {k}, ε = {eps}, IC",
        spec.name
    );
    println!(
        "{:<18} {:>10} {:>16} {:>10} {:>12}",
        "weights", "theta", "work/sample", "time_s", "activated"
    );
    for (label, weights) in models {
        let graph = spec.build(32, weights, false);
        let params = ImmParams::new(k, eps, DiffusionModel::IndependentCascade, 99);
        let start = std::time::Instant::now();
        let result = imm_multithreaded(&graph, &params, 0);
        let secs = start.elapsed().as_secs_f64();
        let spread = estimate_spread(
            &graph,
            DiffusionModel::IndependentCascade,
            &result.seeds,
            400,
            &factory,
        );
        println!(
            "{:<18} {:>10} {:>16.1} {:>10.3} {:>12.1}",
            label,
            result.theta,
            result.total_sample_work() as f64 / result.theta.max(1) as f64,
            secs,
            spread
        );
    }
    println!(
        "\nReading: uniform weights sit near criticality (huge RRR sets, long runtimes);\n\
         weighted-cascade and trivalency are sub-critical (cheap samples, more of them\n\
         needed per unit coverage). This is the nonlinearity §4.1 warns about — runtimes\n\
         across papers are not comparable unless the weight model matches."
    );
}
