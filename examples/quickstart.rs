//! Quickstart: find the 10 most influential vertices of a random social
//! network and check how much of the graph they actually activate.
//!
//! Run with: `cargo run --release -p ripples-core --example quickstart`

use ripples_core::{maximize_influence, ImmParams};
use ripples_diffusion::{estimate_spread, DiffusionModel};
use ripples_graph::{generators::barabasi_albert, GraphStats, WeightModel};
use ripples_rng::StreamFactory;

fn main() {
    // 1. Build (or load) a graph. Here: a 5 000-vertex Barabási–Albert
    //    network under the weighted-cascade model (p(u→v) = 1/indeg(v)),
    //    the standard sub-critical IC setting where seed choice matters.
    let graph = barabasi_albert(5_000, 4, WeightModel::WeightedCascade, false, 7);
    let stats = GraphStats::of(&graph);
    println!(
        "graph: {} vertices, {} edges, avg degree {:.2}, max degree {}",
        stats.nodes, stats.edges, stats.avg_degree, stats.max_out_degree
    );

    // 2. Run IMM: k = 10 seeds at accuracy ε = 0.5 under Independent
    //    Cascade. The result carries the paper's full instrumentation.
    let params = ImmParams::new(10, 0.5, DiffusionModel::IndependentCascade, 1);
    let result = maximize_influence(&graph, &params);
    println!(
        "IMM: θ = {} samples, coverage = {:.4}, phases: {}",
        result.theta, result.coverage_fraction, result.timers
    );
    println!("seeds: {:?}", result.seeds);

    // 3. Validate the seed set with forward Monte-Carlo simulation.
    let factory = StreamFactory::new(99);
    let spread = estimate_spread(
        &graph,
        DiffusionModel::IndependentCascade,
        &result.seeds,
        2_000,
        &factory,
    );
    let coverage_estimate = result.coverage_influence_estimate(graph.num_vertices());
    println!(
        "expected influence: {spread:.1} vertices by forward simulation \
         (RRR coverage estimator said {coverage_estimate:.1})"
    );

    // 4. Compare against naive seed choices.
    let random_seeds: Vec<u32> = (0..10).map(|i| i * 97 % graph.num_vertices()).collect();
    let random_spread = estimate_spread(
        &graph,
        DiffusionModel::IndependentCascade,
        &random_seeds,
        2_000,
        &factory,
    );
    println!(
        "random seeds reach {random_spread:.1} vertices — IMM's advantage: {:.1}×",
        spread / random_spread.max(1.0)
    );
}
