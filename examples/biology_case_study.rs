//! The paper's Section 5 case study, on a synthetic stand-in: apply
//! influence maximization to a co-expression-like network and compare the
//! seed set against classic topological measures (degree, betweenness).
//!
//! The omics datasets behind the paper's networks are not redistributable;
//! the generator reproduces their two structural ingredients (modules +
//! regulator hubs), which is what the comparison depends on. The paper's
//! headline observation — partial overlap (~30% of the top-30 degree hubs
//! also chosen by IMM) with complementary discoveries on both sides — is
//! printed at the end.
//!
//! Run with: `cargo run --release -p ripples-core --example biology_case_study`

use ripples_centrality::{
    betweenness_centrality, degree_ranking, rank_biased_overlap, ranking_from_scores,
    top_k_overlap, DegreeKind,
};
use ripples_core::mt::imm_multithreaded;
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::{coexpression, CoexpressionConfig};
use ripples_graph::WeightModel;

fn main() {
    // "Soil microbiome" stand-in: modular co-expression network with
    // metabolite hubs. Weighted-cascade probabilities model co-expression
    // strength normalized per target, the usual IC setup for such data.
    let config = CoexpressionConfig {
        modules: 25,
        module_size: 80,
        hubs: 16,
        intra_density: 0.08,
        inter_edges_per_pair: 1.2,
        hub_coverage: 0.07,
        seed: 0x501,
    };
    let graph = coexpression(&config, WeightModel::WeightedCascade, false);
    println!(
        "co-expression stand-in: {} features, {} links, {} designated hubs",
        graph.num_vertices(),
        graph.num_edges(),
        config.hubs
    );

    // IMM with k = 200, the paper's case-study seed-set size.
    let k = 200u32;
    let params = ImmParams::new(k, 0.5, DiffusionModel::IndependentCascade, 11);
    let imm = imm_multithreaded(&graph, &params, 0);
    println!(
        "IMM: θ = {}, coverage {:.3}, time {}",
        imm.theta, imm.coverage_fraction, imm.timers
    );

    // Topological comparators.
    let by_degree = degree_ranking(&graph, DegreeKind::Total);
    let by_betweenness = ranking_from_scores(&betweenness_centrality(&graph));

    let k_us = k as usize;
    let deg_overlap = top_k_overlap(&imm.seeds, &by_degree, k_us);
    let btw_overlap = top_k_overlap(&imm.seeds, &by_betweenness, k_us);
    println!("\ntop-{k} agreement with IMM seeds:");
    println!("  degree centrality      : {deg_overlap:>4} / {k}");
    println!("  betweenness centrality : {btw_overlap:>4} / {k}");

    // The paper's specific §5 statistic: of the top-30 highest-degree
    // features, how many does IMM also pick?
    let top30_hits = top_k_overlap(&imm.seeds, &by_degree, 30.min(k_us));
    println!(
        "  of the 30 highest-degree features, IMM also selects {top30_hits} \
         ({:.0}%) — the paper reports 9/30 (30%) on the soil network",
        100.0 * top30_hits as f64 / 30.0
    );

    // Rank agreement between the two topological measures, for context.
    let rbo_deg_btw = rank_biased_overlap(&by_degree[..k_us], &by_betweenness[..k_us], 0.9);
    println!("  RBO(degree, betweenness) over top-{k}: {rbo_deg_btw:.3}");

    // How many designated hub vertices does each method surface?
    let hub_base = config.modules * config.module_size;
    let hub_count = |ranking: &[u32]| {
        ranking
            .iter()
            .take(k_us)
            .filter(|&&v| v >= hub_base)
            .count()
    };
    println!("\ndesignated regulator hubs recovered in top-{k}:");
    println!(
        "  IMM         : {:>3} / {}",
        hub_count(&imm.seeds),
        config.hubs
    );
    println!(
        "  degree      : {:>3} / {}",
        hub_count(&by_degree),
        config.hubs
    );
    println!(
        "  betweenness : {:>3} / {}",
        hub_count(&by_betweenness),
        config.hubs
    );
    println!(
        "\nInterpretation (mirrors §5): IMM overlaps the topological rankings \
         partially but not fully — it surfaces additional, complementary \
         features whose influence is structural rather than local."
    );
}
