//! Distributed IMM over in-process ranks, plus the cluster-scale
//! prediction the reproduction uses in place of real MPI hardware.
//!
//! Part 1 runs the real distributed algorithm (ranks = threads, shared-
//! memory collectives) at several world sizes and verifies every rank
//! agrees on the seed set. Part 2 feeds the recorded work trace through the
//! α–β cost model to predict the strong-scaling curves of the paper's
//! Figures 7–8 on the two clusters it used.
//!
//! Run with: `cargo run --release -p ripples-core --example distributed_scaling`

use ripples_comm::{ClusterSpec, Communicator, ThreadWorld};
use ripples_core::dist::imm_distributed;
use ripples_core::scaling::{predict_distributed, WorkTrace};
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;

fn main() {
    let spec = standin("com-YouTube").expect("catalog entry");
    let graph = spec.build(64, WeightModel::UniformRandom { seed: 3 }, false);
    println!(
        "# {} stand-in: {} vertices, {} edges",
        spec.name,
        graph.num_vertices(),
        graph.num_edges()
    );
    let params = ImmParams::new(25, 0.5, DiffusionModel::IndependentCascade, 8);

    // --- Part 1: real distributed execution on in-process ranks ---------
    println!("\n## real execution (one thread per rank, shared-memory collectives)");
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>12}",
        "ranks", "theta", "seeds[0..3]", "allreduces", "bytes_moved"
    );
    let mut reference: Option<Vec<u32>> = None;
    for world_size in [1u32, 2, 4] {
        let world = ThreadWorld::new(world_size);
        let outputs = world.run(|comm| {
            let r = imm_distributed(comm, &graph, &params);
            (r, comm.stats())
        });
        let (first, stats) = &outputs[0];
        for (r, _) in &outputs {
            assert_eq!(r.seeds, first.seeds, "ranks disagreed on the seed set");
        }
        if let Some(ref expect) = reference {
            assert_eq!(&first.seeds, expect, "world size changed the answer");
        } else {
            reference = Some(first.seeds.clone());
        }
        println!(
            "{:>6} {:>10} {:>12} {:>14} {:>12}",
            world_size,
            first.theta,
            format!("{:?}", &first.seeds[..3.min(first.seeds.len())]),
            stats.allreduce_calls,
            stats.bytes_moved
        );
    }
    println!("all world sizes returned the identical seed set ✓");

    // --- Part 2: cluster-scale prediction from the recorded trace --------
    let world = ThreadWorld::new(1);
    let result = world
        .run(|comm| imm_distributed(comm, &graph, &params))
        .pop()
        .expect("one rank");
    let trace = WorkTrace::from_result(&result, graph.num_vertices(), params.k, 4);
    for cluster in [ClusterSpec::puma(), ClusterSpec::edison()] {
        let nodes: &[u32] = if cluster.name == "puma" {
            &[2, 4, 8, 16]
        } else {
            &[64, 128, 256, 512, 1024]
        };
        println!(
            "\n## predicted strong scaling on {} ({} threads/node, α–β model)",
            cluster.name, cluster.threads_per_node
        );
        println!(
            "{:>7} {:>12} {:>12} {:>12} {:>12} {:>9}",
            "nodes", "sample_s", "select_s", "comm_s", "total_s", "speedup"
        );
        let points = predict_distributed(&trace, &cluster, nodes);
        let base = points[0].total_s();
        for p in &points {
            println!(
                "{:>7} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>8.2}x",
                p.units,
                p.sample_s,
                p.select_s,
                p.comm_s,
                p.total_s(),
                base / p.total_s()
            );
        }
    }
    println!(
        "\nShapes to expect (paper Figures 7–8): sampling shrinks with node \
         count while the All-Reduce term grows logarithmically, so speedup \
         saturates — earlier for LT (tiny samples) than for IC."
    );
}
