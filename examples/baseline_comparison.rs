//! IMM versus the classic Monte-Carlo greedy (Kempe et al. 2003 with CELF
//! lazy evaluation): same quality, orders of magnitude apart in cost.
//!
//! This is the comparison that motivates the whole RIS/IMM line of work —
//! the paper's related-work §2 recounts it. On a graph small enough for the
//! MC greedy to finish, both methods should land on seed sets of nearly
//! equal expected influence, while IMM evaluates no cascades at all during
//! selection.
//!
//! Run with: `cargo run --release -p ripples-core --example baseline_comparison`

use ripples_core::celf::celf_greedy;
use ripples_core::seq::immopt_sequential;
use ripples_core::ImmParams;
use ripples_diffusion::{estimate_spread, DiffusionModel};
use ripples_graph::generators::erdos_renyi;
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;

fn main() {
    let graph = erdos_renyi(
        1_000,
        8_000,
        WeightModel::UniformRandom { seed: 44 },
        false,
        13,
    );
    let k = 10u32;
    let model = DiffusionModel::IndependentCascade;
    println!(
        "graph: {} vertices, {} edges; k = {k}, model = {model}",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Monte-Carlo greedy with CELF (500 cascades per oracle call).
    let start = std::time::Instant::now();
    let celf = celf_greedy(&graph, model, k, 500, 5);
    let celf_secs = start.elapsed().as_secs_f64();

    // IMM at the paper's default accuracy.
    let params = ImmParams::new(k, 0.5, model, 5);
    let start = std::time::Instant::now();
    let imm = immopt_sequential(&graph, &params);
    let imm_secs = start.elapsed().as_secs_f64();

    // Score both seed sets with an independent simulator.
    let factory = StreamFactory::new(777);
    let trials = 3_000;
    let celf_spread = estimate_spread(&graph, model, &celf.seeds, trials, &factory);
    let imm_spread = estimate_spread(&graph, model, &imm.seeds, trials, &factory);

    println!(
        "\n{:<22} {:>12} {:>14} {:>16}",
        "method", "time_s", "influence", "oracle calls"
    );
    println!(
        "{:<22} {:>12.3} {:>14.1} {:>16}",
        "CELF greedy (MC)", celf_secs, celf_spread, celf.evaluations
    );
    println!(
        "{:<22} {:>12.3} {:>14.1} {:>16}",
        "IMM (RRR sampling)",
        imm_secs,
        imm_spread,
        format!("{} RRR sets", imm.theta)
    );
    let quality = imm_spread / celf_spread.max(1.0);
    println!(
        "\nIMM reaches {:.1}% of the MC-greedy influence at {:.1}× its speed.",
        100.0 * quality,
        celf_secs / imm_secs.max(1e-9)
    );
    assert!(
        quality > 0.9,
        "IMM quality dropped below 90% of the greedy baseline"
    );
}
