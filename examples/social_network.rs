//! Social-network campaign planning: sweep the seed-set size k under both
//! diffusion models and report the activation each budget buys — the
//! trade-off curve of the paper's Figure 1.
//!
//! Run with: `cargo run --release -p ripples-core --example social_network`

use ripples_core::mt::imm_multithreaded;
use ripples_core::ImmParams;
use ripples_diffusion::{estimate_spread, DiffusionModel};
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;

fn main() {
    // The soc-Epinions1 stand-in at a laptop-friendly scale.
    let spec = standin("soc-Epinions1").expect("catalog entry");
    let graph = spec.build(32, WeightModel::UniformRandom { seed: 5 }, false);
    let graph_lt = spec.build(32, WeightModel::WeightedCascade, true);
    println!(
        "# {} stand-in: {} vertices, {} edges",
        spec.name,
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:>6} {:>6} {:>12} {:>14} {:>10}",
        "model", "k", "theta", "activated", "time_s"
    );

    let factory = StreamFactory::new(31);
    for model in [
        DiffusionModel::IndependentCascade,
        DiffusionModel::LinearThreshold,
    ] {
        let g = match model {
            DiffusionModel::IndependentCascade => &graph,
            DiffusionModel::LinearThreshold => &graph_lt,
        };
        for k in [5u32, 10, 25, 50] {
            let params = ImmParams::new(k, 0.5, model, 17);
            let start = std::time::Instant::now();
            let result = imm_multithreaded(g, &params, 0);
            let secs = start.elapsed().as_secs_f64();
            let spread = estimate_spread(g, model, &result.seeds, 500, &factory);
            println!(
                "{:>6} {:>6} {:>12} {:>14.1} {:>10.3}",
                model.tag(),
                k,
                result.theta,
                spread,
                secs
            );
        }
    }
    println!(
        "\nNote: activation grows sub-linearly in k (submodularity) and LT \
         cascades are smaller than IC — the two qualitative facts the paper's \
         Figure 1 and §4.2 rely on."
    );
}
