//! The Table 2 storage-layout invariants: the compact one-direction layout
//! (IMMOPT) must use substantially less RRR memory than the two-direction
//! hypergraph layout (IMM baseline), at identical output.

use ripples_core::seq::{imm_baseline, immopt_sequential};
use ripples_core::ImmParams;
use ripples_diffusion::{DiffusionModel, HyperGraph, RrrCollection};
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;

#[test]
fn immopt_saves_memory_on_standins() {
    // The paper reports 18–58% savings across Table 2. Exercise a couple of
    // stand-ins (at reduced size) and require savings in a generous band.
    for name in ["cit-HepTh", "com-DBLP"] {
        let spec = standin(name).unwrap();
        let g = spec.build(
            spec.default_divisor * 8,
            WeightModel::UniformRandom { seed: 3 },
            false,
        );
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 7);
        let baseline = imm_baseline(&g, &p);
        let opt = immopt_sequential(&g, &p);
        assert_eq!(baseline.seeds, opt.seeds, "{name}: outputs must agree");
        let savings =
            1.0 - opt.memory.peak_rrr_bytes as f64 / baseline.memory.peak_rrr_bytes as f64;
        assert!(
            savings > 0.10,
            "{name}: savings {:.1}% below the paper's band (baseline {} vs opt {})",
            100.0 * savings,
            baseline.memory.peak_rrr_bytes,
            opt.memory.peak_rrr_bytes
        );
    }
}

#[test]
fn hypergraph_layout_roughly_doubles_association_storage() {
    // Direct structural check, independent of the full algorithm: the
    // inverted index stores every (sample, vertex) association a second
    // time.
    let mut c = RrrCollection::new();
    for i in 0..1000u32 {
        let base = (i * 37) % 4000;
        c.push(&[base, base + 1, base + 2, base + 3]);
    }
    let compact = c.resident_bytes();
    let hyper = HyperGraph::build(c, 5000);
    let two_dir = hyper.resident_bytes();
    assert!(
        two_dir as f64 > 1.5 * compact as f64,
        "two-direction {two_dir} not ≫ one-direction {compact}"
    );
}

#[test]
fn selection_engines_trade_memory_for_speed_consistently() {
    // The hypergraph's raison d'être (Tang): selection via the inverted
    // index touches only the covered samples. Verify the outputs stay
    // identical while the index-driven engine performs strictly less
    // scanning (proxied here by wall-clock being finite and outputs equal;
    // the detailed perf comparison lives in benches/ablation_storage.rs).
    let spec = standin("cit-HepTh").unwrap();
    let g = spec.build(64, WeightModel::UniformRandom { seed: 5 }, false);
    let p = ImmParams::new(8, 0.5, DiffusionModel::IndependentCascade, 4);
    let a = imm_baseline(&g, &p);
    let b = immopt_sequential(&g, &p);
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.theta, b.theta);
    assert!(a.memory.peak_rrr_bytes > b.memory.peak_rrr_bytes);
}
