//! Acceptance test for the run-report observability layer: all four IMM
//! entry points (sequential, multithreaded, distributed-replicated,
//! distributed-partitioned) must return populated [`RunReport`]s, and the
//! deterministic counters — samples generated, total RRR entries, θ
//! estimation rounds — must be *identical* across thread counts and rank
//! counts for the same seed. That invariance is what makes the counters
//! trustworthy for cross-configuration regression comparisons.

use ripples_comm::{SelfComm, ThreadWorld};
use ripples_core::dist::imm_distributed;
use ripples_core::dist_partitioned::imm_partitioned;
use ripples_core::mt::imm_multithreaded;
use ripples_core::seq::immopt_sequential;
use ripples_core::{ImmParams, ImmResult, RunReport};
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::erdos_renyi;
use ripples_graph::{Graph, WeightModel};

fn graph() -> Graph {
    erdos_renyi(
        300,
        2400,
        WeightModel::UniformRandom { seed: 31 },
        false,
        90,
    )
}

fn params() -> ImmParams {
    ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 17)
}

/// The counters that must not depend on how the run was parallelized.
fn deterministic_counters(r: &ImmResult) -> (u64, u64, u64, u64) {
    (
        r.report.counters.samples_generated,
        r.report.counters.rrr_entries,
        r.report.counters.theta_rounds,
        r.report.counters.theta_final,
    )
}

fn assert_populated(report: &RunReport, engine: &str) {
    assert_eq!(report.engine, engine);
    assert!(
        report.counters.samples_generated > 0,
        "{engine}: no samples"
    );
    assert!(report.counters.rrr_entries > 0, "{engine}: no entries");
    assert!(report.counters.theta_rounds > 0, "{engine}: no rounds");
    assert!(report.counters.theta_final > 0, "{engine}: no final theta");
    assert_eq!(
        report.counters.round_budgets.len(),
        report.counters.theta_rounds as usize,
        "{engine}: one budget per round"
    );
    assert_eq!(
        report.counters.round_coverage.len(),
        report.counters.theta_rounds as usize
    );
    assert!(
        report.rrr_sizes.count() > 0,
        "{engine}: empty size histogram"
    );
    assert!(!report.spans().is_empty(), "{engine}: empty span tree");
    // The flat phase view is derived from the span tree.
    let span_nanos: u128 = report.spans().iter().map(|s| s.nanos).sum();
    assert_eq!(report.phase_timers().total().as_nanos(), span_nanos);
    assert_eq!(
        report.counters.unsorted_pushes, 0,
        "{engine}: generator bug"
    );
}

#[test]
fn all_entry_points_agree_on_deterministic_counters() {
    let g = graph();
    let p = params();

    let seq = immopt_sequential(&g, &p);
    assert_populated(&seq.report, "immopt");
    assert!(seq.report.comm.is_none(), "sequential run has no comm");
    let expect = deterministic_counters(&seq);
    assert_eq!(seq.report.counters.theta_final, seq.theta as u64);
    assert_eq!(seq.report.rrr_sizes.count(), seq.theta as u64);

    // Multithreaded: identical counters at every thread count.
    for threads in [1usize, 2, 4] {
        let r = imm_multithreaded(&g, &p, threads);
        assert_populated(&r.report, "mt");
        assert_eq!(
            deterministic_counters(&r),
            expect,
            "mt at {threads} threads diverged"
        );
    }

    // Distributed (replicated graph): counters are globalized over ranks,
    // so every rank of every world size reports the same totals.
    for size in [1u32, 2, 3] {
        let world = ThreadWorld::new(size);
        let results = world.run(|comm| imm_distributed(comm, &g, &p));
        for (rank, r) in results.iter().enumerate() {
            assert_populated(&r.report, "dist");
            assert_eq!(
                deterministic_counters(r),
                expect,
                "dist rank {rank} of {size} diverged"
            );
            let comm = r.report.comm.expect("distributed run must report comm");
            assert!(comm.allreduce_calls > 0, "no collectives recorded");
        }
    }
}

#[test]
fn partitioned_counters_invariant_across_world_sizes() {
    let g = graph();
    let p = params();

    // The partitioned engine samples cooperatively (coin flips keyed by
    // (sample, vertex)), so its edge counts differ from the replicated
    // engines' BFS — but they must still be invariant across world sizes.
    let single = imm_partitioned(&SelfComm::new(), &g, &p);
    assert_populated(&single.report, "partitioned");
    let expect = deterministic_counters(&single);
    let expect_edges = single.report.counters.edges_examined;
    assert!(expect_edges > 0);

    for size in [2u32, 3] {
        let world = ThreadWorld::new(size);
        let results = world.run(|comm| imm_partitioned(comm, &g, &p));
        for (rank, r) in results.iter().enumerate() {
            assert_populated(&r.report, "partitioned");
            assert_eq!(
                deterministic_counters(r),
                expect,
                "partitioned rank {rank} of {size} diverged"
            );
            assert_eq!(
                r.report.counters.edges_examined, expect_edges,
                "partitioned rank {rank} of {size}: edge work diverged"
            );
            assert!(r.report.comm.is_some());
        }
    }
}

#[test]
fn distributed_edge_work_matches_sequential_in_indexed_mode() {
    // In IndexedStreams mode every global sample is generated exactly once
    // somewhere with an identical RNG stream, so even the *work* counter is
    // rank-count invariant and equals the sequential run's.
    let g = graph();
    let p = params();
    let seq = immopt_sequential(&g, &p);
    for size in [1u32, 3] {
        let world = ThreadWorld::new(size);
        let results = world.run(|comm| imm_distributed(comm, &g, &p));
        for r in results {
            assert_eq!(
                r.report.counters.edges_examined, seq.report.counters.edges_examined,
                "world {size}"
            );
        }
    }
}

#[test]
fn report_exports_render() {
    let g = graph();
    let p = params();
    let r = immopt_sequential(&g, &p);
    let json = r.report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"samples_generated\""));
    assert!(json.contains("\"engine\":\"immopt\""));
    let pretty = r.report.render_pretty();
    assert!(pretty.contains("EstimateTheta"));
    assert!(pretty.contains("samples"));
}
