//! End-to-end integration: full IMM pipeline on generated graphs spanning
//! all crates (graph generation → sampling → selection → forward-simulated
//! validation).

use ripples_core::mt::imm_multithreaded;
use ripples_core::seq::immopt_sequential;
use ripples_core::ImmParams;
use ripples_diffusion::{estimate_spread, DiffusionModel};
use ripples_graph::generators::{standin, standin_catalog};
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;

const TEST_DIVISOR_MULTIPLIER: u32 = 8;

#[test]
fn full_pipeline_on_every_standin() {
    // Every Table 2 graph, shrunk far below its default experiment size.
    for spec in standin_catalog() {
        let divisor = spec.default_divisor * TEST_DIVISOR_MULTIPLIER;
        let graph = spec.build(divisor, WeightModel::UniformRandom { seed: 1 }, false);
        let params = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 2);
        let result = imm_multithreaded(&graph, &params, 0);
        assert_eq!(result.seeds.len(), 4, "{}", spec.name);
        assert!(result.theta > 0, "{}", spec.name);
        assert!(
            result.coverage_fraction > 0.0 && result.coverage_fraction <= 1.0,
            "{}: coverage {}",
            spec.name,
            result.coverage_fraction
        );
        for &s in &result.seeds {
            assert!(s < graph.num_vertices(), "{}: seed out of range", spec.name);
        }
    }
}

#[test]
fn both_models_end_to_end() {
    let spec = standin("cit-HepTh").unwrap();
    for model in [
        DiffusionModel::IndependentCascade,
        DiffusionModel::LinearThreshold,
    ] {
        let lt = model == DiffusionModel::LinearThreshold;
        let graph = spec.build(32, WeightModel::UniformRandom { seed: 4 }, lt);
        let params = ImmParams::new(6, 0.5, model, 3);
        let result = immopt_sequential(&graph, &params);
        assert_eq!(result.seeds.len(), 6, "{model}");
        // LT cascades are smaller, so LT θ-coverage relations still hold.
        assert!(result.coverage_fraction > 0.0, "{model}");
    }
}

#[test]
fn imm_seeds_beat_random_seeds() {
    let spec = standin("soc-Epinions1").unwrap();
    let graph = spec.build(64, WeightModel::UniformRandom { seed: 9 }, false);
    let model = DiffusionModel::IndependentCascade;
    let params = ImmParams::new(8, 0.5, model, 5);
    let result = imm_multithreaded(&graph, &params, 0);

    let factory = StreamFactory::new(123);
    let imm_spread = estimate_spread(&graph, model, &result.seeds, 400, &factory);
    // Deterministic arbitrary picks, far from any hub bias.
    let random: Vec<u32> = (0..8u32)
        .map(|i| (i * 131 + 7) % graph.num_vertices())
        .collect();
    let random_spread = estimate_spread(&graph, model, &random, 400, &factory);
    assert!(
        imm_spread > random_spread,
        "IMM {imm_spread} should beat random {random_spread}"
    );
}

#[test]
fn coverage_estimator_tracks_forward_simulation() {
    // n·F_R(S) is an unbiased estimator of E[|I(S)|]; at ε = 0.5 the two
    // should agree within a loose factor.
    let spec = standin("cit-HepTh").unwrap();
    let graph = spec.build(32, WeightModel::UniformRandom { seed: 6 }, false);
    let model = DiffusionModel::IndependentCascade;
    let params = ImmParams::new(5, 0.5, model, 7);
    let result = imm_multithreaded(&graph, &params, 0);
    let rrr_estimate = result.coverage_influence_estimate(graph.num_vertices());
    let factory = StreamFactory::new(55);
    let simulated = estimate_spread(&graph, model, &result.seeds, 1_000, &factory);
    let ratio = rrr_estimate / simulated.max(1.0);
    assert!(
        (0.5..=2.0).contains(&ratio),
        "estimators diverged: RRR {rrr_estimate} vs MC {simulated}"
    );
}

#[test]
fn lt_produces_smaller_theta_work_than_ic() {
    // §4.2: "The LT model tends to produce very small RRR sets (when
    // compared to the IC model)". Compare total sampling work.
    let spec = standin("cit-HepTh").unwrap();
    let g_ic = spec.build(32, WeightModel::UniformRandom { seed: 6 }, false);
    let g_lt = spec.build(32, WeightModel::UniformRandom { seed: 6 }, true);
    let ic = immopt_sequential(
        &g_ic,
        &ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 7),
    );
    let lt = immopt_sequential(
        &g_lt,
        &ImmParams::new(5, 0.5, DiffusionModel::LinearThreshold, 7),
    );
    let ic_avg_work = ic.total_sample_work() as f64 / ic.theta.max(1) as f64;
    let lt_avg_work = lt.total_sample_work() as f64 / lt.theta.max(1) as f64;
    assert!(
        ic_avg_work > lt_avg_work,
        "IC per-sample work {ic_avg_work} should exceed LT {lt_avg_work}"
    );
}
