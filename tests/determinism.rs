//! Reproducibility guarantees: identical parameters must give identical
//! results across runs, engines, and thread counts.

use ripples_core::mt::imm_multithreaded;
use ripples_core::seq::{imm_baseline, immopt_sequential};
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::erdos_renyi;
use ripples_graph::{Graph, WeightModel};

fn graph() -> Graph {
    erdos_renyi(
        500,
        4000,
        WeightModel::UniformRandom { seed: 10 },
        false,
        50,
    )
}

#[test]
fn repeat_runs_are_bitwise_identical() {
    let g = graph();
    let p = ImmParams::new(7, 0.5, DiffusionModel::IndependentCascade, 42);
    let a = immopt_sequential(&g, &p);
    let b = immopt_sequential(&g, &p);
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.theta, b.theta);
    assert_eq!(a.coverage_fraction, b.coverage_fraction);
    assert_eq!(a.sample_work, b.sample_work);
}

#[test]
fn all_engines_agree_on_seeds() {
    let g = graph();
    for model in [
        DiffusionModel::IndependentCascade,
        DiffusionModel::LinearThreshold,
    ] {
        let p = ImmParams::new(5, 0.5, model, 9);
        let baseline = imm_baseline(&g, &p);
        let opt = immopt_sequential(&g, &p);
        let mt1 = imm_multithreaded(&g, &p, 1);
        let mt4 = imm_multithreaded(&g, &p, 4);
        assert_eq!(baseline.seeds, opt.seeds, "{model}: baseline vs opt");
        assert_eq!(opt.seeds, mt1.seeds, "{model}: opt vs mt(1)");
        assert_eq!(mt1.seeds, mt4.seeds, "{model}: mt(1) vs mt(4)");
        assert_eq!(baseline.theta, mt4.theta, "{model}: θ must agree");
    }
}

#[test]
fn master_seed_changes_outcome() {
    let g = graph();
    let a = immopt_sequential(
        &g,
        &ImmParams::new(7, 0.5, DiffusionModel::IndependentCascade, 1),
    );
    let b = immopt_sequential(
        &g,
        &ImmParams::new(7, 0.5, DiffusionModel::IndependentCascade, 2),
    );
    // Different randomness must be observable somewhere in the run.
    assert!(
        a.seeds != b.seeds || a.theta != b.theta || a.sample_work != b.sample_work,
        "two master seeds produced indistinguishable runs"
    );
}

#[test]
fn graph_weights_affect_runs() {
    let g1 = erdos_renyi(300, 2500, WeightModel::Constant(0.05), false, 3);
    let g2 = erdos_renyi(300, 2500, WeightModel::Constant(0.3), false, 3);
    let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 4);
    let cheap = immopt_sequential(&g1, &p);
    let expensive = immopt_sequential(&g2, &p);
    // Higher probabilities → larger RRR sets → more sampling work per set.
    let w1 = cheap.total_sample_work() as f64 / cheap.theta.max(1) as f64;
    let w2 = expensive.total_sample_work() as f64 / expensive.theta.max(1) as f64;
    assert!(w2 > w1, "p=0.3 per-sample work {w2} ≤ p=0.05 work {w1}");
}
