//! Reproducibility guarantees: identical parameters must give identical
//! results across runs, engines, and thread counts — including runs under
//! injected chaos, which must replay byte-for-byte from their fault seed.
//!
//! The chaos-replay test drives the process-global tracer, so every test in
//! this binary takes a shared lock (see `tests/tracing.rs` for the pattern).

use ripples_comm::{FaultComm, FaultPlan, ThreadWorld};
use ripples_core::dist::imm_distributed;
use ripples_core::mt::imm_multithreaded;
use ripples_core::obs::trace;
use ripples_core::seq::{imm_baseline, immopt_sequential};
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::erdos_renyi;
use ripples_graph::{Graph, WeightModel};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes tests: the tracer is process-global state.
fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

fn graph() -> Graph {
    graph_for(DiffusionModel::IndependentCascade)
}

/// LT runs need the in-weight normalization pass (the samplers reject
/// un-normalized LT input).
fn graph_for(model: DiffusionModel) -> Graph {
    let lt = model == DiffusionModel::LinearThreshold;
    erdos_renyi(500, 4000, WeightModel::UniformRandom { seed: 10 }, lt, 50)
}

#[test]
fn repeat_runs_are_bitwise_identical() {
    let _g = lock();
    let g = graph();
    let p = ImmParams::new(7, 0.5, DiffusionModel::IndependentCascade, 42);
    let a = immopt_sequential(&g, &p);
    let b = immopt_sequential(&g, &p);
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.theta, b.theta);
    assert_eq!(a.coverage_fraction, b.coverage_fraction);
    assert_eq!(a.sample_work, b.sample_work);
}

#[test]
fn all_engines_agree_on_seeds() {
    let _g = lock();
    for model in [
        DiffusionModel::IndependentCascade,
        DiffusionModel::LinearThreshold,
    ] {
        let g = graph_for(model);
        let p = ImmParams::new(5, 0.5, model, 9);
        let baseline = imm_baseline(&g, &p);
        let opt = immopt_sequential(&g, &p);
        let mt1 = imm_multithreaded(&g, &p, 1);
        let mt4 = imm_multithreaded(&g, &p, 4);
        assert_eq!(baseline.seeds, opt.seeds, "{model}: baseline vs opt");
        assert_eq!(opt.seeds, mt1.seeds, "{model}: opt vs mt(1)");
        assert_eq!(mt1.seeds, mt4.seeds, "{model}: mt(1) vs mt(4)");
        assert_eq!(baseline.theta, mt4.theta, "{model}: θ must agree");
    }
}

#[test]
fn master_seed_changes_outcome() {
    let _g = lock();
    let g = graph();
    let a = immopt_sequential(
        &g,
        &ImmParams::new(7, 0.5, DiffusionModel::IndependentCascade, 1),
    );
    let b = immopt_sequential(
        &g,
        &ImmParams::new(7, 0.5, DiffusionModel::IndependentCascade, 2),
    );
    // Different randomness must be observable somewhere in the run.
    assert!(
        a.seeds != b.seeds || a.theta != b.theta || a.sample_work != b.sample_work,
        "two master seeds produced indistinguishable runs"
    );
}

#[test]
fn graph_weights_affect_runs() {
    let _g = lock();
    let g1 = erdos_renyi(300, 2500, WeightModel::Constant(0.05), false, 3);
    let g2 = erdos_renyi(300, 2500, WeightModel::Constant(0.3), false, 3);
    let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 4);
    let cheap = immopt_sequential(&g1, &p);
    let expensive = immopt_sequential(&g2, &p);
    // Higher probabilities → larger RRR sets → more sampling work per set.
    let w1 = cheap.total_sample_work() as f64 / cheap.theta.max(1) as f64;
    let w2 = expensive.total_sample_work() as f64 / expensive.theta.max(1) as f64;
    assert!(w2 > w1, "p=0.3 per-sample work {w2} ≤ p=0.05 work {w1}");
}

/// One trace event with the timing stripped: what must replay identically.
type EventSignature = (u32, trace::EventKind, trace::TraceName, u64, u64);

/// Runs a traced chaos run and returns the per-event signatures (everything
/// but timing), plus the health counters.
fn traced_chaos_run(plan: &FaultPlan) -> (Vec<EventSignature>, u64, u64, u64) {
    let g = graph();
    let p = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 13);
    trace::start(None);
    let world = ThreadWorld::new(3);
    let mut results = world.run(|comm| {
        let faulty = FaultComm::new(comm, plan.clone());
        imm_distributed(&faulty, &g, &p)
    });
    trace::stop();
    let _ = trace::collect_all(); // drain rings left process-local
    let r = results.swap_remove(0);
    let t = r.report.trace.expect("traced run attaches a trace");
    assert_eq!(t.dropped, 0, "ring overflow would break replay comparison");
    let sig = t
        .events
        .iter()
        .map(|e| {
            (
                e.rank,
                e.event.kind,
                e.event.name,
                e.event.arg0,
                e.event.arg1,
            )
        })
        .collect();
    (
        sig,
        r.report.counters.retries,
        r.report.counters.dropped_ops,
        r.report.counters.degraded_ranks,
    )
}

#[test]
fn chaos_runs_replay_byte_identically_from_their_seed() {
    let _g = lock();
    trace::stop();
    let _ = trace::collect_all(); // flush anything a previous test left behind

    // Transient faults plus a permanent stall: the replay must reproduce
    // the retries, the rank death, and every event in between.
    let plan = FaultPlan::new(909)
        .with_drop_rate(0.03)
        .with_delay_rate(0.03)
        .with_stall(2, 10);

    let (sig_a, retries_a, dropped_a, degraded_a) = traced_chaos_run(&plan);
    let (sig_b, retries_b, dropped_b, degraded_b) = traced_chaos_run(&plan);

    assert_eq!(
        sig_a.len(),
        sig_b.len(),
        "two runs under chaos seed 909 recorded different event counts"
    );
    assert_eq!(
        sig_a, sig_b,
        "event sequences diverged (modulo timestamps) under the same chaos seed"
    );
    assert_eq!(retries_a, retries_b);
    assert_eq!(dropped_a, dropped_b);
    assert_eq!(degraded_a, degraded_b);

    // The schedule must actually have exercised the fault machinery, and
    // the retry layer must have narrated it onto the trace.
    assert!(retries_a > 0, "plan injected no retryable faults");
    assert_eq!(degraded_a, 1, "the stalled rank must die");
    let names: Vec<trace::TraceName> = sig_a.iter().map(|s| s.2).collect();
    assert!(
        names.contains(&trace::TraceName::CommRetry),
        "comm-retry marks missing from the trace"
    );
    assert!(
        names.contains(&trace::TraceName::RankDead),
        "rank-dead mark missing from the trace"
    );
}
