//! Serve-vs-batch equivalence: a resident sketch built once (sized for
//! `k_max`) answers `topk(k)` **bitwise-identically** to a fresh batch run
//! at the same master seed and `k_max` — across every select engine ×
//! `--rrr-store` backend combination, on Table 2 stand-in graphs, for
//! k ∈ {1, 10, k_max}.
//!
//! Also covered here:
//!
//! - `topk_excluding(k, banned)` equals batch selection on a sketch with
//!   the banned vertices filtered out of every sample (independent naive
//!   reference built in this file).
//! - the monotone-k prefix regression: `topk(k_small)` is a prefix of
//!   `topk(k_max)` (the latent assumption the serve mode depends on; CELF
//!   can violate it on ties, which is why the service maps `Lazy` to
//!   `Sequential` — asserted below).
//! - snapshot → restore answers every query bitwise-identically to the
//!   service that wrote the snapshot *and* to fresh batch runs, without
//!   re-sampling.

use ripples_core::seq::immopt_sequential_with_storage;
use ripples_core::{ImmParams, SampleEngine, SelectEngine};
use ripples_diffusion::{DiffusionModel, RrrCollection, RrrStore, RrrStoreKind, StorageConfig};
use ripples_graph::generators::standin;
use ripples_graph::{Graph, Vertex, WeightModel};
use ripples_serve::SketchService;

const K_MAX: u32 = 12;
/// Three distinct query sizes served from ONE resident sketch, each
/// checked bitwise against a fresh batch run.
const QUERY_KS: [u32; 3] = [1, 10, K_MAX];
const MASTER_SEED: u64 = 11;

fn standin_graph(name: &str, divisor: u32) -> Graph {
    let spec = standin(name).unwrap_or_else(|| panic!("unknown stand-in {name}"));
    spec.build(divisor, WeightModel::UniformRandom { seed: 7 }, false)
}

fn sized_params() -> ImmParams {
    ImmParams::new(1, 0.5, DiffusionModel::IndependentCascade, MASTER_SEED).with_k_max(K_MAX)
}

/// The core contract: build one resident sketch, serve the three query
/// sizes, and check each answer (and θ) bitwise against a fresh batch
/// pipeline run configured identically.
fn assert_serve_matches_batch(graph: &Graph, select: SelectEngine, kind: RrrStoreKind) {
    let params = sized_params();
    let mut svc = SketchService::build(
        graph,
        params,
        select,
        SampleEngine::Reference,
        StorageConfig::of(kind),
    );
    for k in QUERY_KS {
        let (served, report) = svc.topk(k).expect("query within k_max");
        assert_eq!(served.len(), k as usize);
        assert!(report.covered > 0, "degenerate sketch");

        let mut p = params;
        p.k = k;
        let batch = immopt_sequential_with_storage(
            graph,
            &p,
            select,
            SampleEngine::Reference,
            StorageConfig::of(kind),
        );
        assert_eq!(
            served,
            batch.seeds,
            "serve/batch divergence: {}/{} at k={k}",
            select.tag(),
            kind.tag()
        );
        assert_eq!(
            svc.theta(),
            batch.theta,
            "θ divergence: {}/{} at k={k}",
            select.tag(),
            kind.tag()
        );
    }
}

macro_rules! serve_grid {
    ($($test:ident: ($select:ident, $store:ident),)*) => {
        $(
            #[test]
            fn $test() {
                let graph = standin_graph("cit-HepTh", 96);
                assert_serve_matches_batch(
                    &graph,
                    SelectEngine::$select,
                    RrrStoreKind::$store,
                );
            }
        )*
    };
}

serve_grid! {
    sequential_flat: (Sequential, Flat),
    sequential_varint: (Sequential, Varint),
    sequential_bitpack: (Sequential, Bitpack),
    sequential_spill: (Sequential, Spill),
    partitioned_flat: (Partitioned, Flat),
    partitioned_varint: (Partitioned, Varint),
    partitioned_bitpack: (Partitioned, Bitpack),
    partitioned_spill: (Partitioned, Spill),
    hypergraph_flat: (Hypergraph, Flat),
    hypergraph_varint: (Hypergraph, Varint),
    hypergraph_bitpack: (Hypergraph, Bitpack),
    hypergraph_spill: (Hypergraph, Spill),
    fused_flat: (Fused, Flat),
    fused_varint: (Fused, Varint),
    fused_bitpack: (Fused, Bitpack),
    fused_spill: (Fused, Spill),
    auto_flat: (Auto, Flat),
    auto_varint: (Auto, Varint),
    auto_bitpack: (Auto, Bitpack),
    auto_spill: (Auto, Spill),
}

/// Second stand-in graph: one spot check per store family so the contract
/// is not a cit-HepTh artifact.
#[test]
fn epinions_sequential_flat_and_varint() {
    let graph = standin_graph("soc-Epinions1", 256);
    assert_serve_matches_batch(&graph, SelectEngine::Sequential, RrrStoreKind::Flat);
    assert_serve_matches_batch(&graph, SelectEngine::Sequential, RrrStoreKind::Varint);
}

/// The fused *sampling* kernel feeds the same resident sketch: serve and
/// batch must still agree bitwise when both use it.
#[test]
fn fused_sampler_serves_bitwise() {
    let graph = standin_graph("cit-HepTh", 96);
    let params = sized_params();
    let mut svc = SketchService::build(
        &graph,
        params,
        SelectEngine::Sequential,
        SampleEngine::Fused,
        StorageConfig::default(),
    );
    for k in QUERY_KS {
        let (served, _) = svc.topk(k).unwrap();
        let mut p = params;
        p.k = k;
        let batch = immopt_sequential_with_storage(
            &graph,
            &p,
            SelectEngine::Sequential,
            SampleEngine::Fused,
            StorageConfig::default(),
        );
        assert_eq!(served, batch.seeds, "fused-sampler divergence at k={k}");
    }
}

/// Independent naive reference for `topk_excluding`: decode every sample
/// of the resident store, drop the banned vertices, and run the ordinary
/// sequential greedy on the filtered collection.
fn filtered_reference(svc: &SketchService, n: u32, k: u32, banned: &[Vertex]) -> Vec<Vertex> {
    let mut filtered = RrrCollection::new();
    let mut buf = Vec::new();
    for i in 0..svc.store().len() {
        svc.store().decode_into(i, &mut buf);
        let kept: Vec<Vertex> = buf
            .iter()
            .copied()
            .filter(|v| !banned.contains(v))
            .collect();
        filtered.push(&kept);
    }
    let (sel, _) =
        ripples_core::select::select_with_engine(SelectEngine::Sequential, &filtered, n, k, 1);
    sel.seeds
}

/// `topk_excluding` ≡ batch selection on the vertex-filtered sketch.
#[test]
fn excluding_equals_filtered_sketch_selection() {
    let graph = standin_graph("cit-HepTh", 96);
    let mut svc = SketchService::build(
        &graph,
        sized_params(),
        SelectEngine::Sequential,
        SampleEngine::Reference,
        StorageConfig::default(),
    );
    // Ban the unconstrained winners — the most adversarial exclusion set.
    let (top, _) = svc.topk(3).unwrap();
    for k in [1u32, 4, 8] {
        let (served, _) = svc.topk_excluding(k, &top).unwrap();
        let reference = filtered_reference(&svc, graph.num_vertices(), k, &top);
        assert_eq!(served, reference, "excluding divergence at k={k}");
        for b in &top {
            assert!(!served.contains(b), "banned vertex {b} served at k={k}");
        }
    }
}

/// The monotone-k regression: every eager engine picks seed `i` with a
/// `k`-independent argmax, so `topk(k₁)` must be a prefix of `topk(k₂)`
/// for `k₁ ≤ k₂`. This is the property that lets ONE resident sketch
/// answer all k ≤ k_max consistently.
#[test]
fn topk_small_is_prefix_of_topk_max() {
    let graph = standin_graph("cit-HepTh", 96);
    for engine in [
        SelectEngine::Sequential,
        SelectEngine::Partitioned,
        SelectEngine::Hypergraph,
        SelectEngine::Fused,
        SelectEngine::Auto,
    ] {
        let mut svc = SketchService::build(
            &graph,
            sized_params(),
            engine,
            SampleEngine::Reference,
            StorageConfig::default(),
        );
        let (full, _) = svc.topk(K_MAX).unwrap();
        for k in 1..K_MAX {
            let (prefix, _) = svc.topk(k).unwrap();
            assert_eq!(
                &prefix[..],
                &full[..k as usize],
                "prefix violation: {} at k={k}",
                engine.tag()
            );
        }
    }
}

/// CELF (`Lazy`) may reorder tied seeds per k, breaking the prefix
/// property — the service documents this by mapping it to `Sequential`.
#[test]
fn lazy_engine_is_mapped_to_sequential() {
    let graph = standin_graph("cit-HepTh", 96);
    let svc = SketchService::build(
        &graph,
        sized_params(),
        SelectEngine::Lazy,
        SampleEngine::Reference,
        StorageConfig::default(),
    );
    assert_eq!(svc.select_engine(), SelectEngine::Sequential);
}

/// Snapshot → restore: the restored service answers every query size
/// bitwise-identically to the writer and to fresh batch runs, without
/// re-running sampling (its store is byte-restored, θ included).
#[test]
fn snapshot_restore_serves_bitwise_identically() {
    let graph = standin_graph("cit-HepTh", 96);
    let params = sized_params();
    for kind in [RrrStoreKind::Flat, RrrStoreKind::Varint] {
        let mut original = SketchService::build(
            &graph,
            params,
            SelectEngine::Sequential,
            SampleEngine::Reference,
            StorageConfig::of(kind),
        );
        let path = std::env::temp_dir().join(format!(
            "ripples-serve-test-{}-{}.snap",
            std::process::id(),
            kind.tag()
        ));
        original.snapshot_to(&path).expect("snapshot writes");
        let mut restored = SketchService::restore_from(&path, &graph, SelectEngine::Sequential)
            .expect("snapshot restores");
        std::fs::remove_file(&path).ok();

        assert_eq!(restored.theta(), original.theta());
        assert_eq!(restored.params(), original.params());
        for k in QUERY_KS {
            let (a, _) = original.topk(k).unwrap();
            let (b, _) = restored.topk(k).unwrap();
            assert_eq!(a, b, "restored sketch diverged at k={k} ({})", kind.tag());

            let mut p = params;
            p.k = k;
            let batch = immopt_sequential_with_storage(
                &graph,
                &p,
                SelectEngine::Sequential,
                SampleEngine::Reference,
                StorageConfig::of(kind),
            );
            assert_eq!(
                b,
                batch.seeds,
                "restored sketch diverged from batch at k={k} ({})",
                kind.tag()
            );
        }
        // Spread estimates come off the identical samples.
        let (seeds, _) = restored.topk(4).unwrap();
        let (e1, _) = original.spread_estimate(&seeds).unwrap();
        let (e2, _) = restored.spread_estimate(&seeds).unwrap();
        assert!((e1 - e2).abs() < 1e-12);
    }
}

/// Kills the serve child process even when the test panics.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Regression: one wedged TCP client (connected, silent, never closing)
/// must not starve later connections. The accept loop now puts a read
/// timeout on every session, so the wedged session errors out and the
/// next client gets served — the client's I/O failure ends its session,
/// never the process.
#[test]
fn tcp_wedged_client_does_not_starve_next_connection() {
    use std::io::{BufRead, BufReader, Write};

    let child = std::process::Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--gen",
            "er:60:240",
            "--k-max",
            "4",
            "--epsilon",
            "0.5",
            "--tcp",
            "127.0.0.1:0",
            "--read-timeout-ms",
            "300",
        ])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut guard = ChildGuard(child);

    // The startup banner carries the bound address (port 0 → ephemeral).
    let stderr = guard.0.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before listening")
            .expect("read stderr");
        if let Some(rest) = line.strip_prefix("serve: listening on ") {
            break rest.trim().to_string();
        }
    };

    // Client A connects and wedges: no bytes, no close.
    let wedged = std::net::TcpStream::connect(&addr).expect("connect wedged client");

    // Client B connects afterwards and must still be answered once A's
    // read times out (300 ms). The generous client-side timeout is only a
    // failsafe so a regression fails rather than hangs the suite.
    let mut second = std::net::TcpStream::connect(&addr).expect("connect second client");
    second
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("client timeout");
    writeln!(second, "{{\"op\":\"info\"}}").expect("send request");
    second.flush().expect("flush request");
    let mut reply = String::new();
    BufReader::new(second.try_clone().expect("clone"))
        .read_line(&mut reply)
        .expect("second client starved: no reply before client timeout");
    assert!(
        reply.contains("\"ok\":true"),
        "unexpected reply to second client: {reply}"
    );
    drop(wedged);
}
