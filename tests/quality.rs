//! Output-quality cross-validation: IMM against the Monte-Carlo greedy
//! baseline and against centrality heuristics, mirroring the validation
//! methodology of the paper's §4 ("high rank-biased overlaps") and §5.

use ripples_centrality::{degree_ranking, rank_biased_overlap, DegreeKind};
use ripples_core::celf::celf_greedy;
use ripples_core::seq::immopt_sequential;
use ripples_core::ImmParams;
use ripples_diffusion::{estimate_spread, DiffusionModel};
use ripples_graph::generators::{barabasi_albert, erdos_renyi};
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;

#[test]
fn imm_matches_celf_quality() {
    // On a graph small enough for the MC greedy, IMM at ε = 0.5 should be
    // within a few percent of the greedy's expected influence.
    let g = erdos_renyi(400, 3200, WeightModel::Constant(0.08), false, 21);
    let model = DiffusionModel::IndependentCascade;
    let k = 5;
    let celf = celf_greedy(&g, model, k, 300, 3);
    let imm = immopt_sequential(&g, &ImmParams::new(k, 0.5, model, 3));
    let factory = StreamFactory::new(404);
    let celf_spread = estimate_spread(&g, model, &celf.seeds, 2_000, &factory);
    let imm_spread = estimate_spread(&g, model, &imm.seeds, 2_000, &factory);
    assert!(
        imm_spread >= 0.9 * celf_spread,
        "IMM {imm_spread} below 90% of CELF {celf_spread}"
    );
}

#[test]
fn imm_at_least_matches_degree_heuristic() {
    // On hub-dominated networks the degree heuristic is strong; IMM must
    // not lose to it.
    let g = barabasi_albert(1500, 3, WeightModel::UniformRandom { seed: 8 }, false, 6);
    let model = DiffusionModel::IndependentCascade;
    let k = 8;
    let imm = immopt_sequential(&g, &ImmParams::new(k, 0.5, model, 11));
    let by_degree = degree_ranking(&g, DegreeKind::Out);
    let factory = StreamFactory::new(31);
    let imm_spread = estimate_spread(&g, model, &imm.seeds, 800, &factory);
    let deg_spread = estimate_spread(&g, model, &by_degree[..k as usize], 800, &factory);
    assert!(
        imm_spread >= 0.95 * deg_spread,
        "IMM {imm_spread} lost to degree heuristic {deg_spread}"
    );
}

#[test]
fn accuracy_improves_with_smaller_epsilon() {
    // The Figure 1 claim: smaller ε (feasible only with parallelism at
    // paper scale) buys equal-or-better activation. Verified in
    // expectation over an independent simulator.
    let g = barabasi_albert(800, 3, WeightModel::UniformRandom { seed: 2 }, false, 9);
    let model = DiffusionModel::IndependentCascade;
    let k = 10;
    let coarse = immopt_sequential(&g, &ImmParams::new(k, 0.7, model, 5));
    let fine = immopt_sequential(&g, &ImmParams::new(k, 0.3, model, 5));
    assert!(fine.theta > coarse.theta);
    let factory = StreamFactory::new(77);
    let coarse_spread = estimate_spread(&g, model, &coarse.seeds, 1_500, &factory);
    let fine_spread = estimate_spread(&g, model, &fine.seeds, 1_500, &factory);
    assert!(
        fine_spread >= 0.97 * coarse_spread,
        "ε=0.3 spread {fine_spread} fell below ε=0.7 spread {coarse_spread}"
    );
}

#[test]
fn independent_master_seeds_agree_in_substance() {
    // §4's validation methodology: independent randomized runs should agree
    // on the substance of the answer. Individual ranks swap freely among
    // near-tied vertices, so the robust checks are (a) overlapping seed
    // *sets* and (b) near-identical expected influence; RBO is reported for
    // the engine-identity case elsewhere (determinism tests give RBO = 1).
    let g = barabasi_albert(1200, 4, WeightModel::UniformRandom { seed: 3 }, false, 4);
    let model = DiffusionModel::IndependentCascade;
    let k = 20;
    let a = immopt_sequential(&g, &ImmParams::new(k, 0.4, model, 100));
    let b = immopt_sequential(&g, &ImmParams::new(k, 0.4, model, 200));
    let overlap = ripples_centrality::top_k_overlap(&a.seeds, &b.seeds, k as usize);
    assert!(
        overlap >= 3,
        "independent runs share only {overlap}/{k} seeds ({:?} vs {:?})",
        a.seeds,
        b.seeds
    );
    let factory = StreamFactory::new(606);
    let sa = estimate_spread(&g, model, &a.seeds, 1_000, &factory);
    let sb = estimate_spread(&g, model, &b.seeds, 1_000, &factory);
    let ratio = sa / sb.max(1.0);
    assert!(
        (0.9..=1.1).contains(&ratio),
        "independent runs differ in quality: {sa} vs {sb}"
    );
    // Identical runs must have RBO exactly 1 (sanity for the RBO metric).
    assert!((rank_biased_overlap(&a.seeds, &a.seeds, 0.9) - 1.0).abs() < 1e-9);
}

#[test]
fn imm_beats_or_matches_degree_discount() {
    // DegreeDiscount trades the guarantee for speed (paper §2, Chen et
    // al.); IMM must match or beat its spread.
    use ripples_core::heuristics::{degree_discount_ic, random_seeds};
    let g = barabasi_albert(1500, 3, WeightModel::WeightedCascade, false, 17);
    let model = DiffusionModel::IndependentCascade;
    let k = 10;
    let imm = immopt_sequential(&g, &ImmParams::new(k, 0.5, model, 8));
    let dd = degree_discount_ic(&g, k, 0.1);
    let rnd = random_seeds(&g, k, 8);
    let factory = StreamFactory::new(2025);
    let s_imm = estimate_spread(&g, model, &imm.seeds, 800, &factory);
    let s_dd = estimate_spread(&g, model, &dd, 800, &factory);
    let s_rnd = estimate_spread(&g, model, &rnd, 800, &factory);
    assert!(
        s_imm >= 0.95 * s_dd,
        "IMM {s_imm} lost to degree-discount {s_dd}"
    );
    assert!(s_dd > s_rnd, "degree-discount should beat random seeds");
}

#[test]
fn tim_plus_needs_more_samples_for_same_guarantee() {
    // The predecessor comparison at integration scale.
    use ripples_core::tim::tim_plus;
    let g = barabasi_albert(1000, 3, WeightModel::UniformRandom { seed: 4 }, false, 12);
    let p = ImmParams::new(10, 0.5, DiffusionModel::IndependentCascade, 5);
    let tim = tim_plus(&g, &p);
    let imm = immopt_sequential(&g, &p);
    assert!(
        tim.theta as f64 > 1.5 * imm.theta as f64,
        "expected TIM θ ({}) ≫ IMM θ ({})",
        tim.theta,
        imm.theta
    );
}
