//! The correctness-oracle grid: every differential and metamorphic
//! invariant, on two Table 2 stand-in graphs, under both diffusion models,
//! at three fixed master seeds.
//!
//! This is the suite to run after refactoring sampling, selection, or
//! communication code (EXPERIMENTS.md § "Verifying a refactor"):
//!
//! ```text
//! RUSTFLAGS="-C debug-assertions -C overflow-checks" \
//!     cargo test -p ripples-oracle --release
//! ```
//!
//! CI runs it in release with debug assertions and overflow checks forced
//! on, so release-profile arithmetic bugs cannot hide behind wrapping.

use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;
use ripples_oracle::{check_all_with, CheckKind, OracleConfig};

/// One grid cell: a stand-in graph scaled to a few hundred vertices, a
/// model, and a fixed master seed.
fn run_cell(name: &str, divisor: u32, model: DiffusionModel, seed: u64) {
    let spec = standin(name).unwrap_or_else(|| panic!("unknown stand-in {name}"));
    let lt_normalize = model == DiffusionModel::LinearThreshold;
    let graph = spec.build(
        divisor,
        WeightModel::UniformRandom { seed: 7 },
        lt_normalize,
    );
    assert!(graph.num_vertices() > 50, "stand-in scaled too far down");
    let params = ImmParams::new(4, 0.5, model, seed);
    let cfg = if cfg!(debug_assertions) {
        // Debug binaries are ~10× slower; keep the same invariants but
        // fewer grid points so plain `cargo test` stays fast.
        OracleConfig::quick()
    } else {
        OracleConfig::default()
    };
    let report = check_all_with(&graph, &params, &cfg);
    report.assert_ok();
    assert!(
        report.checks_passed > 40,
        "grid cell ran suspiciously few checks:\n{report}"
    );
    assert_eq!(report.seeds.len(), 4, "{report}");
    assert!(
        report
            .passed_by_kind
            .iter()
            .any(|&(k, c)| k == CheckKind::StorageEquivalence && c > 0),
        "storage-equivalence never ran:\n{report}"
    );
    assert!(
        report
            .passed_by_kind
            .iter()
            .any(|&(k, c)| k == CheckKind::QueryEquivalence && c > 0),
        "query-equivalence never ran:\n{report}"
    );
}

macro_rules! grid {
    ($($test:ident: ($graph:literal, $div:literal, $model:ident, $seed:literal),)*) => {
        $(
            #[test]
            fn $test() {
                run_cell($graph, $div, DiffusionModel::$model, $seed);
            }
        )*
    };
}

grid! {
    cit_hepth_ic_seed1: ("cit-HepTh", 96, IndependentCascade, 1),
    cit_hepth_ic_seed2: ("cit-HepTh", 96, IndependentCascade, 2),
    cit_hepth_ic_seed3: ("cit-HepTh", 96, IndependentCascade, 3),
    cit_hepth_lt_seed1: ("cit-HepTh", 96, LinearThreshold, 1),
    cit_hepth_lt_seed2: ("cit-HepTh", 96, LinearThreshold, 2),
    cit_hepth_lt_seed3: ("cit-HepTh", 96, LinearThreshold, 3),
    epinions_ic_seed1: ("soc-Epinions1", 256, IndependentCascade, 1),
    epinions_ic_seed2: ("soc-Epinions1", 256, IndependentCascade, 2),
    epinions_ic_seed3: ("soc-Epinions1", 256, IndependentCascade, 3),
    epinions_lt_seed1: ("soc-Epinions1", 256, LinearThreshold, 1),
    epinions_lt_seed2: ("soc-Epinions1", 256, LinearThreshold, 2),
    epinions_lt_seed3: ("soc-Epinions1", 256, LinearThreshold, 3),
}
