//! Property-based end-to-end invariants on randomly generated graphs and
//! parameters, spanning every crate.

use proptest::prelude::*;
use ripples_core::mt::imm_multithreaded;
use ripples_core::seq::immopt_sequential;
use ripples_core::ImmParams;
use ripples_diffusion::rrr::{generate_rrr, RrrScratch};
use ripples_diffusion::{simulate_cascade, DiffusionModel};
use ripples_graph::generators::erdos_renyi;
use ripples_graph::{Graph, WeightModel};
use ripples_rng::SplitMix64;

fn small_graph_strategy() -> impl Strategy<Value = (Graph, u64)> {
    (20u32..120, 1u64..1000, 0usize..4).prop_map(|(n, seed, density)| {
        let m = (n as usize) * (density + 1);
        (
            erdos_renyi(n, m, WeightModel::UniformRandom { seed }, false, seed),
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// IMM always returns k distinct, in-range seeds with sane coverage.
    #[test]
    fn imm_output_invariants((graph, seed) in small_graph_strategy(), k in 1u32..8) {
        let p = ImmParams::new(k, 0.5, DiffusionModel::IndependentCascade, seed);
        let r = immopt_sequential(&graph, &p);
        prop_assert_eq!(r.seeds.len() as u32, k.min(graph.num_vertices()));
        let mut sorted = r.seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), r.seeds.len(), "duplicate seeds");
        for &s in &r.seeds {
            prop_assert!(s < graph.num_vertices());
        }
        prop_assert!((0.0..=1.0).contains(&r.coverage_fraction));
        prop_assert_eq!(r.sample_work.len(), r.theta);
    }

    /// Multithreaded equals sequential for arbitrary inputs.
    #[test]
    fn mt_equals_seq((graph, seed) in small_graph_strategy(), k in 1u32..6) {
        let p = ImmParams::new(k, 0.5, DiffusionModel::IndependentCascade, seed);
        let a = immopt_sequential(&graph, &p);
        let b = imm_multithreaded(&graph, &p, 3);
        prop_assert_eq!(a.seeds, b.seeds);
        prop_assert_eq!(a.theta, b.theta);
    }

    /// Every RRR set contains its root, is sorted, deduplicated, and only
    /// holds vertices that can actually reach the root.
    #[test]
    fn rrr_structural_invariants((graph, seed) in small_graph_strategy(), root_pick in any::<u32>()) {
        let n = graph.num_vertices();
        prop_assume!(n > 0);
        let root = root_pick % n;
        let mut rng = SplitMix64::new(seed);
        let mut scratch = RrrScratch::new(n);
        for model in [DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold] {
            let s = generate_rrr(&graph, model, root, &mut rng, &mut scratch);
            prop_assert!(s.vertices.binary_search(&root).is_ok(), "root missing");
            prop_assert!(s.vertices.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
            // Reachability check: every member must reach the root in the
            // *unsampled* graph (a superset of any sampled subgraph).
            let reverse_reachable = {
                use std::collections::VecDeque;
                let mut seen = vec![false; n as usize];
                let mut q = VecDeque::new();
                seen[root as usize] = true;
                q.push_back(root);
                while let Some(v) = q.pop_front() {
                    for &u in graph.in_neighbors(v) {
                        if !seen[u as usize] {
                            seen[u as usize] = true;
                            q.push_back(u);
                        }
                    }
                }
                seen
            };
            for &v in &s.vertices {
                prop_assert!(reverse_reachable[v as usize], "{v} cannot reach root {root}");
            }
        }
    }

    /// Forward cascades only activate vertices reachable from the seeds,
    /// and always include the seeds.
    #[test]
    fn cascade_respects_reachability((graph, seed) in small_graph_strategy(), s1 in any::<u32>(), s2 in any::<u32>()) {
        let n = graph.num_vertices();
        prop_assume!(n > 0);
        let seeds = [s1 % n, s2 % n];
        let mut rng = SplitMix64::new(seed ^ 0xCA5CADE);
        for model in [DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold] {
            let out = simulate_cascade(&graph, model, &seeds, &mut rng);
            for &s in &seeds {
                prop_assert!(out.activated.contains(&s));
            }
            // Activated set must be within forward reachability of seeds.
            let reachable = {
                use std::collections::VecDeque;
                let mut seen = vec![false; n as usize];
                let mut q = VecDeque::new();
                for &s in &seeds {
                    if !seen[s as usize] {
                        seen[s as usize] = true;
                        q.push_back(s);
                    }
                }
                while let Some(v) = q.pop_front() {
                    for &u in graph.out_neighbors(v) {
                        if !seen[u as usize] {
                            seen[u as usize] = true;
                            q.push_back(u);
                        }
                    }
                }
                seen
            };
            for &v in &out.activated {
                prop_assert!(reachable[v as usize]);
            }
            // No duplicates in activation order.
            let mut sorted = out.activated.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), out.activated.len());
        }
    }

    /// Adding seeds never decreases coverage-estimated influence
    /// (monotonicity of the coverage estimator in the seed set).
    #[test]
    fn greedy_gains_are_nonincreasing((graph, seed) in small_graph_strategy()) {
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, seed);
        let r = immopt_sequential(&graph, &p);
        // Submodularity: marginal gains of greedy picks never increase.
        let gains = {
            let sel = ripples_core::select::select_seeds_sequential(
                &{
                    // Rebuild the final collection deterministically.
                    let factory = ripples_rng::StreamFactory::new(seed);
                    let mut c = ripples_diffusion::RrrCollection::new();
                    ripples_diffusion::sample_batch_sequential(
                        &graph,
                        DiffusionModel::IndependentCascade,
                        &factory,
                        0,
                        r.theta,
                        &mut c,
                    );
                    c
                },
                graph.num_vertices(),
                5,
            );
            sel.marginal_gains
        };
        for w in gains.windows(2) {
            prop_assert!(w[1] <= w[0], "marginal gains increased: {gains:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Degenerate selection inputs: θ = 0, all-empty RRR sets, k ≥ n. Every
// engine must handle them and agree with the sequential reference, and the
// fused-engine cost model must be total (defined for every input).
// ---------------------------------------------------------------------------

use ripples_core::select::{select_seeds_sequential, select_with_engine};
use ripples_core::{fused_is_profitable, SelectEngine};
use ripples_diffusion::RrrCollection;

const EAGER_ENGINES: [SelectEngine; 5] = [
    SelectEngine::Auto,
    SelectEngine::Sequential,
    SelectEngine::Partitioned,
    SelectEngine::Hypergraph,
    SelectEngine::Fused,
];

/// Collections biased toward the degenerate corners: empty collections,
/// empty member sets, and tiny vertex spaces so `k ≥ n` is common.
fn degenerate_collection_strategy() -> impl Strategy<Value = (RrrCollection, u32)> {
    (
        1u32..10,
        proptest::collection::vec(proptest::collection::btree_set(0u32..10, 0..5), 0..8),
    )
        .prop_map(|(n, sets)| {
            let mut c = RrrCollection::new();
            for s in sets {
                let members: Vec<u32> = s.into_iter().filter(|&v| v < n).collect();
                c.push(&members);
            }
            (c, n)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All engines agree with the sequential reference on degenerate
    /// collections for any k, including k far beyond n.
    #[test]
    fn degenerate_collections_all_engines_agree(
        (collection, n) in degenerate_collection_strategy(),
        k in 0u32..20,
        partitions in 1usize..5,
    ) {
        // The cost model is total: any collection, any k, no panic.
        let _ = fused_is_profitable(&collection, k);
        let reference = select_seeds_sequential(&collection, n, k);
        prop_assert!(reference.seeds.len() as u32 <= n.min(k));
        for engine in EAGER_ENGINES {
            let (sel, _) = select_with_engine(engine, &collection, n, k, partitions);
            prop_assert_eq!(
                &sel, &reference,
                "{} disagrees with sequential on θ={} n={} k={}",
                engine.tag(), collection.len(), n, k
            );
        }
        let (lazy, _) = select_with_engine(SelectEngine::Lazy, &collection, n, k, partitions);
        prop_assert_eq!(lazy.covered, reference.covered);
        prop_assert_eq!(&lazy.marginal_gains, &reference.marginal_gains);
        prop_assert_eq!(lazy.seeds.len(), reference.seeds.len());
    }
}

#[test]
fn theta_zero_collection_selects_zero_gain_seeds() {
    let empty = RrrCollection::new();
    assert!(!fused_is_profitable(&empty, 3));
    for engine in EAGER_ENGINES {
        let (sel, _) = select_with_engine(engine, &empty, 5, 3, 2);
        assert_eq!(sel.seeds, vec![0, 1, 2], "{}", engine.tag());
        assert_eq!(sel.marginal_gains, vec![0, 0, 0], "{}", engine.tag());
        assert_eq!(sel.covered, 0);
        assert_eq!(sel.fraction, 0.0);
    }
}

#[test]
fn all_empty_rrr_sets_cover_nothing() {
    let mut c = RrrCollection::new();
    for _ in 0..6 {
        c.push(&[]);
    }
    let _ = fused_is_profitable(&c, 4);
    let reference = select_seeds_sequential(&c, 4, 2);
    assert_eq!(reference.covered, 0);
    assert_eq!(reference.fraction, 0.0);
    for engine in EAGER_ENGINES {
        let (sel, _) = select_with_engine(engine, &c, 4, 2, 3);
        assert_eq!(sel, reference, "{}", engine.tag());
    }
}

#[test]
fn k_at_least_n_selects_every_vertex() {
    let mut c = RrrCollection::new();
    c.push(&[1, 2]);
    c.push(&[2]);
    for k in [3u32, 4, 50] {
        let reference = select_seeds_sequential(&c, 3, k);
        assert_eq!(reference.seeds.len(), 3, "k={k} must clamp to n");
        let mut sorted = reference.seeds.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        assert_eq!(reference.covered, 2);
        for engine in EAGER_ENGINES {
            let (sel, _) = select_with_engine(engine, &c, 3, k, 2);
            assert_eq!(sel, reference, "{} at k={k}", engine.tag());
        }
    }
}
