//! Chaos test harness (ISSUE 4 tentpole, part 3): the distributed engines
//! run end-to-end under seeded fault schedules injected by
//! [`FaultComm`], across a (fault-rate × world-size × model) grid.
//!
//! Three escalating guarantees are checked:
//!
//! 1. **Transparency** — an empty fault plan is bitwise invisible: seeds,
//!    θ, coverage, *and* the CommStats accounting match the undecorated
//!    backend at world sizes 1, 2 and 4, for both engines.
//! 2. **Invisibility of transient faults** — schedules that only drop or
//!    delay collectives are fully absorbed by the retry layer: the
//!    `Selection` is identical to the fault-free run's, while the report
//!    proves faults actually happened (`retries`/`dropped_ops` > 0).
//! 3. **Graceful degradation** — schedules that permanently stall a rank
//!    complete anyway: the blamed rank is declared dead, the report says
//!    so (`degraded_ranks` > 0), and the surviving ranks' seed set still
//!    reaches ≥95% of the fault-free run's estimated influence.
//!
//! Every schedule is a pure function of its seed, so each case reproduces
//! from the constants in this file alone.

use ripples_comm::{FaultComm, FaultPlan, ThreadWorld};
use ripples_core::dist::imm_distributed;
use ripples_core::dist_partitioned::imm_partitioned;
use ripples_core::dist_sharded::imm_sharded;
use ripples_core::ImmParams;
use ripples_diffusion::{estimate_spread, DiffusionModel};
use ripples_graph::generators::erdos_renyi;
use ripples_graph::{Graph, WeightModel};
use ripples_rng::StreamFactory;

fn graph(model: DiffusionModel) -> Graph {
    // LT runs need the in-weight normalization pass (the samplers reject
    // un-normalized LT input).
    let lt = model == DiffusionModel::LinearThreshold;
    erdos_renyi(250, 2000, WeightModel::UniformRandom { seed: 23 }, lt, 77)
}

fn params(model: DiffusionModel) -> ImmParams {
    ImmParams::new(5, 0.5, model, 11)
}

/// Runs the named engine over `world_size` ranks, optionally under `plan`,
/// and returns rank 0's result (all ranks' results are asserted identical).
fn run_engine(
    engine: &str,
    world_size: u32,
    plan: Option<&FaultPlan>,
    model: DiffusionModel,
) -> ripples_core::ImmResult {
    let g = graph(model);
    let p = params(model);
    let world = ThreadWorld::new(world_size);
    let mut results = world.run(|comm| match plan {
        Some(plan) => {
            let faulty = FaultComm::new(comm, plan.clone());
            match engine {
                "dist" => imm_distributed(&faulty, &g, &p),
                "sharded" => imm_sharded(&faulty, &g, &p),
                _ => imm_partitioned(&faulty, &g, &p),
            }
        }
        None => match engine {
            "dist" => imm_distributed(comm, &g, &p),
            "sharded" => imm_sharded(comm, &g, &p),
            _ => imm_partitioned(comm, &g, &p),
        },
    });
    let first = results.swap_remove(0);
    for (rank, r) in results.iter().enumerate() {
        assert_eq!(
            first.seeds,
            r.seeds,
            "{engine}@{world_size}: rank {} disagrees with rank 0",
            rank + 1
        );
    }
    first
}

#[test]
fn zero_fault_plan_is_bitwise_transparent() {
    let none = FaultPlan::none();
    for engine in ["dist", "partitioned", "sharded"] {
        for size in [1u32, 2, 4] {
            let bare = run_engine(engine, size, None, DiffusionModel::IndependentCascade);
            let wrapped = run_engine(
                engine,
                size,
                Some(&none),
                DiffusionModel::IndependentCascade,
            );
            assert_eq!(bare.seeds, wrapped.seeds, "{engine}@{size}: seeds");
            assert_eq!(bare.theta, wrapped.theta, "{engine}@{size}: theta");
            assert_eq!(
                bare.coverage_fraction, wrapped.coverage_fraction,
                "{engine}@{size}: coverage"
            );
            // The accounting must match too: every logical collective
            // reaches the backend exactly once through an empty plan.
            assert_eq!(
                bare.report.comm, wrapped.report.comm,
                "{engine}@{size}: CommStats must be identical through an empty plan"
            );
            assert_eq!(wrapped.report.counters.retries, 0);
            assert_eq!(wrapped.report.counters.dropped_ops, 0);
            assert_eq!(wrapped.report.counters.degraded_ranks, 0);
        }
    }
}

#[test]
fn drop_and_delay_faults_never_change_the_selection() {
    // Transient faults (drops, delays past the timeout budget) are retried
    // until the op succeeds; the payloads that finally flow are identical
    // to the fault-free run's, so the seed set must be too.
    let mut fault_runs = 0u64;
    for model in [
        DiffusionModel::IndependentCascade,
        DiffusionModel::LinearThreshold,
    ] {
        for size in [2u32, 3] {
            for (chaos_seed, rate) in [(101u64, 0.03f64), (202, 0.06)] {
                let clean = run_engine("dist", size, None, model);
                let plan = FaultPlan::new(chaos_seed)
                    .with_drop_rate(rate)
                    .with_delay_rate(rate);
                let noisy = run_engine("dist", size, Some(&plan), model);
                assert_eq!(
                    clean.seeds, noisy.seeds,
                    "{model:?}@{size} seed {chaos_seed}: drop/delay faults leaked into selection"
                );
                assert_eq!(clean.theta, noisy.theta);
                assert_eq!(
                    noisy.report.counters.degraded_ranks, 0,
                    "{model:?}@{size} seed {chaos_seed}: transient-only schedule killed a rank"
                );
                fault_runs += noisy.report.counters.retries;
            }
        }
    }
    assert!(
        fault_runs > 0,
        "the grid must actually inject faults somewhere"
    );
}

#[test]
fn partitioned_engine_absorbs_transient_faults_too() {
    let clean = run_engine("partitioned", 3, None, DiffusionModel::IndependentCascade);
    let plan = FaultPlan::new(303)
        .with_drop_rate(0.05)
        .with_delay_rate(0.05);
    let noisy = run_engine(
        "partitioned",
        3,
        Some(&plan),
        DiffusionModel::IndependentCascade,
    );
    assert_eq!(clean.seeds, noisy.seeds);
    assert_eq!(noisy.report.counters.degraded_ranks, 0);
    assert!(noisy.report.counters.retries > 0, "plan must bite");
    assert_eq!(
        noisy.report.counters.retries, noisy.report.counters.dropped_ops,
        "every retry is one attempt the fault layer failed"
    );
}

#[test]
fn rank_kill_degrades_gracefully_and_keeps_quality() {
    let model = DiffusionModel::IndependentCascade;
    let g = graph(model);
    let clean = run_engine("dist", 3, None, model);

    // Rank 2 stalls permanently from op 10 on: the retry layer must
    // exhaust its budget, declare the rank dead, and finish on survivors.
    let plan = FaultPlan::new(404).with_stall(2, 10);
    let degraded = run_engine("dist", 3, Some(&plan), model);

    assert_eq!(
        degraded.report.counters.degraded_ranks, 1,
        "the stalled rank must be declared dead"
    );
    assert!(degraded.report.counters.retries > 0);
    assert_eq!(
        degraded.seeds.len(),
        clean.seeds.len(),
        "a degraded run still returns k seeds"
    );
    assert!(
        degraded.coverage_fraction > 0.0 && degraded.coverage_fraction <= 1.0,
        "coverage must be judged against the surviving samples, got {}",
        degraded.coverage_fraction
    );

    // Quality floor: ≥95% of the fault-free estimated influence, measured
    // by the same fixed simulation streams.
    let factory = StreamFactory::new(0x5eed);
    let clean_spread = estimate_spread(&g, model, &clean.seeds, 300, &factory);
    let degraded_spread = estimate_spread(&g, model, &degraded.seeds, 300, &factory);
    assert!(
        degraded_spread >= 0.95 * clean_spread,
        "degraded spread {degraded_spread:.1} < 95% of clean spread {clean_spread:.1}"
    );
}

#[test]
fn rank_kill_in_partitioned_engine_completes() {
    let plan = FaultPlan::new(505).with_stall(1, 6);
    let degraded = run_engine(
        "partitioned",
        2,
        Some(&plan),
        DiffusionModel::IndependentCascade,
    );
    assert_eq!(degraded.report.counters.degraded_ranks, 1);
    assert_eq!(degraded.seeds.len(), 5);
}

#[test]
fn chaos_runs_reproduce_from_seed_alone() {
    // The whole point of the seeded plan: two runs under the same chaos
    // seed are indistinguishable, down to the health counters. Honors
    // RIPPLES_CHAOS_SEED so CI can roll fresh seeds while staying
    // reproducible from its log line.
    let chaos_seed: u64 = std::env::var("RIPPLES_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(606);
    let plan = FaultPlan::chaos(chaos_seed, 0.04);
    let a = run_engine("dist", 3, Some(&plan), DiffusionModel::IndependentCascade);
    let b = run_engine("dist", 3, Some(&plan), DiffusionModel::IndependentCascade);
    assert_eq!(a.seeds, b.seeds, "chaos seed {chaos_seed}");
    assert_eq!(a.theta, b.theta);
    assert_eq!(a.report.counters.retries, b.report.counters.retries);
    assert_eq!(a.report.counters.dropped_ops, b.report.counters.dropped_ops);
    assert_eq!(
        a.report.counters.degraded_ranks,
        b.report.counters.degraded_ranks
    );
    // Robustness invariants that hold at any seed: the run completes with
    // a full seed set and sane coverage.
    assert_eq!(a.seeds.len(), 5, "chaos seed {chaos_seed}");
    assert!(
        a.coverage_fraction > 0.0 && a.coverage_fraction <= 1.0,
        "chaos seed {chaos_seed}: coverage {}",
        a.coverage_fraction
    );
}

#[test]
fn sharded_engine_absorbs_transient_faults_too() {
    // The sharded engine's posted exchanges degrade to deferred (retried
    // at wait) under injection — transient faults still cannot leak into
    // the selection.
    let clean = run_engine("sharded", 3, None, DiffusionModel::IndependentCascade);
    let plan = FaultPlan::new(707)
        .with_drop_rate(0.05)
        .with_delay_rate(0.05);
    let noisy = run_engine(
        "sharded",
        3,
        Some(&plan),
        DiffusionModel::IndependentCascade,
    );
    assert_eq!(clean.seeds, noisy.seeds);
    assert_eq!(clean.theta, noisy.theta);
    assert_eq!(noisy.report.counters.degraded_ranks, 0);
    assert!(noisy.report.counters.retries > 0, "plan must bite");
}

#[test]
fn rank_kill_in_sharded_engine_completes() {
    let plan = FaultPlan::new(808).with_stall(1, 6);
    let degraded = run_engine(
        "sharded",
        2,
        Some(&plan),
        DiffusionModel::IndependentCascade,
    );
    assert_eq!(degraded.report.counters.degraded_ranks, 1);
    assert_eq!(degraded.seeds.len(), 5);
}
