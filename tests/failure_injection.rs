//! Failure injection and degenerate inputs across the public API surface.

use ripples_comm::{CommError, Communicator, FaultComm, FaultPlan, SelfComm, ThreadWorld};
use ripples_core::mt::imm_multithreaded;
use ripples_core::seq::immopt_sequential;
use ripples_core::ImmParams;
use ripples_diffusion::{estimate_spread, DiffusionModel};
use ripples_graph::io::{read_binary, read_edge_list, EdgeListOptions};
use ripples_graph::{GraphBuilder, GraphError, WeightModel};
use ripples_rng::StreamFactory;

#[test]
fn malformed_edge_lists_are_rejected_not_panicked() {
    for bad in [
        "0\n",             // missing target
        "a b\n",           // non-numeric
        "0 1 nope\n",      // bad probability
        "0 1 0.5 extra\n", // too many fields
    ] {
        let err = read_edge_list(bad.as_bytes(), EdgeListOptions::default())
            .expect_err(&format!("{bad:?} should fail"));
        assert!(matches!(err, GraphError::Parse { .. }));
    }
}

#[test]
fn corrupt_binary_is_rejected() {
    assert!(matches!(
        read_binary(&b"garbage!"[..]),
        Err(GraphError::Corrupt(_))
    ));
    assert!(matches!(
        read_binary(&b"RIPGRPH1\x01"[..]),
        Err(GraphError::Io(_)) | Err(GraphError::Corrupt(_))
    ));
}

#[test]
fn imm_on_empty_and_tiny_graphs() {
    let p = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade, 1);
    let empty = GraphBuilder::new(0).build().unwrap();
    assert!(immopt_sequential(&empty, &p).seeds.is_empty());

    let one = GraphBuilder::new(1).build().unwrap();
    assert_eq!(immopt_sequential(&one, &p).seeds, vec![0]);

    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 1, 0.5).unwrap();
    let two = b.build().unwrap();
    let r = immopt_sequential(&two, &p);
    assert_eq!(r.seeds.len(), 2);
}

#[test]
fn imm_on_edgeless_graph() {
    // No edges: every RRR set is a single root; greedy picks arbitrary but
    // valid distinct vertices.
    let g = GraphBuilder::new(50).build().unwrap();
    let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 2);
    let r = imm_multithreaded(&g, &p, 2);
    assert_eq!(r.seeds.len(), 5);
    let mut sorted = r.seeds.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 5, "duplicate seeds on edgeless graph");
}

#[test]
fn probability_extremes() {
    // All-certain and all-impossible edges must both terminate.
    for prob in [0.0f32, 1.0] {
        let mut b = GraphBuilder::new(30);
        for u in 0..29 {
            b.add_edge(u, u + 1, prob).unwrap();
        }
        let g = b.build().unwrap();
        let p = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade, 3);
        let r = immopt_sequential(&g, &p);
        assert_eq!(r.seeds.len(), 3, "p = {prob}");
        if prob == 1.0 {
            // With certain edges the chain head dominates.
            assert!(r.seeds.contains(&0), "p=1 chain should seed the head");
        }
    }
}

#[test]
fn disconnected_components_all_reachable() {
    // Two disjoint cliques: k = 2 should seed both (one each), not two in
    // one.
    let mut b = GraphBuilder::new(20);
    for base in [0u32, 10] {
        for i in 0..10u32 {
            for j in 0..10u32 {
                if i != j {
                    b.add_edge(base + i, base + j, 0.9).unwrap();
                }
            }
        }
    }
    let g = b.build().unwrap();
    let p = ImmParams::new(2, 0.5, DiffusionModel::IndependentCascade, 5);
    let r = immopt_sequential(&g, &p);
    let sides: Vec<bool> = r.seeds.iter().map(|&s| s < 10).collect();
    assert_ne!(
        sides[0], sides[1],
        "both seeds landed in one component: {:?}",
        r.seeds
    );
}

#[test]
fn spread_estimation_handles_empty_inputs() {
    let g = GraphBuilder::new(10).build().unwrap();
    let f = StreamFactory::new(1);
    assert_eq!(
        estimate_spread(&g, DiffusionModel::IndependentCascade, &[], 100, &f),
        0.0
    );
    let empty = GraphBuilder::new(0).build().unwrap();
    assert_eq!(
        estimate_spread(&empty, DiffusionModel::IndependentCascade, &[], 100, &f),
        0.0
    );
}

#[test]
fn truncated_payloads_surface_as_comm_errors_not_panics() {
    // A guaranteed-truncation schedule: the fallible surface reports the
    // fault, the backend is never touched, and the local buffer survives
    // intact for the retry.
    let comm = FaultComm::new(SelfComm::new(), FaultPlan::new(77).with_truncate_rate(1.0));
    let mut buf = vec![3u64, 5, 8];
    let err = comm
        .try_all_reduce_sum_u64(&mut buf)
        .expect_err("truncation must surface as an error");
    assert!(matches!(err, CommError::Truncated { .. }));
    assert!(err.is_retryable());
    assert_eq!(
        buf,
        vec![3, 5, 8],
        "failed attempt must not mutate the buffer"
    );
    assert_eq!(comm.inner().stats().allreduce_calls, 0);

    // The Display message names the op, the blamed rank, and the op index
    // — enough to find the attempt in a trace.
    let msg = err.to_string();
    assert!(msg.contains("allreduce"), "got: {msg}");
    assert!(msg.contains("rank 0"), "got: {msg}");
    assert!(msg.contains("at op 0"), "got: {msg}");
    assert!(
        msg.contains("12 of 24 bytes"),
        "truncation message should carry the byte counts, got: {msg}"
    );
}

#[test]
fn dead_root_broadcast_is_an_error_not_a_panic() {
    let world = ThreadWorld::new(2);
    let errs = world.run(|c| {
        let comm = FaultComm::new(c, FaultPlan::none());
        comm.declare_dead(1);
        comm.try_broadcast_u64(1, 42)
            .expect_err("broadcast from a dead root cannot succeed")
    });
    for err in errs {
        assert!(matches!(err, CommError::DeadRoot { rank: 1, .. }));
        assert!(
            !err.is_retryable(),
            "no retry schedule recovers a dead data source"
        );
        let msg = err.to_string();
        assert!(msg.contains("broadcast"), "got: {msg}");
        assert!(msg.contains("root rank 1 is dead"), "got: {msg}");
        assert!(msg.contains("at op 0"), "got: {msg}");
    }
}

#[test]
fn weight_models_survive_extreme_graphs() {
    // Trivalency / weighted-cascade on a graph with a universal sink.
    let mut b = GraphBuilder::new(100).assign_weights(WeightModel::WeightedCascade);
    for u in 1..100 {
        b.add_arc(u, 0).unwrap();
    }
    let g = b.build().unwrap();
    assert!((g.in_weight_sum(0) - 1.0).abs() < 1e-4);
    let p = ImmParams::new(3, 0.5, DiffusionModel::LinearThreshold, 1);
    let r = immopt_sequential(&g, &p);
    assert_eq!(r.seeds.len(), 3);
}
