//! CommStats parity across communicator backends (ISSUE 2 satellite):
//! `SelfComm` and a single-rank `ThreadWorld` must report *identical*
//! collective call counts and byte totals for the same distributed run —
//! the algorithm cannot tell them apart, so neither may the accounting.
//! Bytes agree at size 1 because both charge zero (`ThreadComm` models
//! `payload × ⌈log₂ size⌉` rounds, and ⌈log₂ 1⌉ = 0 matches "no bytes
//! move inside one address space"). At larger world sizes the call counts
//! stay rank-invariant and the modeled bytes scale with the log factor.

use ripples_comm::{SelfComm, ThreadWorld};
use ripples_core::dist::imm_distributed;
use ripples_core::dist_partitioned::imm_partitioned;
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::erdos_renyi;
use ripples_graph::{Graph, WeightModel};

fn graph() -> Graph {
    erdos_renyi(
        300,
        2400,
        WeightModel::UniformRandom { seed: 31 },
        false,
        90,
    )
}

fn params() -> ImmParams {
    ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 17)
}

#[test]
fn selfcomm_and_single_rank_threadworld_report_identical_stats() {
    let g = graph();
    let p = params();

    let self_run = imm_distributed(&SelfComm::new(), &g, &p);
    let self_comm = self_run.report.comm.expect("dist run reports comm");

    let world = ThreadWorld::new(1);
    let mut results = world.run(|comm| imm_distributed(comm, &g, &p));
    let thread_run = results.pop().expect("one rank");
    let thread_comm = thread_run.report.comm.expect("dist run reports comm");

    assert_eq!(self_run.seeds, thread_run.seeds, "same run, same answer");
    assert_eq!(self_comm.allreduce_calls, thread_comm.allreduce_calls);
    assert_eq!(self_comm.barrier_calls, thread_comm.barrier_calls);
    assert_eq!(self_comm.broadcast_calls, thread_comm.broadcast_calls);
    assert_eq!(self_comm.allgather_calls, thread_comm.allgather_calls);
    assert_eq!(
        self_comm.bytes_moved, thread_comm.bytes_moved,
        "at world size 1 both backends must charge the same bytes"
    );
    assert_eq!(self_comm.bytes_moved, 0, "no bytes move inside one rank");
}

#[test]
fn partitioned_engine_parity_at_size_one() {
    let g = graph();
    let p = params();

    let self_run = imm_partitioned(&SelfComm::new(), &g, &p);
    let self_comm = self_run.report.comm.expect("partitioned run reports comm");

    let world = ThreadWorld::new(1);
    let mut results = world.run(|comm| imm_partitioned(comm, &g, &p));
    let thread_run = results.pop().expect("one rank");
    let thread_comm = thread_run
        .report
        .comm
        .expect("partitioned run reports comm");

    assert_eq!(self_run.seeds, thread_run.seeds);
    assert_eq!(self_comm.allreduce_calls, thread_comm.allreduce_calls);
    assert_eq!(self_comm.barrier_calls, thread_comm.barrier_calls);
    assert_eq!(self_comm.broadcast_calls, thread_comm.broadcast_calls);
    assert_eq!(self_comm.allgather_calls, thread_comm.allgather_calls);
    assert_eq!(self_comm.bytes_moved, thread_comm.bytes_moved);
    assert_eq!(self_comm.bytes_moved, 0);
}

#[test]
fn multi_rank_counts_are_rank_invariant_and_bytes_follow_the_model() {
    let g = graph();
    let p = params();

    // Call counts are a property of the algorithm, not the placement: the
    // single-rank counts must be preserved at every world size, on every
    // rank. Only the modeled byte volume grows (⌈log₂ size⌉ rounds).
    let baseline = imm_distributed(&SelfComm::new(), &g, &p)
        .report
        .comm
        .expect("comm stats");

    for size in [2u32, 4] {
        let world = ThreadWorld::new(size);
        let results = world.run(|comm| imm_distributed(comm, &g, &p));
        for (rank, r) in results.iter().enumerate() {
            let c = r.report.comm.expect("comm stats");
            assert_eq!(
                c.allreduce_calls, baseline.allreduce_calls,
                "rank {rank} of {size}"
            );
            assert_eq!(c.barrier_calls, baseline.barrier_calls);
            assert_eq!(c.broadcast_calls, baseline.broadcast_calls);
            assert_eq!(c.allgather_calls, baseline.allgather_calls);
            assert!(
                c.bytes_moved > 0,
                "rank {rank} of {size}: multi-rank runs must move bytes"
            );
            assert_eq!(
                c.bytes_moved,
                results[0].report.comm.expect("comm stats").bytes_moved,
                "byte accounting must agree across ranks"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Exchange-op parity (vertex-cut sharded engine).
// ---------------------------------------------------------------------------

#[test]
fn sharded_engine_parity_at_size_one() {
    use ripples_core::dist_sharded::imm_sharded;
    let g = graph();
    let p = params();

    let self_run = imm_sharded(&SelfComm::new(), &g, &p);
    let self_comm = self_run.report.comm.expect("sharded run reports comm");

    let world = ThreadWorld::new(1);
    let mut results = world.run(|comm| imm_sharded(comm, &g, &p));
    let thread_run = results.pop().expect("one rank");
    let thread_comm = thread_run.report.comm.expect("sharded run reports comm");

    assert_eq!(self_run.seeds, thread_run.seeds);
    assert_eq!(self_comm.allreduce_calls, thread_comm.allreduce_calls);
    assert_eq!(self_comm.allgather_calls, thread_comm.allgather_calls);
    assert_eq!(
        self_comm.exchange_calls, thread_comm.exchange_calls,
        "exchange accounting must not distinguish the backends"
    );
    assert!(
        self_comm.exchange_calls > 0,
        "the sharded engine must route frontiers through exchanges"
    );
    assert_eq!(self_comm.bytes_moved, thread_comm.bytes_moved);
    assert_eq!(self_comm.bytes_moved, 0, "no bytes move inside one rank");
}

#[test]
fn sharded_exchange_counts_are_rank_invariant_and_bytes_agree() {
    use ripples_core::dist_sharded::imm_sharded;
    let g = graph();
    let p = params();

    // The exchange sequence is lockstep — every rank issues the same
    // collectives — so exchange_calls is rank-invariant at any given world
    // size. (It is *not* invariant across sizes: a vertex discovered by
    // two different ranks is routed by both, which can keep the frontier
    // alive for an extra drain round that a single rank's local dedup
    // avoids.) The collective-call floor never drops below the single-rank
    // sequence. Exchange bytes are charged as each rank's *own* payload
    // (direct pairwise transfer, unlike the log-rounds symmetric
    // collectives), so ranks report different totals — each must simply be
    // nonzero once real frontiers cross the cut.
    let baseline = imm_sharded(&SelfComm::new(), &g, &p)
        .report
        .comm
        .expect("comm stats");
    assert!(baseline.exchange_calls > 0);

    for size in [2u32, 4] {
        let world = ThreadWorld::new(size);
        let results = world.run(|comm| imm_sharded(comm, &g, &p));
        let first = results[0].report.comm.expect("comm stats");
        for (rank, r) in results.iter().enumerate() {
            let c = r.report.comm.expect("comm stats");
            assert_eq!(
                c.exchange_calls, first.exchange_calls,
                "rank {rank} of {size}: exchange counts diverged"
            );
            assert!(
                c.exchange_calls >= baseline.exchange_calls,
                "rank {rank} of {size}: fewer exchanges than the single-rank sequence"
            );
            assert!(
                c.bytes_moved > 0,
                "rank {rank} of {size}: multi-rank runs must move bytes"
            );
        }
    }
}

#[test]
fn empty_fault_plan_is_bitwise_transparent_over_exchanges() {
    use ripples_comm::{Communicator, FaultComm, FaultPlan};

    // SelfComm: the wrapped exchange returns the caller's own list
    // untouched, and stats march in lockstep with a bare backend issuing
    // the identical op sequence.
    let bare = SelfComm::new();
    let sends = vec![vec![7u64, 8, 9]];
    let direct = bare.alltoallv_u64(&sends);
    let bare_handle = bare.post_exchange_u64(&sends);
    assert_eq!(bare.wait_exchange(bare_handle), direct);
    let wrapped = FaultComm::new(SelfComm::new(), FaultPlan::none());
    assert_eq!(wrapped.alltoallv_u64(&sends), direct);
    let handle = wrapped.post_exchange_u64(&sends);
    assert_eq!(wrapped.wait_exchange(handle), direct);
    assert_eq!(wrapped.stats().exchange_calls, bare.stats().exchange_calls);
    assert_eq!(wrapped.stats().bytes_moved, bare.stats().bytes_moved);

    // Multi-rank: every rank's received lists under an empty plan equal
    // the bare backend's, for both the blocking and the posted paths.
    for size in [2u32, 4] {
        let world = ThreadWorld::new(size);
        let raw = world.run(|comm| {
            let sends: Vec<Vec<u64>> = (0..comm.size())
                .map(|peer| vec![u64::from(comm.rank()) << 8 | u64::from(peer)])
                .collect();
            comm.alltoallv_u64(&sends)
        });
        let world = ThreadWorld::new(size);
        let faulted = world.run(|comm| {
            let comm = FaultComm::new(comm, FaultPlan::none());
            let sends: Vec<Vec<u64>> = (0..comm.size())
                .map(|peer| vec![u64::from(comm.rank()) << 8 | u64::from(peer)])
                .collect();
            let blocking = comm.alltoallv_u64(&sends);
            let handle = comm.post_exchange_u64(&sends);
            let posted = comm.wait_exchange(handle);
            assert_eq!(
                blocking, posted,
                "posted exchange diverged from blocking under an empty plan"
            );
            blocking
        });
        assert_eq!(
            raw, faulted,
            "size {size}: empty plan must be bitwise transparent"
        );
    }
}
