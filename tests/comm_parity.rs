//! CommStats parity across communicator backends (ISSUE 2 satellite):
//! `SelfComm` and a single-rank `ThreadWorld` must report *identical*
//! collective call counts and byte totals for the same distributed run —
//! the algorithm cannot tell them apart, so neither may the accounting.
//! Bytes agree at size 1 because both charge zero (`ThreadComm` models
//! `payload × ⌈log₂ size⌉` rounds, and ⌈log₂ 1⌉ = 0 matches "no bytes
//! move inside one address space"). At larger world sizes the call counts
//! stay rank-invariant and the modeled bytes scale with the log factor.

use ripples_comm::{SelfComm, ThreadWorld};
use ripples_core::dist::imm_distributed;
use ripples_core::dist_partitioned::imm_partitioned;
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::erdos_renyi;
use ripples_graph::{Graph, WeightModel};

fn graph() -> Graph {
    erdos_renyi(
        300,
        2400,
        WeightModel::UniformRandom { seed: 31 },
        false,
        90,
    )
}

fn params() -> ImmParams {
    ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 17)
}

#[test]
fn selfcomm_and_single_rank_threadworld_report_identical_stats() {
    let g = graph();
    let p = params();

    let self_run = imm_distributed(&SelfComm::new(), &g, &p);
    let self_comm = self_run.report.comm.expect("dist run reports comm");

    let world = ThreadWorld::new(1);
    let mut results = world.run(|comm| imm_distributed(comm, &g, &p));
    let thread_run = results.pop().expect("one rank");
    let thread_comm = thread_run.report.comm.expect("dist run reports comm");

    assert_eq!(self_run.seeds, thread_run.seeds, "same run, same answer");
    assert_eq!(self_comm.allreduce_calls, thread_comm.allreduce_calls);
    assert_eq!(self_comm.barrier_calls, thread_comm.barrier_calls);
    assert_eq!(self_comm.broadcast_calls, thread_comm.broadcast_calls);
    assert_eq!(self_comm.allgather_calls, thread_comm.allgather_calls);
    assert_eq!(
        self_comm.bytes_moved, thread_comm.bytes_moved,
        "at world size 1 both backends must charge the same bytes"
    );
    assert_eq!(self_comm.bytes_moved, 0, "no bytes move inside one rank");
}

#[test]
fn partitioned_engine_parity_at_size_one() {
    let g = graph();
    let p = params();

    let self_run = imm_partitioned(&SelfComm::new(), &g, &p);
    let self_comm = self_run.report.comm.expect("partitioned run reports comm");

    let world = ThreadWorld::new(1);
    let mut results = world.run(|comm| imm_partitioned(comm, &g, &p));
    let thread_run = results.pop().expect("one rank");
    let thread_comm = thread_run
        .report
        .comm
        .expect("partitioned run reports comm");

    assert_eq!(self_run.seeds, thread_run.seeds);
    assert_eq!(self_comm.allreduce_calls, thread_comm.allreduce_calls);
    assert_eq!(self_comm.barrier_calls, thread_comm.barrier_calls);
    assert_eq!(self_comm.broadcast_calls, thread_comm.broadcast_calls);
    assert_eq!(self_comm.allgather_calls, thread_comm.allgather_calls);
    assert_eq!(self_comm.bytes_moved, thread_comm.bytes_moved);
    assert_eq!(self_comm.bytes_moved, 0);
}

#[test]
fn multi_rank_counts_are_rank_invariant_and_bytes_follow_the_model() {
    let g = graph();
    let p = params();

    // Call counts are a property of the algorithm, not the placement: the
    // single-rank counts must be preserved at every world size, on every
    // rank. Only the modeled byte volume grows (⌈log₂ size⌉ rounds).
    let baseline = imm_distributed(&SelfComm::new(), &g, &p)
        .report
        .comm
        .expect("comm stats");

    for size in [2u32, 4] {
        let world = ThreadWorld::new(size);
        let results = world.run(|comm| imm_distributed(comm, &g, &p));
        for (rank, r) in results.iter().enumerate() {
            let c = r.report.comm.expect("comm stats");
            assert_eq!(
                c.allreduce_calls, baseline.allreduce_calls,
                "rank {rank} of {size}"
            );
            assert_eq!(c.barrier_calls, baseline.barrier_calls);
            assert_eq!(c.broadcast_calls, baseline.broadcast_calls);
            assert_eq!(c.allgather_calls, baseline.allgather_calls);
            assert!(
                c.bytes_moved > 0,
                "rank {rank} of {size}: multi-rank runs must move bytes"
            );
            assert_eq!(
                c.bytes_moved,
                results[0].report.comm.expect("comm stats").bytes_moved,
                "byte accounting must agree across ranks"
            );
        }
    }
}
