//! Integration tests for the live metrics registry (`ripples-metrics`)
//! threaded through the engines.
//!
//! The registry is process-global, so every test here serializes on one
//! gate mutex; this file is its own test binary, so other test binaries
//! cannot interfere.

use ripples_comm::ThreadWorld;
use ripples_core::dist::imm_distributed;
use ripples_core::mt::imm_multithreaded;
use ripples_core::{ImmParams, ImmResult};
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::erdos_renyi;
use ripples_graph::{Graph, WeightModel};
use ripples_metrics::{phase, Metric};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn small_graph() -> Graph {
    erdos_renyi(400, 3200, WeightModel::UniformRandom { seed: 7 }, false, 42)
}

fn params() -> ImmParams {
    ImmParams::new(8, 0.5, DiffusionModel::IndependentCascade, 0)
}

#[test]
fn concurrent_increments_sum_exactly() {
    let _g = gate();
    ripples_metrics::enable();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    ripples_metrics::add(Metric::SamplesGenerated, 3);
                }
            });
        }
    });
    assert_eq!(
        ripples_metrics::get(Metric::SamplesGenerated),
        THREADS * PER_THREAD * 3,
        "lock-free counter must not lose increments under contention"
    );
    ripples_metrics::disable();
}

#[test]
fn disabled_registry_records_nothing() {
    let _g = gate();
    ripples_metrics::disable();
    let before = ripples_metrics::snapshot();
    ripples_metrics::add(Metric::SamplesGenerated, 1_000);
    ripples_metrics::set(Metric::Phase, phase::SAMPLE);
    ripples_metrics::set_max(Metric::RrrBytes, u64::MAX);
    ripples_metrics::observe_rrr_size(64);
    let after = ripples_metrics::snapshot();
    assert_eq!(
        before.values, after.values,
        "disabled writers must be no-ops"
    );
    assert_eq!(before.hist_count, after.hist_count);
    assert_eq!(before.hist_sum, after.hist_sum);
}

#[test]
fn sampler_observes_a_real_run_and_finalizes_cleanly() {
    let _g = gate();
    let graph = small_graph();
    let p = params();
    ripples_metrics::enable();
    let handle = ripples_metrics::start_sampler(Duration::from_millis(5), None);
    let result = imm_multithreaded(&graph, &p, 2);
    let series = handle.finalize();
    let final_metric = ripples_metrics::get(Metric::SamplesGenerated);
    ripples_metrics::disable();

    assert!(!result.seeds.is_empty());
    assert!(series.samples.len() >= 3, "start + phase pulses + final");
    let last = series.samples.last().expect("series is never empty");
    assert_eq!(
        last.value(Metric::SamplesGenerated),
        final_metric,
        "finalize must capture the final registry state"
    );
    assert_eq!(
        final_metric, result.report.counters.samples_generated,
        "registry counter must agree with the RunReport counter"
    );
    assert_eq!(
        last.value(Metric::Phase),
        phase::IDLE,
        "phase gauge must return to idle after the run"
    );
    // Phase pulses guarantee the sub-cadence selection phase still shows
    // up somewhere in the series.
    let phases: Vec<u64> = series
        .samples
        .iter()
        .map(|s| s.value(Metric::Phase))
        .collect();
    assert!(phases.contains(&phase::SAMPLE), "sampling phase observed");
    assert!(phases.contains(&phase::SELECT), "selection phase observed");
    assert!(
        last.hist_count > 0,
        "RRR size histogram must have observations"
    );

    // After finalize the series is owned and immutable: nothing written
    // after shutdown can appear in it.
    ripples_metrics::enable();
    ripples_metrics::add(Metric::SamplesGenerated, 999);
    ripples_metrics::disable();
    assert_eq!(
        series
            .samples
            .last()
            .expect("non-empty")
            .value(Metric::SamplesGenerated),
        final_metric,
        "no samples or mutations after shutdown"
    );
}

#[test]
fn tiny_cadence_long_run_stays_bounded() {
    let _g = gate();
    ripples_metrics::enable();
    let handle = ripples_metrics::start_sampler_with_cap(Duration::from_millis(1), 32, None);
    std::thread::sleep(Duration::from_millis(150));
    let series = handle.finalize();
    ripples_metrics::disable();
    assert!(
        series.samples.len() <= 32,
        "sample cap must bound memory, got {}",
        series.samples.len()
    );
    assert!(series.downsample_halvings >= 1, "must have downsampled");
    // Retained samples stay time-ordered through downsampling.
    let ts: Vec<u64> = series.samples.iter().map(|s| s.t_ms).collect();
    let mut sorted = ts.clone();
    sorted.sort_unstable();
    assert_eq!(ts, sorted, "series must remain chronological");
}

#[test]
fn dist_world_sizes_reduce_consistently() {
    let _g = gate();
    let graph = small_graph();
    let p = params();
    let mut per_world = Vec::new();
    for world in [1u32, 2, 4] {
        ripples_metrics::enable();
        let results: Vec<ImmResult> =
            ThreadWorld::new(world).run(|comm| imm_distributed(comm, &graph, &p));
        let metric_total = ripples_metrics::get(Metric::SamplesGenerated);
        ripples_metrics::disable();

        // dist all-reduces its counters (`globalize_counters`), so every
        // rank's report already carries the world total — the shared
        // registry, summing each rank's local generation, must agree.
        for (rank, r) in results.iter().enumerate() {
            assert_eq!(
                metric_total, r.report.counters.samples_generated,
                "world={world} rank={rank}: shared registry must equal the globalized counter"
            );
        }
        let theta = results[0].theta as u64;
        assert!(
            metric_total >= theta,
            "world={world}: at least theta samples generated ({metric_total} < {theta})"
        );
        per_world.push((world, theta, results[0].seeds.clone()));
    }
    // The rank-reduced series describes the same computation at every
    // world size: identical theta and identical seed sets.
    let (_, theta1, seeds1) = &per_world[0];
    for (world, theta, seeds) in &per_world[1..] {
        assert_eq!(theta, theta1, "world={world}: theta must match world=1");
        assert_eq!(seeds, seeds1, "world={world}: seeds must match world=1");
    }
}
