//! Acceptance tests for the event tracer (ISSUE 2 tentpole): the disabled
//! path must record nothing, an enabled multithreaded run must export a
//! valid Chrome Trace with one track per worker, a deliberately tiny ring
//! must drop events (counted, never blocking) while still producing valid
//! JSON, and a distributed run must merge rank-tagged tracks from every
//! rank. The tracer is process-global, so every test takes a shared lock.

use ripples_comm::ThreadWorld;
use ripples_core::dist::imm_distributed;
use ripples_core::mt::imm_multithreaded;
use ripples_core::obs::trace;
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::erdos_renyi;
use ripples_graph::{Graph, WeightModel};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes tests: the tracer is process-global state.
fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

fn graph() -> Graph {
    erdos_renyi(
        300,
        2400,
        WeightModel::UniformRandom { seed: 31 },
        false,
        90,
    )
}

fn params() -> ImmParams {
    ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 17)
}

#[test]
fn disabled_tracer_records_nothing() {
    let _g = lock();
    trace::stop();
    let _ = trace::collect_all(); // flush anything a previous test left behind
    assert!(!trace::enabled());

    let r = imm_multithreaded(&graph(), &params(), 2);
    assert!(
        r.report.trace.is_none(),
        "disabled run must attach no trace"
    );
    let leftover = trace::collect_all();
    assert!(
        leftover.is_empty(),
        "disabled tracer wrote {} events",
        leftover.len()
    );
    assert_eq!(leftover.dropped, 0);
    assert!(r.report.to_json().contains("\"trace\":null"));
}

#[test]
fn mt_run_exports_valid_chrome_trace() {
    let _g = lock();
    trace::start(None);
    let r = imm_multithreaded(&graph(), &params(), 2);
    trace::stop();

    let t = r
        .report
        .trace
        .as_ref()
        .expect("traced run attaches a trace");
    assert!(!t.is_empty(), "no events recorded");
    assert_eq!(t.dropped, 0, "default ring must not drop on this tiny run");

    // The calling thread records the phase spans and selection marks.
    let names: Vec<trace::TraceName> = t.events.iter().map(|e| e.event.name).collect();
    assert!(names.contains(&trace::TraceName::EstimateTheta));
    assert!(names.contains(&trace::TraceName::SelectSeeds));
    assert!(names.contains(&trace::TraceName::SelectStep));
    assert!(names.contains(&trace::TraceName::SampleChunk));

    // The run pins a two-thread pool, so the sampler splits batches across
    // the calling thread and one spawned worker: two tracks, regardless of
    // how many CPUs the host has.
    let mut tids: Vec<u32> = t.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(
        tids.len() >= 2,
        "expected multiple worker tracks, got {tids:?}"
    );

    let json = t.to_chrome_json();
    trace::validate_json(&json).expect("chrome export must be valid JSON");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""), "no complete (span) events");
    assert!(json.contains("\"ph\":\"i\""), "no instant (mark) events");
    assert!(json.contains("\"ph\":\"M\""), "no track metadata");
    assert!(json.contains("\"dropped\":0"));

    // The run report summarizes the trace without inlining it.
    let report_json = r.report.to_json();
    assert!(report_json.contains(&format!("\"trace\":{{\"events\":{}", t.len())));
}

#[test]
fn tiny_ring_drops_events_but_still_exports() {
    let _g = lock();
    trace::start(Some(4));
    let r = imm_multithreaded(&graph(), &params(), 2);
    trace::stop();

    let t = r.report.trace.as_ref().expect("trace attached");
    assert!(t.dropped > 0, "a 4-event ring must overflow on a full run");
    assert!(!t.is_empty(), "drops must not wipe the events that did fit");

    // Every lost event is attributed to a specific worker, and the
    // attribution sums back to the total.
    assert!(!t.dropped_by_worker.is_empty());
    let attributed: u64 = t.dropped_by_worker.iter().map(|d| d.dropped).sum();
    assert_eq!(attributed, t.dropped, "per-worker drops must sum to total");

    let json = t.to_chrome_json();
    trace::validate_json(&json).expect("overflowed trace still exports valid JSON");
    assert!(json.contains(&format!("\"dropped\":{}", t.dropped)));
    assert!(
        json.contains("\"dropped_by_worker\":[{\"rank\":"),
        "chrome export must carry per-worker drop metadata"
    );

    // The drop counter is never silent: it surfaces in both report formats.
    assert!(r
        .report
        .to_json()
        .contains(&format!("\"dropped\":{}", t.dropped)));
    assert!(r.report.render_pretty().contains("dropped"));
}

#[test]
fn distributed_run_merges_rank_tagged_tracks() {
    let _g = lock();
    trace::start(None);
    let g = graph();
    let p = params();
    let world = ThreadWorld::new(2);
    let results = world.run(|comm| imm_distributed(comm, &g, &p));
    trace::stop();
    let _ = trace::collect_all(); // drain sampler-worker rings left process-local

    assert_eq!(results.len(), 2);
    let traces: Vec<&trace::Trace> = results
        .iter()
        .map(|r| {
            r.report
                .trace
                .as_ref()
                .expect("each rank attaches the gathered trace")
        })
        .collect();
    // gather_trace is a collective: every rank holds the same merged timeline.
    assert_eq!(traces[0], traces[1]);

    let mut ranks: Vec<u32> = traces[0].events.iter().map(|e| e.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    assert_eq!(ranks, vec![0, 1], "events from both ranks must be merged");

    // Ranks exchange data, so comm events with byte payloads must appear.
    assert!(traces[0]
        .events
        .iter()
        .any(|e| e.event.name == trace::TraceName::CommAllReduce && e.event.arg0 > 0));

    let json = traces[0].to_chrome_json();
    trace::validate_json(&json).expect("distributed export must be valid JSON");
    assert!(json.contains("\"name\":\"rank 0\""));
    assert!(json.contains("\"name\":\"rank 1\""));
}
