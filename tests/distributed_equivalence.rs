//! Distributed-vs-sequential equivalence: the strongest correctness check
//! the reproduction offers. Because sample content is keyed by global
//! sample index, a distributed run over any world size must return the
//! *identical* seed set, θ, and coverage as the sequential run.

use ripples_comm::{Communicator, SelfComm, ThreadWorld};
use ripples_core::dist::imm_distributed;
use ripples_core::seq::immopt_sequential;
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::{erdos_renyi, standin};
use ripples_graph::{Graph, WeightModel};

fn graph() -> Graph {
    erdos_renyi(
        350,
        2800,
        WeightModel::UniformRandom { seed: 31 },
        false,
        90,
    )
}

#[test]
fn world_sizes_match_sequential_ic() {
    let g = graph();
    let p = ImmParams::new(6, 0.5, DiffusionModel::IndependentCascade, 17);
    let seq = immopt_sequential(&g, &p);
    for size in [1u32, 2, 3, 4, 7] {
        let world = ThreadWorld::new(size);
        let results = world.run(|comm| imm_distributed(comm, &g, &p));
        for (rank, r) in results.iter().enumerate() {
            assert_eq!(r.seeds, seq.seeds, "rank {rank} of {size}");
            assert_eq!(r.theta, seq.theta, "rank {rank} of {size}");
            assert!((r.coverage_fraction - seq.coverage_fraction).abs() < 1e-12);
        }
    }
}

#[test]
fn world_sizes_match_sequential_lt() {
    let g = erdos_renyi(350, 2800, WeightModel::UniformRandom { seed: 31 }, true, 90);
    let p = ImmParams::new(6, 0.5, DiffusionModel::LinearThreshold, 23);
    let seq = immopt_sequential(&g, &p);
    for size in [2u32, 5] {
        let world = ThreadWorld::new(size);
        let results = world.run(|comm| imm_distributed(comm, &g, &p));
        for r in results {
            assert_eq!(r.seeds, seq.seeds);
        }
    }
}

#[test]
fn selfcomm_equals_threadworld_of_one() {
    let g = graph();
    let p = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 3);
    let a = imm_distributed(&SelfComm::new(), &g, &p);
    let world = ThreadWorld::new(1);
    let b = world
        .run(|comm| imm_distributed(comm, &g, &p))
        .pop()
        .unwrap();
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.theta, b.theta);
}

#[test]
fn local_sample_counts_partition_theta() {
    let g = graph();
    let p = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 3);
    let size = 4u32;
    let world = ThreadWorld::new(size);
    let results = world.run(|comm| {
        let r = imm_distributed(comm, &g, &p);
        (comm.rank(), r.sample_work.len(), r.theta)
    });
    let theta = results[0].2;
    let total_local: usize = results.iter().map(|(_, local, _)| *local).sum();
    assert_eq!(
        total_local, theta,
        "local sample counts must partition θ exactly"
    );
    // Even split within one sample.
    for (rank, local, _) in results {
        let ideal = theta / size as usize;
        assert!(
            (local as i64 - ideal as i64).abs() <= 1,
            "rank {rank} holds {local} of {theta}"
        );
    }
}

#[test]
fn standin_distributed_run() {
    // A heavier end-to-end distributed run on a Table 2 stand-in.
    let spec = standin("com-DBLP").unwrap();
    let g = spec.build(128, WeightModel::UniformRandom { seed: 2 }, false);
    let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 6);
    let seq = immopt_sequential(&g, &p);
    let world = ThreadWorld::new(3);
    let results = world.run(|comm| imm_distributed(comm, &g, &p));
    for r in results {
        assert_eq!(r.seeds, seq.seeds);
    }
}
