//! Regression: un-normalized Linear Threshold input is rejected in *every*
//! engine profile.
//!
//! LT sampling treats a vertex's in-weights as a probability partition of
//! `[0, 1]`; if they sum past 1 the threshold draw is silently biased.
//! Every engine entry point now validates the contract and panics with a
//! message naming the offending vertex, instead of quietly producing wrong
//! influence estimates.

use ripples_core::sample::SampleEngine;
use ripples_core::select::SelectEngine;
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::erdos_renyi;
use ripples_graph::{Graph, WeightModel};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A graph whose in-weight sums exceed 1 for many vertices (uniform random
/// weights, no LT normalization pass).
fn unnormalized() -> Graph {
    erdos_renyi(120, 1400, WeightModel::UniformRandom { seed: 5 }, false, 17)
}

/// The same topology with the LT normalization pass applied.
fn normalized() -> Graph {
    erdos_renyi(120, 1400, WeightModel::UniformRandom { seed: 5 }, true, 17)
}

fn lt_params() -> ImmParams {
    ImmParams::new(4, 0.5, DiffusionModel::LinearThreshold, 3)
}

/// Asserts that `run` panics and that the panic message names the LT
/// in-weight contract.
fn assert_rejected(profile: &str, run: impl FnOnce()) {
    let err = catch_unwind(AssertUnwindSafe(run))
        .expect_err(&format!("{profile}: un-normalized LT input was accepted"));
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("in-weight sum"),
        "{profile}: panic message does not name the offending vertex: {msg}"
    );
}

#[test]
fn unnormalized_lt_rejected_in_every_profile() {
    let g = unnormalized();
    let p = lt_params();
    assert_rejected("immopt", || {
        let _ = ripples_core::seq::immopt_sequential(&g, &p);
    });
    assert_rejected("baseline", || {
        let _ = ripples_core::seq::imm_baseline(&g, &p);
    });
    assert_rejected("mt", || {
        let _ = ripples_core::mt::imm_multithreaded(&g, &p, 2);
    });
    assert_rejected("tim", || {
        let _ = ripples_core::tim::tim_plus(&g, &p);
    });
    assert_rejected("dist", || {
        let comm = ripples_comm::SelfComm::new();
        let _ = ripples_core::dist::imm_distributed(&comm, &g, &p);
    });
    assert_rejected("partitioned", || {
        let comm = ripples_comm::SelfComm::new();
        let _ = ripples_core::dist_partitioned::imm_partitioned(&comm, &g, &p);
    });
    assert_rejected("immopt --sample fused", || {
        let _ = ripples_core::seq::immopt_sequential_with_engines(
            &g,
            &p,
            SelectEngine::Sequential,
            SampleEngine::Fused,
        );
    });
}

#[test]
fn normalized_lt_accepted_in_every_profile() {
    let g = normalized();
    let p = lt_params();
    assert_eq!(ripples_core::seq::immopt_sequential(&g, &p).seeds.len(), 4);
    assert_eq!(ripples_core::seq::imm_baseline(&g, &p).seeds.len(), 4);
    assert_eq!(
        ripples_core::mt::imm_multithreaded(&g, &p, 2).seeds.len(),
        4
    );
    assert_eq!(ripples_core::tim::tim_plus(&g, &p).seeds.len(), 4);
    let comm = ripples_comm::SelfComm::new();
    assert_eq!(
        ripples_core::dist::imm_distributed(&comm, &g, &p)
            .seeds
            .len(),
        4
    );
    assert_eq!(
        ripples_core::dist_partitioned::imm_partitioned(&comm, &g, &p)
            .seeds
            .len(),
        4
    );
}
