//! Tunables for one oracle pass.

/// How hard [`crate::check_all_with`] works and how strict it is.
///
/// The defaults are sized for CI stand-in graphs (a few hundred vertices):
/// every differential layer runs, and the statistical tolerances sit at 5σ
/// so a correct implementation fails with probability < 1e-6 per check
/// while real regressions (which shift estimates by many σ) still trip.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Partition counts fed to the partitioned/fused engines. The first
    /// entry is also used by the metamorphic selection checks.
    pub partitions: Vec<usize>,
    /// Thread counts for the IMMmt pipeline runs.
    pub mt_threads: Vec<usize>,
    /// In-process world sizes for the distributed pipeline runs.
    pub world_sizes: Vec<u32>,
    /// Monte-Carlo trials per forward spread estimate.
    pub mc_trials: u32,
    /// Width of every statistical tolerance, in standard deviations.
    pub sigmas: f64,
    /// IC probability boost `p ← p + boost·(1−p)` for the monotonicity
    /// check. Must be in `[0, 1]`.
    pub boost: f64,
    /// Seed for the relabeling permutation (XORed with the run's master
    /// seed so every oracle invocation uses a distinct permutation).
    pub permutation_seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            partitions: vec![1, 2, 5],
            mt_threads: vec![2, 4],
            world_sizes: vec![1, 2, 4],
            mc_trials: 1500,
            sigmas: 5.0,
            boost: 0.3,
            permutation_seed: 0x5045_524D_5554_4531,
        }
    }
}

impl OracleConfig {
    /// A cheaper profile for debug builds and property tests: fewer engine
    /// grid points and Monte-Carlo trials, same invariants.
    #[must_use]
    pub fn quick() -> Self {
        OracleConfig {
            partitions: vec![1, 3],
            mt_threads: vec![2],
            world_sizes: vec![1, 2],
            mc_trials: 400,
            ..OracleConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = OracleConfig::default();
        assert!(!c.partitions.is_empty());
        assert!(c.mc_trials >= 2, "variance needs at least two samples");
        assert!(c.sigmas > 0.0);
        assert!((0.0..=1.0).contains(&c.boost));
        let q = OracleConfig::quick();
        assert!(q.mc_trials <= c.mc_trials);
    }
}
