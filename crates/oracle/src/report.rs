//! The oracle's verdict record: which checks ran, and every violation with
//! enough context (master seed, engine, expected/actual) to replay it.

use ripples_diffusion::DiffusionModel;
use ripples_graph::Vertex;
use std::fmt;

/// The families of invariants [`crate::check_all`] exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckKind {
    /// All [`ripples_core::SelectEngine`]s agree on one collection.
    SelectEngineAgreement,
    /// seq (IMMOPT + baseline) / mt / dist / dist-partitioned pipelines
    /// return identical seed sets, θ, and coverage.
    EngineGridAgreement,
    /// Forward Monte-Carlo influence ≈ RRR coverage influence (CLT bound).
    InfluenceAgreement,
    /// The fused multi-cascade sampler and the reference sampler draw from
    /// the same distribution: equal influence estimates (CLT bound), equal
    /// mean set sizes (CLT bound), matching root distributions
    /// (chi-square), and fused sets containing their recomputed roots.
    SamplerEquivalence,
    /// Selection commutes with vertex relabeling (exact, tie-conjugated)
    /// and spread is invariant under relabeling (CLT bound).
    RelabelingEquivariance,
    /// Raising IC edge probabilities never lowers estimated influence.
    ProbabilityMonotonicity,
    /// The k-seed selection is a prefix of the (k+1)-seed selection.
    KPrefixMonotonicity,
    /// Greedy marginal gains are non-increasing.
    Submodularity,
    /// Every `--rrr-store` backend (varint, bitpack, spill at a tiny
    /// budget) returns the identical seeds, θ, and coverage as the flat
    /// reference, across the sequential/mt/dist pipelines and every eager
    /// select engine.
    StorageEquivalence,
    /// A resident serve-mode sketch (built once, sized for `k_max`)
    /// answers every `topk(k ≤ k_max)` bitwise-identically to fresh
    /// seq/mt/dist batch runs at the same master seed, and its
    /// `spread_estimate` reproduces the batch coverage identity.
    QueryEquivalence,
}

impl CheckKind {
    /// Stable human-readable name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CheckKind::SelectEngineAgreement => "select-engine-agreement",
            CheckKind::EngineGridAgreement => "engine-grid-agreement",
            CheckKind::InfluenceAgreement => "influence-agreement",
            CheckKind::SamplerEquivalence => "sampler-equivalence",
            CheckKind::RelabelingEquivariance => "relabeling-equivariance",
            CheckKind::ProbabilityMonotonicity => "probability-monotonicity",
            CheckKind::KPrefixMonotonicity => "k-prefix-monotonicity",
            CheckKind::Submodularity => "submodularity",
            CheckKind::StorageEquivalence => "storage-equivalence",
            CheckKind::QueryEquivalence => "query-equivalence",
        }
    }
}

/// One failed invariant.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant family failed.
    pub kind: CheckKind,
    /// The engine / configuration under test (e.g. `dist(world=4,rank=1)`).
    pub subject: String,
    /// Expected-vs-actual detail, including the failing master seed.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            self.kind.name(),
            self.subject,
            self.detail
        )
    }
}

/// Outcome of one [`crate::check_all`] run.
#[derive(Clone, Debug)]
pub struct OracleReport {
    /// Master seed of the run under test (replay key for every violation).
    pub master_seed: u64,
    /// Diffusion model of the run under test.
    pub model: DiffusionModel,
    /// Final θ of the reference (IMMOPT sequential) run.
    pub theta: usize,
    /// Seed set of the reference run.
    pub seeds: Vec<Vertex>,
    /// Number of individual assertions that held.
    pub checks_passed: u64,
    /// Per-kind pass counters, ordered by [`CheckKind`].
    pub passed_by_kind: Vec<(CheckKind, u64)>,
    /// Every assertion that failed.
    pub violations: Vec<Violation>,
}

impl OracleReport {
    pub(crate) fn new(master_seed: u64, model: DiffusionModel) -> Self {
        OracleReport {
            master_seed,
            model,
            theta: 0,
            seeds: Vec::new(),
            checks_passed: 0,
            passed_by_kind: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// `true` when every check held.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the full violation list when any check failed.
    pub fn assert_ok(&self) {
        assert!(self.is_ok(), "correctness oracle failed:\n{self}");
    }

    /// Records one assertion. `detail` is only evaluated on failure.
    pub(crate) fn check(
        &mut self,
        kind: CheckKind,
        subject: &str,
        ok: bool,
        detail: impl FnOnce() -> String,
    ) {
        if ok {
            self.checks_passed += 1;
            match self.passed_by_kind.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, c)) => *c += 1,
                None => self.passed_by_kind.push((kind, 1)),
            }
        } else {
            self.violations.push(Violation {
                kind,
                subject: subject.to_owned(),
                detail: format!("{} (master seed {})", detail(), self.master_seed),
            });
        }
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "oracle[seed={} model={:?}]: {} checks passed, {} violated (θ={}, seeds={:?})",
            self.master_seed,
            self.model,
            self.checks_passed,
            self.violations.len(),
            self.theta,
            self.seeds,
        )?;
        for v in &self.violations {
            writeln!(f, "  VIOLATION {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_records_pass_and_fail() {
        let mut r = OracleReport::new(7, DiffusionModel::IndependentCascade);
        r.check(CheckKind::Submodularity, "seq", true, || unreachable!());
        r.check(CheckKind::Submodularity, "seq", true, || unreachable!());
        r.check(CheckKind::KPrefixMonotonicity, "lazy", false, || {
            "gains [3, 5]".to_owned()
        });
        assert!(!r.is_ok());
        assert_eq!(r.checks_passed, 2);
        assert_eq!(r.passed_by_kind, vec![(CheckKind::Submodularity, 2)],);
        assert_eq!(r.violations.len(), 1);
        let shown = r.to_string();
        assert!(shown.contains("k-prefix-monotonicity"), "{shown}");
        assert!(shown.contains("master seed 7"), "{shown}");
    }

    #[test]
    #[should_panic(expected = "correctness oracle failed")]
    fn assert_ok_panics_on_violation() {
        let mut r = OracleReport::new(1, DiffusionModel::LinearThreshold);
        r.check(CheckKind::EngineGridAgreement, "mt(2)", false, || {
            "seeds differ".to_owned()
        });
        r.assert_ok();
    }
}
