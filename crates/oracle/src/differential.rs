//! Differential checks: independent implementations of the same function
//! must produce the same answer.
//!
//! Three layers, matching the repo's redundancy:
//!
//! 1. **Select engines** — every [`SelectEngine`] on the same
//!    [`RrrCollection`] returns the identical [`Selection`] (the lazy
//!    engine may reorder tied seeds, so it is held to identical coverage
//!    and marginal gains instead, with its bookkeeping re-scored from
//!    scratch by [`coverage_of`]).
//! 2. **Pipelines** — the paper's four implementations (IMMOPT, the Tang
//!    baseline, IMMmt across thread counts, IMMdist across world sizes)
//!    return the identical seed set, θ, and coverage at a fixed master
//!    seed; the partitioned-graph engine (vertex-keyed sampling, a
//!    deliberately different but partition-invariant scheme) must match
//!    its own single-rank run at every world size.
//! 3. **Estimators** — the forward Monte-Carlo influence estimate and the
//!    RRR coverage estimate of the same seed set are independent unbiased
//!    estimators of `E[|I(S)|]`; they must agree within a CLT-derived
//!    tolerance computed from their empirical/binomial variances.

use crate::config::OracleConfig;
use crate::reference::greedy_with_tie_order;
use crate::report::{CheckKind, OracleReport};
use ripples_centrality::rank_biased_overlap;
use ripples_comm::{SelfComm, ThreadWorld};
use ripples_core::dist::{
    imm_distributed, imm_distributed_with_storage, DistRngMode, DistSelectMode,
};
use ripples_core::dist_partitioned::imm_partitioned;
use ripples_core::dist_sharded::imm_sharded;
use ripples_core::mt::imm_multithreaded;
use ripples_core::select::{select_with_engine, Selection};
use ripples_core::seq::{imm_baseline, immopt_sequential, immopt_sequential_with_storage};
use ripples_core::{
    coverage_of, select_with_engine_store, ImmParams, ImmResult, SampleEngine, SelectEngine,
};
use ripples_diffusion::{
    sample_batch_fused, sample_batch_sequential, sample_root_of, spread_samples, DynRrrStore,
    RrrCollection, RrrStore, RrrStoreKind, StorageConfig,
};
use ripples_graph::Graph;
use ripples_rng::StreamFactory;
use ripples_serve::SketchService;

/// The engines that promise bitwise-identical [`Selection`]s.
pub(crate) const EAGER_ENGINES: [SelectEngine; 5] = [
    SelectEngine::Auto,
    SelectEngine::Sequential,
    SelectEngine::Partitioned,
    SelectEngine::Hypergraph,
    SelectEngine::Fused,
];

/// Layer 1: every engine against the reference greedy on `collection`.
pub(crate) fn check_select_engines(
    report: &mut OracleReport,
    collection: &RrrCollection,
    n: u32,
    k: u32,
    cfg: &OracleConfig,
) {
    let kind = CheckKind::SelectEngineAgreement;
    let reference = greedy_with_tie_order(collection, n, k, u64::from);
    for engine in EAGER_ENGINES {
        for &parts in &cfg.partitions {
            let (sel, _) = select_with_engine(engine, collection, n, k, parts);
            let subject = format!("{}(p={parts})", engine.tag());
            report.check(kind, &subject, sel == reference, || {
                format!(
                    "selection diverged from reference greedy: {:?} vs {:?}",
                    brief(&sel),
                    brief(&reference)
                )
            });
            // The serial engines ignore `parts`; one pass is enough.
            if !matches!(
                engine,
                SelectEngine::Auto | SelectEngine::Partitioned | SelectEngine::Fused
            ) {
                break;
            }
        }
    }
    let (lazy, _) = select_with_engine(SelectEngine::Lazy, collection, n, k, 1);
    report.check(
        kind,
        "lazy",
        lazy.covered == reference.covered && lazy.marginal_gains == reference.marginal_gains,
        || {
            format!(
                "lazy coverage/gains diverged: {:?} vs {:?}",
                brief(&lazy),
                brief(&reference)
            )
        },
    );
    report.check(
        kind,
        "lazy",
        coverage_of(collection, &lazy.seeds) == lazy.covered,
        || {
            format!(
                "lazy bookkeeping lies: claims {} covered, rescore says {}",
                lazy.covered,
                coverage_of(collection, &lazy.seeds)
            )
        },
    );
}

fn brief(sel: &Selection) -> (Vec<u32>, usize, Vec<u64>) {
    (sel.seeds.clone(), sel.covered, sel.marginal_gains.clone())
}

/// Layer 2: the pipeline grid. Returns the reference (IMMOPT) result for
/// downstream checks.
pub(crate) fn check_engine_grid(
    report: &mut OracleReport,
    graph: &Graph,
    params: &ImmParams,
    cfg: &OracleConfig,
) -> ImmResult {
    let reference = immopt_sequential(graph, params);

    let baseline = imm_baseline(graph, params);
    compare_runs(report, "baseline", &baseline, &reference);
    for &threads in &cfg.mt_threads {
        let mt = imm_multithreaded(graph, params, threads);
        compare_runs(report, &format!("mt({threads})"), &mt, &reference);
    }
    // The partitioned-graph engine samples with vertex-keyed coin flips (so
    // its output is independent of the partitioning but deliberately *not*
    // bitwise-equal to the replicated sampler); its differential anchor is
    // its own single-rank run, not IMMOPT.
    let part_reference = imm_partitioned(&SelfComm::new(), graph, params);
    for &world in &cfg.world_sizes {
        let results = ThreadWorld::new(world).run(|comm| imm_distributed(comm, graph, params));
        for (rank, r) in results.iter().enumerate() {
            compare_runs(
                report,
                &format!("dist(world={world},rank={rank})"),
                r,
                &reference,
            );
        }
        let results = ThreadWorld::new(world).run(|comm| imm_partitioned(comm, graph, params));
        for (rank, r) in results.iter().enumerate() {
            compare_runs(
                report,
                &format!("dist_partitioned(world={world},rank={rank})"),
                r,
                &part_reference,
            );
        }
        // The vertex-cut sharded engine flips the same (sample, vertex)
        // coins as the partitioned engine, so it shares its anchor —
        // bitwise, at every world size.
        let results = ThreadWorld::new(world).run(|comm| imm_sharded(comm, graph, params));
        for (rank, r) in results.iter().enumerate() {
            compare_runs(
                report,
                &format!("dist_sharded(world={world},rank={rank})"),
                r,
                &part_reference,
            );
        }
    }
    reference
}

/// One pipeline run against its anchor: identical seeds, θ, and coverage.
fn compare_runs(report: &mut OracleReport, subject: &str, r: &ImmResult, reference: &ImmResult) {
    let kind = CheckKind::EngineGridAgreement;
    report.check(kind, subject, r.seeds == reference.seeds, || {
        format!("seed sets differ: {:?} vs {:?}", r.seeds, reference.seeds)
    });
    report.check(kind, subject, r.theta == reference.theta, || {
        format!("theta differs: {} vs {}", r.theta, reference.theta)
    });
    report.check(
        kind,
        subject,
        (r.coverage_fraction - reference.coverage_fraction).abs() < 1e-12,
        || {
            format!(
                "coverage differs: {} vs {}",
                r.coverage_fraction, reference.coverage_fraction
            )
        },
    );
    // Identical rankings have rank-biased overlap exactly 1 — exercises
    // the centrality cross-check the CLI reports use.
    if r.seeds == reference.seeds && !r.seeds.is_empty() {
        let rbo = rank_biased_overlap(&r.seeds, &reference.seeds, 0.9);
        report.check(kind, subject, (rbo - 1.0).abs() < 1e-12, || {
            format!("RBO of identical seed rankings is {rbo}, expected 1")
        });
    }
}

/// The compressed storage backends the equivalence check exercises against
/// the flat reference. Spill runs with a deliberately tiny budget so it
/// seals, writes, and re-reads chunks even on oracle-sized inputs.
const COMPRESSED_STORES: [RrrStoreKind; 3] = [
    RrrStoreKind::Varint,
    RrrStoreKind::Bitpack,
    RrrStoreKind::Spill,
];

fn storage_of(kind: RrrStoreKind) -> StorageConfig {
    StorageConfig {
        kind,
        budget: (kind == RrrStoreKind::Spill).then_some(4096),
    }
}

/// Layer 2b: `--rrr-store` equivalence. Every compressed backend must
/// return the identical seeds, θ, and coverage as the flat reference —
/// end-to-end through the sequential pipeline, through a distributed run,
/// and at the selection layer across every eager engine on the reference
/// collection.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_storage_equivalence(
    report: &mut OracleReport,
    graph: &Graph,
    params: &ImmParams,
    reference: &ImmResult,
    collection: &RrrCollection,
    n: u32,
    k: u32,
    cfg: &OracleConfig,
) {
    let kind = CheckKind::StorageEquivalence;
    for store_kind in COMPRESSED_STORES {
        let storage = storage_of(store_kind);
        let tag = store_kind.tag();

        // Full sequential pipeline.
        let r = immopt_sequential_with_storage(
            graph,
            params,
            SelectEngine::Auto,
            SampleEngine::Reference,
            storage,
        );
        let subject = format!("opt({tag})");
        report.check(kind, &subject, r.seeds == reference.seeds, || {
            format!("seed sets differ: {:?} vs {:?}", r.seeds, reference.seeds)
        });
        report.check(kind, &subject, r.theta == reference.theta, || {
            format!("theta differs: {} vs {}", r.theta, reference.theta)
        });
        report.check(
            kind,
            &subject,
            (r.coverage_fraction - reference.coverage_fraction).abs() < 1e-12,
            || {
                format!(
                    "coverage differs: {} vs {}",
                    r.coverage_fraction, reference.coverage_fraction
                )
            },
        );
        if store_kind == RrrStoreKind::Spill {
            report.check(
                kind,
                &subject,
                r.report.counters.spill_bytes_written > 0,
                || "tiny-budget spill run never wrote its spill file".to_owned(),
            );
        }

        // One distributed run per backend: the decrement aggregation path.
        if let Some(&world) = cfg.world_sizes.first() {
            let results = ThreadWorld::new(world).run(|comm| {
                imm_distributed_with_storage(
                    comm,
                    graph,
                    params,
                    DistRngMode::IndexedStreams,
                    DistSelectMode::DenseAllReduce,
                    storage,
                )
            });
            for (rank, r) in results.iter().enumerate() {
                let subject = format!("dist({tag},world={world},rank={rank})");
                report.check(
                    kind,
                    &subject,
                    r.seeds == reference.seeds && r.theta == reference.theta,
                    || {
                        format!(
                            "distributed run diverged: seeds {:?} θ {} vs {:?} θ {}",
                            r.seeds, r.theta, reference.seeds, reference.theta
                        )
                    },
                );
            }
        }

        // Selection layer: refill the backend from the reference collection
        // and run every eager engine over the compressed blocks.
        let mut store = DynRrrStore::new(storage, n);
        for s in collection.iter() {
            RrrStore::push(&mut store, s);
        }
        let anchor = greedy_with_tie_order(collection, n, k, u64::from);
        for engine in EAGER_ENGINES {
            let (sel, _) = select_with_engine_store(engine, &store, n, k, 2);
            let subject = format!("select({tag},{})", engine.tag());
            report.check(kind, &subject, sel == anchor, || {
                format!(
                    "selection over {tag} diverged: {:?} vs {:?}",
                    brief(&sel),
                    brief(&anchor)
                )
            });
        }
    }
}

/// Layer 2c: serve-vs-batch equivalence. A resident serve-mode sketch is
/// built **once**, sized for `k_max = k`, and must then answer `topk(k_q)`
/// for several `k_q ≤ k` bitwise-identically to *fresh* seq / mt / dist
/// batch runs at the same master seed and the same `k_max` — the core
/// guarantee that makes the build-once/serve-many mode trustworthy. The
/// served `spread_estimate` of each answer must also reproduce the batch
/// run's coverage fraction exactly (both are `covered/θ` on the same
/// samples).
pub(crate) fn check_query_equivalence(
    report: &mut OracleReport,
    graph: &Graph,
    params: &ImmParams,
    cfg: &OracleConfig,
) {
    let kind = CheckKind::QueryEquivalence;
    let n = graph.num_vertices();
    let k_cap = params.effective_k(n);
    if k_cap == 0 {
        return;
    }
    let sized = params.with_k_max(k_cap);
    let mut svc = SketchService::build(
        graph,
        sized,
        SelectEngine::Sequential,
        SampleEngine::Reference,
        StorageConfig::default(),
    );

    let mut ks = vec![1, k_cap.div_ceil(2), k_cap];
    ks.dedup();
    for k_q in ks {
        let (served, sreport) = match svc.topk(k_q) {
            Ok(x) => x,
            Err(e) => {
                report.check(kind, &format!("serve(k={k_q})"), false, || {
                    format!("query failed: {e}")
                });
                continue;
            }
        };
        let mut p = sized;
        p.k = k_q;

        // Fresh sequential batch run at the same master seed and k_max.
        let seq = immopt_sequential_with_storage(
            graph,
            &p,
            SelectEngine::Sequential,
            SampleEngine::Reference,
            StorageConfig::default(),
        );
        let subject = format!("seq(k={k_q})");
        report.check(kind, &subject, served == seq.seeds, || {
            format!("served {served:?} vs batch {:?}", seq.seeds)
        });
        report.check(kind, &subject, svc.theta() == seq.theta, || {
            format!("resident θ {} vs batch θ {}", svc.theta(), seq.theta)
        });
        report.check(
            kind,
            &subject,
            (sreport.coverage_fraction - seq.coverage_fraction).abs() < 1e-12,
            || {
                format!(
                    "served coverage {} vs batch {}",
                    sreport.coverage_fraction, seq.coverage_fraction
                )
            },
        );

        // One multithreaded and one distributed batch run per query size.
        if let Some(&threads) = cfg.mt_threads.first() {
            let mt = imm_multithreaded(graph, &p, threads);
            report.check(
                kind,
                &format!("mt(k={k_q},threads={threads})"),
                served == mt.seeds,
                || format!("served {served:?} vs mt {:?}", mt.seeds),
            );
        }
        if let Some(&world) = cfg.world_sizes.last() {
            let results = ThreadWorld::new(world).run(|comm| imm_distributed(comm, graph, &p));
            for (rank, r) in results.iter().enumerate() {
                report.check(
                    kind,
                    &format!("dist(k={k_q},world={world},rank={rank})"),
                    served == r.seeds,
                    || format!("served {served:?} vs dist {:?}", r.seeds),
                );
            }
        }
    }
}

/// Layer 3: forward Monte-Carlo vs RRR coverage estimate of `E[|I(S)|]`.
///
/// Fresh RRR samples (an independent stream, not the selection's own
/// collection) make the coverage estimate unbiased for the *fixed* seed set
/// `S`; reusing the selection samples would overestimate, because greedy
/// selection maximizes coverage on exactly those samples.
pub(crate) fn check_influence_agreement(
    report: &mut OracleReport,
    graph: &Graph,
    params: &ImmParams,
    seeds: &[u32],
    theta: usize,
    cfg: &OracleConfig,
) {
    let kind = CheckKind::InfluenceAgreement;
    let n = graph.num_vertices();
    if n == 0 || seeds.is_empty() || theta == 0 {
        return;
    }
    let est_samples = theta.max(1000);
    let factory = StreamFactory::new(params.seed).child(0x0E57_1A7E);
    let mut fresh = RrrCollection::new();
    sample_batch_sequential(graph, params.model, &factory, 0, est_samples, &mut fresh);
    let frac = coverage_of(&fresh, seeds) as f64 / est_samples as f64;
    let rrr_est = frac * f64::from(n);
    // Coverage is Binomial(θ', F)/θ' scaled by n.
    let rrr_var = f64::from(n) * f64::from(n) * frac * (1.0 - frac) / est_samples as f64;

    let mc_factory = StreamFactory::new(params.seed).child(0x4D43_7261);
    let samples = spread_samples(graph, params.model, seeds, cfg.mc_trials, &mc_factory);
    let trials = samples.len() as f64;
    let mc_est = samples.iter().sum::<u64>() as f64 / trials;
    let mc_var = samples
        .iter()
        .map(|&s| (s as f64 - mc_est).powi(2))
        .sum::<f64>()
        / (trials * (trials - 1.0));

    let tolerance = cfg.sigmas * (rrr_var + mc_var).sqrt() + 1e-9;
    report.check(
        kind,
        "mc-vs-rrr",
        (mc_est - rrr_est).abs() <= tolerance,
        || {
            format!(
                "forward MC estimate {mc_est:.3} vs RRR coverage estimate {rrr_est:.3} \
                 exceeds {:.1}σ tolerance {tolerance:.3} (θ'={est_samples}, trials={})",
                cfg.sigmas, cfg.mc_trials
            )
        },
    );
}

/// Layer 3b: the fused multi-cascade sampler against the reference sampler.
///
/// The fused kernel draws a *different RNG schedule* (full-width 64-lane
/// draws per edge), so its output cannot be compared bitwise — the contract
/// is distributional equality. Four assertions over two fresh collections
/// drawn from disjoint index ranges of the same child factory:
///
/// * **Influence**: the coverage estimates of the reference run's seed set
///   on the two collections are independent Binomial estimates of the same
///   influence; they must agree within the `cfg.sigmas`-σ CLT bound.
/// * **Mean set size**: sample means of `|RRR|` agree within the CLT bound
///   computed from the empirical variances.
/// * **Root containment**: every fused sample contains the root recomputed
///   from its index-keyed stream (exact — catches lane misassignment).
/// * **Root distribution**: binned root histograms of the two ranges pass a
///   two-sample chi-square at `df + sigmas·√(2·df)` (the normal
///   approximation of the χ² tail).
pub(crate) fn check_sampler_equivalence(
    report: &mut OracleReport,
    graph: &Graph,
    params: &ImmParams,
    seeds: &[u32],
    theta: usize,
    cfg: &OracleConfig,
) {
    let kind = CheckKind::SamplerEquivalence;
    let n = graph.num_vertices();
    if n == 0 || seeds.is_empty() || theta == 0 {
        return;
    }
    let s = theta.max(1000);
    let factory = StreamFactory::new(params.seed).child(0x5A4D_504C);
    let mut reference = RrrCollection::new();
    sample_batch_sequential(graph, params.model, &factory, 0, s, &mut reference);
    let mut fused = RrrCollection::new();
    sample_batch_fused(graph, params.model, &factory, s as u64, s, &mut fused);

    // Influence agreement on the anchor seed set.
    let fa = coverage_of(&reference, seeds) as f64 / s as f64;
    let fb = coverage_of(&fused, seeds) as f64 / s as f64;
    let var = (fa * (1.0 - fa) + fb * (1.0 - fb)) / s as f64;
    let tolerance = f64::from(n) * cfg.sigmas * var.sqrt() + 1e-9;
    let (est_a, est_b) = (fa * f64::from(n), fb * f64::from(n));
    report.check(
        kind,
        "influence",
        (est_a - est_b).abs() <= tolerance,
        || {
            format!(
                "reference influence {est_a:.3} vs fused {est_b:.3} exceeds \
                 {:.1}σ tolerance {tolerance:.3} (θ'={s})",
                cfg.sigmas
            )
        },
    );

    // Mean set size agreement (empirical-variance CLT).
    let mean_var = |c: &RrrCollection| {
        let mean = c.total_entries() as f64 / s as f64;
        let var = (0..s)
            .map(|j| (c.get(j).len() as f64 - mean).powi(2))
            .sum::<f64>()
            / (s as f64 * (s as f64 - 1.0));
        (mean, var)
    };
    let (mean_a, var_a) = mean_var(&reference);
    let (mean_b, var_b) = mean_var(&fused);
    let size_tol = cfg.sigmas * (var_a + var_b).sqrt() + 1e-9;
    report.check(
        kind,
        "mean-set-size",
        (mean_a - mean_b).abs() <= size_tol,
        || {
            format!(
                "reference mean |RRR| {mean_a:.3} vs fused {mean_b:.3} exceeds \
                 {:.1}σ tolerance {size_tol:.3} (θ'={s})",
                cfg.sigmas
            )
        },
    );

    // Root containment + binned root histograms of the two index ranges.
    let bins = (n as usize).min(32);
    let mut hist_a = vec![0u64; bins];
    let mut hist_b = vec![0u64; bins];
    let mut missing = 0u64;
    let mut first_missing = 0u64;
    for j in 0..s {
        let ra = sample_root_of(graph, &factory, j as u64);
        hist_a[ra as usize * bins / n as usize] += 1;
        let rb = sample_root_of(graph, &factory, (s + j) as u64);
        hist_b[rb as usize * bins / n as usize] += 1;
        if fused.get(j).binary_search(&rb).is_err() {
            if missing == 0 {
                first_missing = (s + j) as u64;
            }
            missing += 1;
        }
    }
    report.check(kind, "fused-root-containment", missing == 0, || {
        format!("{missing} fused samples lack their root (first: index {first_missing})")
    });
    let mut chi2 = 0.0f64;
    let mut occupied = 0.0f64;
    for j in 0..bins {
        let total = (hist_a[j] + hist_b[j]) as f64;
        if total > 0.0 {
            let d = hist_a[j] as f64 - hist_b[j] as f64;
            chi2 += d * d / total;
            occupied += 1.0;
        }
    }
    let df = (occupied - 1.0).max(1.0);
    let chi_bound = df + cfg.sigmas * (2.0 * df).sqrt();
    report.check(kind, "root-chi-square", chi2 <= chi_bound, || {
        format!(
            "two-sample root χ² {chi2:.2} exceeds bound {chi_bound:.2} \
             (df {df}, {:.1}σ, θ'={s})",
            cfg.sigmas
        )
    });
}
