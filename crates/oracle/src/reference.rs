//! A trust-nothing reference implementation of greedy max-cover, written
//! for clarity over speed, with a *parameterized tie order*.
//!
//! The production engines break count ties toward the lowest vertex id.
//! That rule is label-dependent, so greedy selection does **not** commute
//! with vertex relabeling in general: on a relabeled collection a tied
//! round may legitimately pick a different vertex. The exact equivariance
//! statement is conjugated through the permutation π:
//!
//! > `engine(π(R)).seeds == π(greedy(R, tie order: v ≺ u iff π(v) < π(u)))`
//!
//! i.e. running any engine on the relabeled collection must equal running
//! the reference greedy on the *original* collection while breaking ties
//! the way the labels will look *after* relabeling. With π = identity this
//! degenerates to plain lowest-id greedy, which doubles as an independent
//! differential check of [`ripples_core::select::select_seeds_sequential`].

use ripples_core::select::Selection;
use ripples_diffusion::RrrCollection;
use ripples_graph::Vertex;

/// Greedy max-cover over `collection` choosing up to `k` of `n` vertices,
/// breaking count ties toward the vertex with the smallest `tie_rank`.
///
/// Mirrors the production contract: zero-gain vertices are still selected
/// (lowest tie-rank first) until `k` seeds are chosen or the vertex space
/// is exhausted.
#[must_use]
pub fn greedy_with_tie_order(
    collection: &RrrCollection,
    n: u32,
    k: u32,
    tie_rank: impl Fn(Vertex) -> u64,
) -> Selection {
    let n_us = n as usize;
    let k = k.min(n) as usize;
    let mut counters = vec![0u64; n_us];
    for set in collection.iter() {
        for &v in set {
            counters[v as usize] += 1;
        }
    }
    let mut covered = vec![false; collection.len()];
    let mut selected = vec![false; n_us];
    let mut seeds: Vec<Vertex> = Vec::with_capacity(k);
    let mut gains: Vec<u64> = Vec::with_capacity(k);
    let mut covered_count = 0usize;
    while seeds.len() < k {
        let mut best: Option<(u64, u64, Vertex)> = None;
        for v in 0..n {
            if selected[v as usize] {
                continue;
            }
            let key = (counters[v as usize], tie_rank(v));
            let better = match best {
                None => true,
                Some((bc, br, _)) => key.0 > bc || (key.0 == bc && key.1 < br),
            };
            if better {
                best = Some((key.0, key.1, v));
            }
        }
        let Some((gain, _, v)) = best else { break };
        selected[v as usize] = true;
        seeds.push(v);
        gains.push(gain);
        for (j, cov) in covered.iter_mut().enumerate() {
            if *cov {
                continue;
            }
            let set = collection.get(j);
            if set.binary_search(&v).is_ok() {
                *cov = true;
                covered_count += 1;
                for &u in set {
                    counters[u as usize] -= 1;
                }
            }
        }
    }
    let total = collection.len();
    Selection {
        seeds,
        covered: covered_count,
        fraction: if total == 0 {
            0.0
        } else {
            covered_count as f64 / total as f64
        },
        marginal_gains: gains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_core::select::select_seeds_sequential;

    fn collection(sets: &[&[Vertex]]) -> RrrCollection {
        let mut c = RrrCollection::new();
        for s in sets {
            c.push(s);
        }
        c
    }

    #[test]
    fn identity_tie_order_matches_production_sequential() {
        let c = collection(&[&[0, 2], &[2, 5], &[2], &[7], &[1, 7]]);
        let reference = greedy_with_tie_order(&c, 8, 3, u64::from);
        let production = select_seeds_sequential(&c, 8, 3);
        assert_eq!(reference, production);
    }

    #[test]
    fn tie_order_decides_tied_rounds() {
        // Vertices 1 and 2 each cover exactly one (distinct) set.
        let c = collection(&[&[1], &[2]]);
        let low_first = greedy_with_tie_order(&c, 3, 1, u64::from);
        assert_eq!(low_first.seeds, vec![1]);
        // Reversed tie order prefers the *highest* id among ties.
        let high_first = greedy_with_tie_order(&c, 3, 1, |v| u64::from(u32::MAX - v));
        assert_eq!(high_first.seeds, vec![2]);
        assert_eq!(low_first.marginal_gains, high_first.marginal_gains);
    }

    #[test]
    fn zero_gain_rounds_still_fill_k() {
        let c = collection(&[&[1]]);
        let sel = greedy_with_tie_order(&c, 3, 3, u64::from);
        assert_eq!(sel.seeds, vec![1, 0, 2]);
        assert_eq!(sel.marginal_gains, vec![1, 0, 0]);
        assert_eq!(sel.covered, 1);
    }
}
