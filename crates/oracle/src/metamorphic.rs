//! Metamorphic checks: known input transformations with predictable effects
//! on the output, no second implementation required.
//!
//! * **Relabeling equivariance** — renaming vertices must not change what
//!   the algorithm computes. Exact at the selection layer (conjugating the
//!   tie-break through the permutation, see [`crate::reference`]), and
//!   statistical at the spread layer (same distribution, CLT tolerance).
//! * **Probability monotonicity** — raising IC edge probabilities can only
//!   increase expected influence of a fixed seed set (the coupling argument:
//!   every cascade realization on `G` embeds into one on the boosted graph).
//!   Checked statistically because per-edge draws are traversal-order
//!   dependent, so the coupling does not hold pathwise at fixed RNG seeds.
//! * **k-monotonicity** — greedy selection is incremental: the k-seed
//!   selection must be a prefix of the (k+1)-seed selection. Exact.
//! * **Submodularity** — marginal gains of greedy max-cover on a fixed
//!   collection are non-increasing. Exact.

use crate::config::OracleConfig;
use crate::differential::EAGER_ENGINES;
use crate::reference::greedy_with_tie_order;
use crate::report::{CheckKind, OracleReport};
use ripples_core::select::select_with_engine;
use ripples_core::{coverage_of, ImmParams, SelectEngine};
use ripples_diffusion::{spread_samples, RrrCollection};
use ripples_graph::{permute_graph, Graph, GraphBuilder, Permutation, Vertex};
use ripples_rng::StreamFactory;

/// Applies `perm` to every set of `collection`, re-sorting each set so the
/// result honors the sorted-list invariant.
fn permute_collection(collection: &RrrCollection, perm: &Permutation) -> RrrCollection {
    let mut out = RrrCollection::new();
    let mut scratch: Vec<Vertex> = Vec::new();
    for set in collection.iter() {
        scratch.clear();
        scratch.extend(set.iter().map(|&v| perm.apply(v)));
        scratch.sort_unstable();
        out.push(&scratch);
    }
    out
}

/// Relabeling equivariance, exact half: for every eager engine,
/// `engine(π(R)) == π(greedy_ref(R, tie order conjugated by π))`.
pub(crate) fn check_relabeling_selection(
    report: &mut OracleReport,
    collection: &RrrCollection,
    n: u32,
    k: u32,
    cfg: &OracleConfig,
) {
    let kind = CheckKind::RelabelingEquivariance;
    let perm = Permutation::random(n, cfg.permutation_seed ^ report.master_seed);
    let relabeled = permute_collection(collection, &perm);
    let reference = greedy_with_tie_order(collection, n, k, |v| u64::from(perm.apply(v)));
    let expected_seeds = perm.apply_all(&reference.seeds);
    for engine in EAGER_ENGINES {
        let (sel, _) = select_with_engine(engine, &relabeled, n, k, cfg.partitions[0]);
        report.check(
            kind,
            &format!("{}(π(R))", engine.tag()),
            sel.seeds == expected_seeds
                && sel.marginal_gains == reference.marginal_gains
                && sel.covered == reference.covered,
            || {
                format!(
                    "selection does not commute with relabeling: got {:?} gains {:?}, \
                     expected π(ref)={:?} gains {:?}",
                    sel.seeds, sel.marginal_gains, expected_seeds, reference.marginal_gains
                )
            },
        );
    }
    // The lazy engine may pick different tied vertices, but coverage and
    // gains are label-free quantities and must survive relabeling.
    let (lazy, _) = select_with_engine(SelectEngine::Lazy, &relabeled, n, k, 1);
    report.check(
        kind,
        "lazy(π(R))",
        lazy.covered == reference.covered
            && lazy.marginal_gains == reference.marginal_gains
            && coverage_of(&relabeled, &lazy.seeds) == lazy.covered,
        || {
            format!(
                "lazy coverage/gains not relabeling-invariant: {} / {:?} vs {} / {:?}",
                lazy.covered, lazy.marginal_gains, reference.covered, reference.marginal_gains
            )
        },
    );
}

/// Relabeling equivariance, statistical half: spread of `S` on `G` and of
/// `π(S)` on `π(G)` estimate the same expectation.
pub(crate) fn check_relabeling_spread(
    report: &mut OracleReport,
    graph: &Graph,
    params: &ImmParams,
    seeds: &[Vertex],
    cfg: &OracleConfig,
) {
    let kind = CheckKind::RelabelingEquivariance;
    if seeds.is_empty() {
        return;
    }
    let n = graph.num_vertices();
    let perm = Permutation::random(n, cfg.permutation_seed ^ report.master_seed);
    let relabeled = permute_graph(graph, &perm);
    let mapped = perm.apply_all(seeds);
    let base = spread_stats(graph, params, seeds, cfg, 0x5052_4541);
    let permuted = spread_stats(&relabeled, params, &mapped, cfg, 0x5052_4542);
    let tolerance = cfg.sigmas * (base.1 + permuted.1).sqrt() + 1e-9;
    report.check(
        kind,
        "spread(π(G), π(S))",
        (base.0 - permuted.0).abs() <= tolerance,
        || {
            format!(
                "spread not relabeling-invariant: {:.3} vs {:.3}, tolerance {tolerance:.3}",
                base.0, permuted.0
            )
        },
    );
}

/// Probability monotonicity: boosting every IC edge probability by
/// `p ← p + boost·(1 − p)` must not lower the spread of a fixed seed set.
pub(crate) fn check_probability_monotonicity(
    report: &mut OracleReport,
    graph: &Graph,
    params: &ImmParams,
    seeds: &[Vertex],
    cfg: &OracleConfig,
) {
    let kind = CheckKind::ProbabilityMonotonicity;
    if seeds.is_empty() || graph.num_edges() == 0 {
        return;
    }
    let mut builder = GraphBuilder::new(graph.num_vertices()).keep_self_loops();
    builder.reserve(graph.num_edges());
    for (u, v, p) in graph.edges() {
        let boosted = p + (cfg.boost as f32) * (1.0 - p);
        builder
            .add_edge(u, v, boosted.clamp(0.0, 1.0))
            .expect("boosted edge must stay valid");
    }
    let boosted = builder.build().expect("boosted graph must build");
    let base = spread_stats(graph, params, seeds, cfg, 0x424F_4F31);
    let high = spread_stats(&boosted, params, seeds, cfg, 0x424F_4F32);
    let tolerance = cfg.sigmas * (base.1 + high.1).sqrt() + 1e-9;
    report.check(
        kind,
        &format!("boost(+{:.2})", cfg.boost),
        high.0 >= base.0 - tolerance,
        || {
            format!(
                "raising edge probabilities lowered spread: {:.3} -> {:.3}, tolerance {tolerance:.3}",
                base.0, high.0
            )
        },
    );
}

/// k-monotonicity: for every engine, seeds(k) is a prefix of seeds(k+1),
/// and the shared gains agree.
pub(crate) fn check_k_prefix(
    report: &mut OracleReport,
    collection: &RrrCollection,
    n: u32,
    k: u32,
    cfg: &OracleConfig,
) {
    let kind = CheckKind::KPrefixMonotonicity;
    let engines = EAGER_ENGINES.iter().copied().chain([SelectEngine::Lazy]);
    for engine in engines {
        let (small, _) = select_with_engine(engine, collection, n, k, cfg.partitions[0]);
        let (large, _) = select_with_engine(engine, collection, n, k + 1, cfg.partitions[0]);
        let len = small.seeds.len();
        let prefix_holds = large.seeds.len() >= len
            && large.seeds[..len] == small.seeds[..]
            && large.marginal_gains[..len] == small.marginal_gains[..];
        report.check(kind, engine.tag(), prefix_holds, || {
            format!(
                "seeds(k={k}) not a prefix of seeds(k+1): {:?} vs {:?}",
                small.seeds, large.seeds
            )
        });
    }
}

/// Submodularity: marginal gains are non-increasing for every engine.
pub(crate) fn check_submodularity(
    report: &mut OracleReport,
    collection: &RrrCollection,
    n: u32,
    k: u32,
    cfg: &OracleConfig,
) {
    let kind = CheckKind::Submodularity;
    let engines = EAGER_ENGINES.iter().copied().chain([SelectEngine::Lazy]);
    for engine in engines {
        let (sel, _) = select_with_engine(engine, collection, n, k, cfg.partitions[0]);
        let sorted = sel.marginal_gains.windows(2).all(|w| w[0] >= w[1]);
        report.check(kind, engine.tag(), sorted, || {
            format!("marginal gains increased: {:?}", sel.marginal_gains)
        });
    }
}

/// `(mean, variance-of-the-mean)` of the Monte-Carlo spread estimator.
fn spread_stats(
    graph: &Graph,
    params: &ImmParams,
    seeds: &[Vertex],
    cfg: &OracleConfig,
    stream_label: u64,
) -> (f64, f64) {
    let factory = StreamFactory::new(params.seed).child(stream_label);
    let samples = spread_samples(graph, params.model, seeds, cfg.mc_trials, &factory);
    let trials = samples.len() as f64;
    let mean = samples.iter().sum::<u64>() as f64 / trials;
    let var = samples
        .iter()
        .map(|&s| (s as f64 - mean).powi(2))
        .sum::<f64>()
        / (trials * (trials - 1.0).max(1.0));
    (mean, var)
}
