//! Differential + metamorphic correctness oracle for the IMM engines.
//!
//! The reproduction's strongest asset is redundancy: five seed-selection
//! engines, four pipeline implementations, and two influence estimators
//! that must all agree. This crate turns that redundancy into a single
//! callable oracle — [`check_all`] — that takes a graph and a parameter
//! set, runs every implementation, and reports each broken invariant as a
//! [`Violation`] carrying the failing seed and engine pair.
//!
//! Two families of checks:
//!
//! * **Differential** ([`differential`]): independent implementations of
//!   the same function must agree — all [`SelectEngine`]s on one
//!   collection, all pipelines (IMMOPT / baseline / IMMmt across thread
//!   counts / IMMdist and the partitioned-graph engine across world sizes)
//!   at one master seed, and forward Monte-Carlo vs RRR coverage influence
//!   estimates within a CLT-derived tolerance.
//! * **Metamorphic** ([`metamorphic`]): known input transformations with
//!   predictable effects — vertex-relabeling equivariance (exact at the
//!   selection layer via a tie-break-conjugated reference greedy, see
//!   [`reference`]), IC edge-probability monotonicity, k-prefix
//!   monotonicity, and submodular (non-increasing) marginal gains.
//!
//! Intended use: after any refactor of the sampling, selection, or
//! communication layers, run the oracle grid (`cargo test -p
//! ripples-oracle --release`) — it fails loudly with a replayable master
//! seed if any two implementations stopped agreeing. See
//! EXPERIMENTS.md § "Verifying a refactor".
//!
//! ```
//! use ripples_core::ImmParams;
//! use ripples_diffusion::DiffusionModel;
//! use ripples_graph::{generators::erdos_renyi, WeightModel};
//! use ripples_oracle::{check_all_with, OracleConfig};
//!
//! let g = erdos_renyi(60, 240, WeightModel::Constant(0.2), false, 5);
//! let p = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade, 11);
//! let report = check_all_with(&g, &p, &OracleConfig::quick());
//! report.assert_ok();
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod differential;
pub mod metamorphic;
pub mod reference;
pub mod report;

pub use config::OracleConfig;
pub use reference::greedy_with_tie_order;
pub use report::{CheckKind, OracleReport, Violation};

use ripples_core::ImmParams;
use ripples_diffusion::{sample_batch_sequential, DiffusionModel, RrrCollection};
use ripples_graph::Graph;
use ripples_rng::StreamFactory;

/// Runs the full oracle with [`OracleConfig::default`].
#[must_use]
pub fn check_all(graph: &Graph, params: &ImmParams) -> OracleReport {
    check_all_with(graph, params, &OracleConfig::default())
}

/// Runs every differential and metamorphic check on `(graph, params)`.
///
/// Never panics on a violation — inspect [`OracleReport::is_ok`] or call
/// [`OracleReport::assert_ok`].
///
/// Linear-threshold runs require an LT-normalized graph (in-weights summing
/// to ≤ 1, `GraphBuilder`'s `lt_normalize`): the reverse sampler draws at
/// most one in-neighbor per vertex (the triggering-set form of LT), which
/// matches the forward threshold simulation **only** under that
/// normalization — on un-normalized weights the influence-agreement check
/// correctly reports the two estimators as measuring different processes.
#[must_use]
pub fn check_all_with(graph: &Graph, params: &ImmParams, cfg: &OracleConfig) -> OracleReport {
    let mut report = OracleReport::new(params.seed, params.model);
    let n = graph.num_vertices();
    if n == 0 {
        return report;
    }

    // Differential layer 2 first: it produces the reference pipeline run
    // whose θ and seeds anchor everything else.
    let reference = differential::check_engine_grid(&mut report, graph, params, cfg);
    report.theta = reference.theta;
    report.seeds = reference.seeds.clone();

    // Rebuild the reference run's final collection deterministically (the
    // same index-keyed streams every engine consumed).
    let factory = StreamFactory::new(params.seed);
    let mut collection = RrrCollection::new();
    sample_batch_sequential(
        graph,
        params.model,
        &factory,
        0,
        reference.theta,
        &mut collection,
    );
    let k = params.effective_k(n);

    differential::check_select_engines(&mut report, &collection, n, k, cfg);
    differential::check_storage_equivalence(
        &mut report,
        graph,
        params,
        &reference,
        &collection,
        n,
        k,
        cfg,
    );
    differential::check_influence_agreement(
        &mut report,
        graph,
        params,
        &reference.seeds,
        reference.theta,
        cfg,
    );
    differential::check_sampler_equivalence(
        &mut report,
        graph,
        params,
        &reference.seeds,
        reference.theta,
        cfg,
    );

    differential::check_query_equivalence(&mut report, graph, params, cfg);

    metamorphic::check_relabeling_selection(&mut report, &collection, n, k, cfg);
    metamorphic::check_relabeling_spread(&mut report, graph, params, &reference.seeds, cfg);
    if params.model == DiffusionModel::IndependentCascade {
        metamorphic::check_probability_monotonicity(
            &mut report,
            graph,
            params,
            &reference.seeds,
            cfg,
        );
    }
    metamorphic::check_k_prefix(&mut report, &collection, n, k, cfg);
    metamorphic::check_submodularity(&mut report, &collection, n, k, cfg);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    fn graph() -> Graph {
        erdos_renyi(80, 400, WeightModel::UniformRandom { seed: 3 }, false, 44)
    }

    #[test]
    fn clean_run_has_no_violations() {
        let p = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 9);
        let report = check_all_with(&graph(), &p, &OracleConfig::quick());
        assert!(report.is_ok(), "{report}");
        assert!(report.checks_passed > 20, "{report}");
        assert_eq!(report.seeds.len(), 4);
        assert!(report.theta > 0);
    }

    #[test]
    fn empty_graph_is_vacuously_ok() {
        let g = ripples_graph::GraphBuilder::new(0).build().unwrap();
        let p = ImmParams::new(2, 0.5, DiffusionModel::IndependentCascade, 1);
        let report = check_all(&g, &p);
        assert!(report.is_ok());
        assert_eq!(report.checks_passed, 0);
    }

    #[test]
    fn report_counts_every_kind() {
        // LT graphs must be weight-normalized (see `check_all_with` docs);
        // the oracle itself flagged the un-normalized variant of this test
        // through the influence-agreement check.
        let g = erdos_renyi(80, 400, WeightModel::UniformRandom { seed: 3 }, true, 44);
        let p = ImmParams::new(3, 0.5, DiffusionModel::LinearThreshold, 21);
        let report = check_all_with(&g, &p, &OracleConfig::quick());
        assert!(report.is_ok(), "{report}");
        let kinds: Vec<_> = report.passed_by_kind.iter().map(|(k, _)| *k).collect();
        for kind in [
            CheckKind::EngineGridAgreement,
            CheckKind::SelectEngineAgreement,
            CheckKind::InfluenceAgreement,
            CheckKind::SamplerEquivalence,
            CheckKind::RelabelingEquivariance,
            CheckKind::KPrefixMonotonicity,
            CheckKind::Submodularity,
            CheckKind::StorageEquivalence,
            CheckKind::QueryEquivalence,
        ] {
            assert!(kinds.contains(&kind), "missing {kind:?} in {kinds:?}");
        }
        // LT runs skip the IC-only probability boost.
        assert!(!kinds.contains(&CheckKind::ProbabilityMonotonicity));
    }
}
