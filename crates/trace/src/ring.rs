//! Per-worker bounded event storage.
//!
//! Each worker thread owns one [`WorkerRing`]; only that thread appends.
//! The collector (another thread, at run end) reads events published with a
//! Release store on `len`, so every slot it observes was fully written.
//! Slots are plain `AtomicU64` words — five per event — which keeps the
//! owner/collector interaction free of `unsafe` and of data races even if a
//! drain overlaps a late append (the worst case is a skipped or duplicated
//! event at the boundary, never torn memory).

use crate::{EventKind, TraceEvent, TraceName};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

const WORDS_PER_EVENT: usize = 5;

/// A bounded append-only event buffer owned by one worker thread.
pub(crate) struct WorkerRing {
    /// Process-unique worker id (becomes the Chrome `tid`).
    tid: u32,
    /// Rank tag for distributed runs; 0 otherwise.
    rank: AtomicU32,
    /// Tracing session this ring's contents belong to.
    session: AtomicU64,
    /// Events appended this session (never exceeds `capacity`).
    len: AtomicUsize,
    /// Events rejected because the ring was full.
    dropped: AtomicU64,
    /// `capacity × WORDS_PER_EVENT` word slots.
    slots: Box<[AtomicU64]>,
}

impl WorkerRing {
    pub(crate) fn new(tid: u32, capacity: usize) -> Self {
        let slots = (0..capacity * WORDS_PER_EVENT)
            .map(|_| AtomicU64::new(0))
            .collect();
        WorkerRing {
            tid,
            rank: AtomicU32::new(0),
            session: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len() / WORDS_PER_EVENT
    }

    pub(crate) fn session(&self) -> u64 {
        self.session.load(Ordering::Relaxed)
    }

    pub(crate) fn set_rank(&self, rank: u32) {
        self.rank.store(rank, Ordering::Relaxed);
    }

    /// Lazily resets the ring when it still holds a previous session's
    /// events. Called by the owning thread before each append.
    pub(crate) fn ensure_session(&self, session: u64) {
        if self.session.load(Ordering::Relaxed) != session {
            self.len.store(0, Ordering::Relaxed);
            self.dropped.store(0, Ordering::Relaxed);
            self.session.store(session, Ordering::Relaxed);
        }
    }

    /// Appends one event, or counts a drop when full. Owner thread only.
    pub(crate) fn push(&self, e: TraceEvent) {
        let n = self.len.load(Ordering::Relaxed);
        if n >= self.capacity() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let base = n * WORDS_PER_EVENT;
        self.slots[base].store(pack_event_meta(e.kind, e.name), Ordering::Relaxed);
        self.slots[base + 1].store(e.ts_ns, Ordering::Relaxed);
        self.slots[base + 2].store(e.dur_ns, Ordering::Relaxed);
        self.slots[base + 3].store(e.arg0, Ordering::Relaxed);
        self.slots[base + 4].store(e.arg1, Ordering::Relaxed);
        // Publish: a collector that Acquire-loads `len` sees the full slot.
        self.len.store(n + 1, Ordering::Release);
    }

    /// Reads out and clears the ring: `(tid, rank, events, dropped)`.
    pub(crate) fn drain(&self) -> (u32, u32, Vec<TraceEvent>, u64) {
        let n = self.len.load(Ordering::Acquire);
        let mut events = Vec::with_capacity(n);
        for i in 0..n {
            let base = i * WORDS_PER_EVENT;
            let meta = self.slots[base].load(Ordering::Relaxed);
            let Some((kind, name)) = unpack_event_meta(meta) else {
                continue;
            };
            events.push(TraceEvent {
                kind,
                name,
                ts_ns: self.slots[base + 1].load(Ordering::Relaxed),
                dur_ns: self.slots[base + 2].load(Ordering::Relaxed),
                arg0: self.slots[base + 3].load(Ordering::Relaxed),
                arg1: self.slots[base + 4].load(Ordering::Relaxed),
            });
        }
        let dropped = self.dropped.swap(0, Ordering::Relaxed);
        self.len.store(0, Ordering::Release);
        (self.tid, self.rank.load(Ordering::Relaxed), events, dropped)
    }
}

fn pack_event_meta(kind: EventKind, name: TraceName) -> u64 {
    ((kind as u64) << 8) | name as u64
}

fn unpack_event_meta(meta: u64) -> Option<(EventKind, TraceName)> {
    let kind = EventKind::from_u8(((meta >> 8) & 0xFF) as u8)?;
    let name = TraceName::from_u8((meta & 0xFF) as u8)?;
    Some((kind, name))
}
