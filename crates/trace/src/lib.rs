//! Low-overhead structured event tracing for the IMM engines.
//!
//! This crate sits *below* every other workspace crate so that the sampler
//! (`ripples-diffusion`), the communicator backends (`ripples-comm`), and
//! the engines (`ripples-core`, which re-exports this crate as
//! `ripples_core::obs::trace`) can all record into one timeline. The design
//! goals, in order:
//!
//! 1. **Never block the hot path.** Each worker thread appends fixed-size
//!    [`TraceEvent`]s into its own bounded ring buffer; writes are plain
//!    atomic stores (no locks, no CAS). When the buffer is full, new events
//!    are *dropped* and counted — recording never waits.
//! 2. **Near-zero cost when disabled.** Every record call starts with a
//!    single relaxed atomic load and a branch ([`enabled`]); nothing else
//!    runs. Tracing is always compiled in and off by default.
//! 3. **Mergeable.** Buffers are drained into a [`Trace`], which can be
//!    encoded as a flat `u64` buffer ([`encode_thread_events`]) so the
//!    distributed engines can gather per-rank timelines over their existing
//!    `all_gather` collective and merge them ([`Trace::from_rank_buffers`]).
//!
//! The merged [`Trace`] exports Chrome Trace Event Format JSON
//! ([`Trace::to_chrome_json`]) loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): one *process* per rank, one *track*
//! (tid) per worker thread.
//!
//! # Ring-buffer sizing
//!
//! [`start`]`(None)` reads the per-worker capacity (events per ring) from
//! the `RIPPLES_TRACE_BUFFER` environment variable, defaulting to
//! [`DEFAULT_CAPACITY`]; `start(Some(n))` pins it explicitly. A full ring
//! drops events and increments [`Trace::dropped`], which callers surface so
//! truncated traces are never silent.

#![warn(missing_docs)]

mod json;
mod ring;

pub use json::validate_json;

use ring::WorkerRing;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Default per-worker ring capacity, in events.
pub const DEFAULT_CAPACITY: usize = 16 * 1024;

/// Environment variable overriding the per-worker ring capacity.
pub const CAPACITY_ENV: &str = "RIPPLES_TRACE_BUFFER";

/// What a [`TraceEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A completed span: `ts_ns .. ts_ns + dur_ns` (Chrome `"X"`).
    Span = 0,
    /// A point-in-time mark (Chrome `"i"`).
    Mark = 1,
    /// A sampled counter value in `arg0` (Chrome `"C"`).
    Counter = 2,
}

impl EventKind {
    fn from_u8(x: u8) -> Option<Self> {
        match x {
            0 => Some(EventKind::Span),
            1 => Some(EventKind::Mark),
            2 => Some(EventKind::Counter),
            _ => None,
        }
    }
}

/// The fixed catalog of event names.
///
/// Events are fixed-size, so names are ids into this catalog rather than
/// strings; the catalog covers the phase structure of the IMM engines, the
/// sampler, the selection loop, and the communicator collectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceName {
    /// Algorithm 2 (martingale θ-estimation), whole phase.
    EstimateTheta = 0,
    /// One estimation round; `arg0` = round index (1-based).
    Round = 1,
    /// A sampling call (estimation-round batch or the final top-up).
    SampleBatch = 2,
    /// One worker's contiguous chunk of a parallel sampling batch;
    /// `arg0` = first global sample index, `arg1` = sample count.
    SampleChunk = 3,
    /// A greedy selection pass inside an estimation round.
    Select = 4,
    /// The final SelectSeeds pass (Algorithm 4).
    SelectSeeds = 5,
    /// One greedy selection step; `arg0` = chosen vertex,
    /// `arg1` = marginal gain.
    SelectStep = 6,
    /// `all_reduce_*` collective; `arg0` = modeled payload bytes.
    CommAllReduce = 7,
    /// `all_gather_*` collective; `arg0` = modeled payload bytes.
    CommAllGather = 8,
    /// `broadcast_*` collective; `arg0` = modeled payload bytes.
    CommBroadcast = 9,
    /// `barrier` collective.
    CommBarrier = 10,
    /// RRR-storage resident bytes high-water sample; `arg0` = bytes.
    RrrBytes = 11,
    /// A span whose label is outside the fixed catalog.
    Generic = 12,
    /// Building the vertex→samples inverted index for fused selection;
    /// `arg0` = index entries.
    IndexBuild = 13,
    /// Index entries touched while covering one seed's samples;
    /// `arg0` = entries, `arg1` = chosen vertex.
    SelectTouched = 14,
    /// Worker-arena reserved bytes for one sampling batch; `arg0` = bytes.
    ArenaBytes = 15,
    /// A collective attempt failed and is being retried;
    /// `arg0` = op index, `arg1` = attempt number (0-based).
    CommRetry = 16,
    /// A rank was declared dead after exhausted retries;
    /// `arg0` = rank, `arg1` = op index.
    RankDead = 17,
    /// One worker's contiguous chunk of a fused multi-cascade sampling
    /// batch; `arg0` = first global sample index, `arg1` = sample count.
    FusedChunk = 18,
    /// Peak per-vertex activation-mask scratch bytes of the fused sampler;
    /// `arg0` = bytes.
    MaskBytes = 19,
    /// A serve-mode query starts; `arg0` = requested seed count `k`.
    QueryBegin = 20,
    /// A serve-mode query finishes; `arg0` = requested seed count `k`,
    /// `arg1` = RRR-index entries touched while answering.
    QueryEnd = 21,
    /// `alltoallv_u64` / posted frontier exchange; `arg0` = payload bytes.
    CommExchange = 22,
}

impl TraceName {
    /// Display label used in the Chrome export.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            TraceName::EstimateTheta => "EstimateTheta",
            TraceName::Round => "round",
            TraceName::SampleBatch => "sample",
            TraceName::SampleChunk => "sample-chunk",
            TraceName::Select => "select",
            TraceName::SelectSeeds => "SelectSeeds",
            TraceName::SelectStep => "select-step",
            TraceName::CommAllReduce => "allreduce",
            TraceName::CommAllGather => "allgather",
            TraceName::CommBroadcast => "broadcast",
            TraceName::CommBarrier => "barrier",
            TraceName::RrrBytes => "rrr-bytes",
            TraceName::Generic => "span",
            TraceName::IndexBuild => "index-build",
            TraceName::SelectTouched => "select-touched",
            TraceName::ArenaBytes => "arena-bytes",
            TraceName::CommRetry => "comm-retry",
            TraceName::RankDead => "rank-dead",
            TraceName::FusedChunk => "fused-chunk",
            TraceName::MaskBytes => "mask-bytes",
            TraceName::QueryBegin => "query-begin",
            TraceName::QueryEnd => "query-end",
            TraceName::CommExchange => "exchange",
        }
    }

    /// Chrome `args` keys for `(arg0, arg1)`; `None` suppresses the key.
    const fn arg_keys(self) -> (Option<&'static str>, Option<&'static str>) {
        match self {
            TraceName::Round => (Some("round"), None),
            TraceName::SampleChunk | TraceName::FusedChunk => (Some("first"), Some("count")),
            TraceName::SelectStep => (Some("vertex"), Some("gain")),
            TraceName::CommAllReduce
            | TraceName::CommAllGather
            | TraceName::CommBroadcast
            | TraceName::CommExchange => (Some("bytes"), None),
            TraceName::RrrBytes | TraceName::ArenaBytes | TraceName::MaskBytes => {
                (Some("bytes"), None)
            }
            TraceName::IndexBuild => (Some("entries"), None),
            TraceName::SelectTouched => (Some("entries"), Some("vertex")),
            TraceName::QueryBegin => (Some("k"), None),
            TraceName::QueryEnd => (Some("k"), Some("entries")),
            TraceName::CommRetry => (Some("op"), Some("attempt")),
            TraceName::RankDead => (Some("rank"), Some("op")),
            _ => (None, None),
        }
    }

    fn from_u8(x: u8) -> Option<Self> {
        use TraceName::*;
        match x {
            0 => Some(EstimateTheta),
            1 => Some(Round),
            2 => Some(SampleBatch),
            3 => Some(SampleChunk),
            4 => Some(Select),
            5 => Some(SelectSeeds),
            6 => Some(SelectStep),
            7 => Some(CommAllReduce),
            8 => Some(CommAllGather),
            9 => Some(CommBroadcast),
            10 => Some(CommBarrier),
            11 => Some(RrrBytes),
            12 => Some(Generic),
            13 => Some(IndexBuild),
            14 => Some(SelectTouched),
            15 => Some(ArenaBytes),
            16 => Some(CommRetry),
            17 => Some(RankDead),
            18 => Some(FusedChunk),
            19 => Some(MaskBytes),
            20 => Some(QueryBegin),
            21 => Some(QueryEnd),
            22 => Some(CommExchange),
            _ => None,
        }
    }
}

/// One fixed-size trace record. Timestamps are nanoseconds since the trace
/// epoch (the first [`start`] call in the process).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event class (span / mark / counter).
    pub kind: EventKind,
    /// Catalog name.
    pub name: TraceName,
    /// Start time, ns since trace epoch.
    pub ts_ns: u64,
    /// Duration, ns (0 for marks and counters).
    pub dur_ns: u64,
    /// First payload word (meaning depends on `name`).
    pub arg0: u64,
    /// Second payload word.
    pub arg1: u64,
}

/// One event of a merged [`Trace`], tagged with its origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Originating rank (0 for shared-memory runs).
    pub rank: u32,
    /// Originating worker thread id (process-unique ring id).
    pub tid: u32,
    /// The event itself.
    pub event: TraceEvent,
}

// ---------------------------------------------------------------------------
// Global state.

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Monotonically increasing id of the current tracing session; rings lazily
/// reset themselves when they observe a new session, so stale events from a
/// previous run are never collected.
static SESSION: AtomicU64 = AtomicU64::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<Arc<WorkerRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<WorkerRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Pool of rings whose owning thread has exited; reused by the next new
/// thread so short-lived worker threads (one per parallel batch) don't each
/// allocate a fresh buffer.
fn pool() -> &'static Mutex<Vec<Arc<WorkerRing>>> {
    static POOL: OnceLock<Mutex<Vec<Arc<WorkerRing>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Owns this thread's ring; returns it to the pool when the thread exits.
struct RingHandle(Arc<WorkerRing>);

impl Drop for RingHandle {
    fn drop(&mut self) {
        pool()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&self.0));
    }
}

thread_local! {
    static RING: std::cell::RefCell<Option<RingHandle>> =
        const { std::cell::RefCell::new(None) };
}

/// The trace epoch: a process-wide monotonic time origin.
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds from the trace epoch to `t` (saturating at 0 for instants
/// taken before the epoch was pinned).
#[must_use]
pub fn ns_since_epoch(t: Instant) -> u64 {
    u64::try_from(t.saturating_duration_since(epoch()).as_nanos()).unwrap_or(u64::MAX)
}

/// Whether tracing is currently enabled. This is the entire disabled-path
/// cost of every record call: one relaxed load and a branch.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables tracing for a new session.
///
/// `capacity` sets the per-worker ring size in events; `None` reads
/// [`CAPACITY_ENV`] and falls back to [`DEFAULT_CAPACITY`]. Events recorded
/// in previous sessions are discarded lazily.
pub fn start(capacity: Option<usize>) {
    let cap = capacity
        .or_else(|| {
            std::env::var(CAPACITY_ENV)
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or(DEFAULT_CAPACITY)
        .max(1);
    epoch(); // pin the time origin before any event is recorded
    CAPACITY.store(cap, Ordering::Relaxed);
    SESSION.fetch_add(1, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Release);
}

/// Disables tracing. Already-recorded events stay drainable (they belong to
/// the now-frozen session) until the next [`start`].
pub fn stop() {
    ENABLED.store(false, Ordering::Release);
}

/// Runs `f` with this thread's ring for the current session, acquiring (or
/// session-resetting) the ring first.
fn with_ring<T>(f: impl FnOnce(&WorkerRing) -> T) -> T {
    RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let session = SESSION.load(Ordering::Relaxed);
        let cap = CAPACITY.load(Ordering::Relaxed);
        // Re-acquire when absent or when the session changed capacity.
        let stale = match slot.as_ref() {
            None => true,
            Some(h) => h.0.capacity() != cap,
        };
        if stale {
            let recycled = {
                let mut pool = pool().lock().unwrap_or_else(PoisonError::into_inner);
                pool.iter()
                    .position(|r| r.capacity() == cap)
                    .map(|i| pool.swap_remove(i))
            };
            let ring = recycled.unwrap_or_else(|| {
                let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed) as u32;
                let ring = Arc::new(WorkerRing::new(tid, cap));
                registry()
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(Arc::clone(&ring));
                ring
            });
            *slot = Some(RingHandle(ring));
        }
        let ring = &slot.as_ref().expect("ring acquired").0;
        ring.ensure_session(session);
        f(ring)
    })
}

/// Records a completed span that began at `begin`.
#[inline]
pub fn complete(name: TraceName, begin: Instant, arg0: u64, arg1: u64) {
    if !enabled() {
        return;
    }
    let ts_ns = ns_since_epoch(begin);
    let dur_ns = u64::try_from(begin.elapsed().as_nanos()).unwrap_or(u64::MAX);
    with_ring(|r| {
        r.push(TraceEvent {
            kind: EventKind::Span,
            name,
            ts_ns,
            dur_ns,
            arg0,
            arg1,
        });
    });
}

/// Records a point-in-time mark.
#[inline]
pub fn mark(name: TraceName, arg0: u64, arg1: u64) {
    if !enabled() {
        return;
    }
    let ts_ns = ns_since_epoch(Instant::now());
    with_ring(|r| {
        r.push(TraceEvent {
            kind: EventKind::Mark,
            name,
            ts_ns,
            dur_ns: 0,
            arg0,
            arg1,
        });
    });
}

/// Records a sampled counter value (e.g. a memory high-water mark).
#[inline]
pub fn counter(name: TraceName, value: u64) {
    if !enabled() {
        return;
    }
    let ts_ns = ns_since_epoch(Instant::now());
    with_ring(|r| {
        r.push(TraceEvent {
            kind: EventKind::Counter,
            name,
            ts_ns,
            dur_ns: 0,
            arg0: value,
            arg1: 0,
        });
    });
}

/// Tags this thread's ring with a rank id (distributed engines call this at
/// entry so their events carry the right process track).
pub fn set_thread_rank(rank: u32) {
    if !enabled() {
        return;
    }
    with_ring(|r| r.set_rank(rank));
}

/// Drains every current-session ring in the process into one merged trace
/// (rank tags come from [`set_thread_rank`], 0 by default). The shared-memory
/// engines attach this to their run report.
#[must_use]
pub fn collect_all() -> Trace {
    let session = SESSION.load(Ordering::Relaxed);
    let mut events = Vec::new();
    let mut dropped = 0u64;
    let mut dropped_by_worker = Vec::new();
    {
        let registry = registry().lock().unwrap_or_else(PoisonError::into_inner);
        for ring in registry.iter() {
            if ring.session() != session {
                continue;
            }
            let (tid, rank, evs, drops) = ring.drain();
            dropped += drops;
            if drops > 0 {
                dropped_by_worker.push(DroppedCount {
                    rank,
                    tid,
                    dropped: drops,
                });
            }
            events.extend(
                evs.into_iter()
                    .map(|event| TraceRecord { rank, tid, event }),
            );
        }
    }
    events.sort_by_key(|r| (r.rank, r.tid, r.event.ts_ns));
    dropped_by_worker.sort_by_key(|d| (d.rank, d.tid));
    Trace {
        events,
        dropped,
        dropped_by_worker,
    }
}

/// Drains *this thread's* ring and encodes it as a flat `u64` buffer
/// suitable for `all_gather_u64_list`: `[dropped, tid, n, n × 5 event
/// words]`. The distributed engines call this on every rank, gather, and
/// rebuild the merged timeline with [`Trace::from_rank_buffers`]. The
/// header carries the worker id explicitly so drops stay attributable
/// even when every event of that worker was lost.
#[must_use]
pub fn encode_thread_events() -> Vec<u64> {
    let session = SESSION.load(Ordering::Relaxed);
    let (tid, _rank, events, dropped) = RING.with(|slot| match slot.borrow().as_ref() {
        Some(h) if h.0.session() == session => h.0.drain(),
        _ => (0, 0, Vec::new(), 0),
    });
    let mut out = Vec::with_capacity(3 + events.len() * 5);
    out.push(dropped);
    out.push(u64::from(tid));
    out.push(events.len() as u64);
    for e in &events {
        out.push(pack_meta(e.kind, e.name, tid));
        out.push(e.ts_ns);
        out.push(e.dur_ns);
        out.push(e.arg0);
        out.push(e.arg1);
    }
    out
}

fn pack_meta(kind: EventKind, name: TraceName, tid: u32) -> u64 {
    ((kind as u64) << 48) | ((name as u64) << 40) | u64::from(tid)
}

fn unpack_meta(meta: u64) -> Option<(EventKind, TraceName, u32)> {
    let kind = EventKind::from_u8(((meta >> 48) & 0xFF) as u8)?;
    let name = TraceName::from_u8(((meta >> 40) & 0xFF) as u8)?;
    Some((kind, name, (meta & 0xFFFF_FFFF) as u32))
}

// ---------------------------------------------------------------------------
// The merged trace.

/// Events lost by one worker's ring buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DroppedCount {
    /// Originating rank (0 for shared-memory runs).
    pub rank: u32,
    /// Originating worker thread id.
    pub tid: u32,
    /// Events that worker's full ring rejected.
    pub dropped: u64,
}

/// A merged timeline: every recorded event, tagged with rank and worker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events sorted by (rank, tid, timestamp).
    pub events: Vec<TraceRecord>,
    /// Events lost to full ring buffers, summed over all workers and ranks.
    pub dropped: u64,
    /// Per-worker attribution of `dropped` (only workers that lost
    /// events appear), so an overflowing ring can be traced to the
    /// thread that needs a bigger buffer.
    pub dropped_by_worker: Vec<DroppedCount>,
}

impl Trace {
    /// Number of merged events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Rebuilds a merged trace from per-rank [`encode_thread_events`]
    /// buffers in rank order (the output of `all_gather_u64_list`).
    /// Malformed words are skipped rather than panicking: a truncated buffer
    /// yields a truncated — still valid — trace.
    #[must_use]
    pub fn from_rank_buffers(buffers: &[Vec<u64>]) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        let mut dropped_by_worker = Vec::new();
        for (rank, buf) in buffers.iter().enumerate() {
            if buf.len() < 3 {
                continue;
            }
            dropped += buf[0];
            if buf[0] > 0 {
                dropped_by_worker.push(DroppedCount {
                    rank: rank as u32,
                    tid: (buf[1] & 0xFFFF_FFFF) as u32,
                    dropped: buf[0],
                });
            }
            let n = usize::try_from(buf[2]).unwrap_or(0);
            let words = &buf[3..];
            for i in 0..n.min(words.len() / 5) {
                let w = &words[i * 5..i * 5 + 5];
                let Some((kind, name, tid)) = unpack_meta(w[0]) else {
                    continue;
                };
                events.push(TraceRecord {
                    rank: rank as u32,
                    tid,
                    event: TraceEvent {
                        kind,
                        name,
                        ts_ns: w[1],
                        dur_ns: w[2],
                        arg0: w[3],
                        arg1: w[4],
                    },
                });
            }
        }
        events.sort_by_key(|r| (r.rank, r.tid, r.event.ts_ns));
        Trace {
            events,
            dropped,
            dropped_by_worker,
        }
    }

    /// Serializes the trace as Chrome Trace Event Format JSON: an object
    /// with a `traceEvents` array (`X`/`i`/`C` phases plus `M` metadata
    /// naming each rank's process and each worker's track), loadable in
    /// `chrome://tracing` and Perfetto. Timestamps are microseconds from the
    /// trace epoch.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: &str, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(s);
        };
        // Metadata: name every (rank, tid) track once.
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for r in &self.events {
            if seen.contains(&(r.rank, r.tid)) {
                continue;
            }
            if !seen.iter().any(|&(rank, _)| rank == r.rank) {
                emit(
                    &format!(
                        "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\
                         \"args\":{{\"name\":\"rank {}\"}}}}",
                        r.rank, r.rank
                    ),
                    &mut out,
                );
            }
            seen.push((r.rank, r.tid));
            emit(
                &format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\
                     \"args\":{{\"name\":\"worker {}\"}}}}",
                    r.rank, r.tid, r.tid
                ),
                &mut out,
            );
        }
        for r in &self.events {
            let e = &r.event;
            let mut ev = String::with_capacity(96);
            let ph = match e.kind {
                EventKind::Span => "X",
                EventKind::Mark => "i",
                EventKind::Counter => "C",
            };
            let _ = write!(
                ev,
                "{{\"ph\":\"{ph}\",\"name\":\"{}\",\"cat\":\"imm\",\"ts\":{},\"pid\":{},\"tid\":{}",
                e.name.label(),
                micros(e.ts_ns),
                r.rank,
                r.tid
            );
            if e.kind == EventKind::Span {
                let _ = write!(ev, ",\"dur\":{}", micros(e.dur_ns));
            }
            if e.kind == EventKind::Mark {
                ev.push_str(",\"s\":\"t\"");
            }
            let (k0, k1) = e.name.arg_keys();
            let k0 = k0.or(if e.kind == EventKind::Counter {
                Some("value")
            } else {
                None
            });
            if k0.is_some() || k1.is_some() {
                ev.push_str(",\"args\":{");
                if let Some(k) = k0 {
                    let _ = write!(ev, "\"{k}\":{}", e.arg0);
                }
                if let Some(k) = k1 {
                    if k0.is_some() {
                        ev.push(',');
                    }
                    let _ = write!(ev, "\"{k}\":{}", e.arg1);
                }
                ev.push('}');
            }
            ev.push('}');
            emit(&ev, &mut out);
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{},\"dropped_by_worker\":[",
            self.dropped
        );
        for (i, d) in self.dropped_by_worker.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"rank\":{},\"tid\":{},\"dropped\":{}}}",
                if i == 0 { "" } else { "," },
                d.rank,
                d.tid,
                d.dropped
            );
        }
        out.push_str("]}}");
        out
    }
}

/// Formats nanoseconds as decimal microseconds with ns resolution.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global tracer.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn ev(name: TraceName) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Span,
            name,
            ts_ns: 10,
            dur_ns: 5,
            arg0: 1,
            arg1: 2,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        stop();
        complete(TraceName::Round, Instant::now(), 1, 0);
        mark(TraceName::SelectStep, 0, 0);
        counter(TraceName::RrrBytes, 9);
        start(None);
        let t = collect_all();
        assert!(t.is_empty(), "stale events leaked: {:?}", t.events);
        stop();
    }

    #[test]
    fn enabled_round_trip_and_session_isolation() {
        let _g = lock();
        start(None);
        complete(TraceName::EstimateTheta, Instant::now(), 0, 0);
        mark(TraceName::SelectStep, 3, 7);
        counter(TraceName::RrrBytes, 1024);
        let t = collect_all();
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped, 0);
        // A new session discards anything not yet drained.
        complete(TraceName::Round, Instant::now(), 1, 0);
        start(None);
        assert!(collect_all().is_empty());
        stop();
    }

    #[test]
    fn tiny_ring_drops_and_counts() {
        let _g = lock();
        start(Some(2));
        for i in 0..10 {
            mark(TraceName::SelectStep, i, 0);
        }
        let t = collect_all();
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped, 8);
        // The loss is attributed to the worker that overflowed.
        assert_eq!(t.dropped_by_worker.len(), 1);
        assert_eq!(t.dropped_by_worker[0].dropped, 8);
        assert_eq!(t.dropped_by_worker[0].rank, 0);
        stop();
    }

    #[test]
    fn encode_decode_round_trip() {
        let _g = lock();
        start(None);
        complete(TraceName::SampleChunk, Instant::now(), 64, 32);
        mark(TraceName::SelectStep, 5, 9);
        let buf = encode_thread_events();
        // Two rank copies of the same buffer → events tagged rank 0 and 1.
        let t = Trace::from_rank_buffers(&[buf.clone(), buf]);
        assert_eq!(t.len(), 4);
        let ranks: Vec<u32> = t.events.iter().map(|r| r.rank).collect();
        assert!(ranks.contains(&0) && ranks.contains(&1));
        let chunk = t
            .events
            .iter()
            .find(|r| r.event.name == TraceName::SampleChunk)
            .unwrap();
        assert_eq!(chunk.event.arg0, 64);
        assert_eq!(chunk.event.arg1, 32);
        // Encoding drained the ring.
        assert!(encode_thread_events()[2] == 0);
        stop();
    }

    #[test]
    fn malformed_rank_buffers_are_skipped() {
        let t = Trace::from_rank_buffers(&[vec![], vec![3, 1], vec![1, 7, 2, u64::MAX, 0, 0]]);
        assert!(t.events.is_empty());
        assert_eq!(t.dropped, 1);
        // The short `[3, 1]` buffer has no event-count word and is
        // skipped whole; the valid header attributes its drop to tid 7.
        assert_eq!(t.dropped_by_worker.len(), 1);
        assert_eq!(t.dropped_by_worker[0].tid, 7);
        assert_eq!(t.dropped_by_worker[0].rank, 2);
    }

    #[test]
    fn chrome_json_is_valid_and_structured() {
        let t = Trace {
            events: vec![
                TraceRecord {
                    rank: 0,
                    tid: 1,
                    event: ev(TraceName::EstimateTheta),
                },
                TraceRecord {
                    rank: 1,
                    tid: 2,
                    event: TraceEvent {
                        kind: EventKind::Counter,
                        name: TraceName::RrrBytes,
                        ts_ns: 1500,
                        dur_ns: 0,
                        arg0: 4096,
                        arg1: 0,
                    },
                },
                TraceRecord {
                    rank: 1,
                    tid: 2,
                    event: TraceEvent {
                        kind: EventKind::Mark,
                        name: TraceName::SelectStep,
                        ts_ns: 2000,
                        dur_ns: 0,
                        arg0: 7,
                        arg1: 3,
                    },
                },
            ],
            dropped: 4,
            dropped_by_worker: vec![DroppedCount {
                rank: 1,
                tid: 2,
                dropped: 4,
            }],
        };
        let j = t.to_chrome_json();
        validate_json(&j).expect("chrome export must be valid JSON");
        for needle in [
            "\"traceEvents\":[",
            "\"ph\":\"X\"",
            "\"ph\":\"C\"",
            "\"ph\":\"i\"",
            "\"ph\":\"M\"",
            "\"name\":\"rank 1\"",
            "\"name\":\"worker 2\"",
            "\"vertex\":7",
            "\"dropped\":4",
            "\"dropped_by_worker\":[{\"rank\":1,\"tid\":2,\"dropped\":4}]",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn empty_trace_exports_valid_json() {
        let j = Trace::default().to_chrome_json();
        validate_json(&j).unwrap();
        assert!(j.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn micros_formatting() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1234), "1.234");
        assert_eq!(micros(1_000_007), "1000.007");
    }

    #[test]
    fn name_catalog_round_trips() {
        for x in 0..=22u8 {
            let name = TraceName::from_u8(x).expect("catalog entry");
            assert_eq!(name as u8, x);
            assert!(!name.label().is_empty());
        }
        assert!(TraceName::from_u8(23).is_none());
        assert!(EventKind::from_u8(3).is_none());
    }
}
