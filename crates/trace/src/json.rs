//! A dependency-free JSON well-formedness checker.
//!
//! Used by the tracer's own tests and by the `json_check` CLI in CI to
//! validate that exported reports and traces parse as JSON, without pulling
//! a serde stack into this offline workspace. It checks syntax (RFC 8259
//! grammar), not any schema.

/// Validates that `input` is one complete, well-formed JSON value.
///
/// Returns `Err` with a byte offset and message on the first syntax error.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(
                                    self.peek(),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return Err(self.err("bad \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::validate_json;

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+3",
            "\"a\\n\\u00e9\"",
            r#"{"a":[1,2,{"b":null}],"c":"x","d":1.25e-2}"#,
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("rejected {ok}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"unterminated",
            "{} extra",
            "nul",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
