//! Property-based tests for the RNG substrate.

use proptest::prelude::*;
use ripples_rng::lcg::{affine_pow, Lcg64};
use ripples_rng::{LeapFrog, SplitMix64};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Skip-ahead by any n must equal n sequential steps.
    #[test]
    fn discard_matches_stepping(seed in any::<u64>(), n in 0u64..2000) {
        let mut a = Lcg64::new(seed);
        let mut b = a.clone();
        for _ in 0..n {
            a.step();
        }
        b.discard(n);
        prop_assert_eq!(a, b);
    }

    /// affine_pow must be a homomorphism: coeffs(m+n) = coeffs(m) ∘ coeffs(n).
    #[test]
    fn affine_pow_homomorphism(a in any::<u64>(), c in any::<u64>(), m in 0u64..1000, n in 0u64..1000) {
        let (am, cm) = affine_pow(a, c, m);
        let (an, cn) = affine_pow(a, c, n);
        let (amn, cmn) = affine_pow(a, c, m + n);
        prop_assert_eq!(amn, am.wrapping_mul(an));
        prop_assert_eq!(cmn, am.wrapping_mul(cn).wrapping_add(cm));
    }

    /// Leap-frog streams must partition the base sequence for any world size.
    #[test]
    fn leapfrog_partitions(seed in any::<u64>(), world in 1u32..12, rounds in 1usize..40) {
        let base = Lcg64::new(seed);
        let mut serial = base.clone();
        let mut streams: Vec<LeapFrog> =
            (0..world).map(|r| LeapFrog::new(&base, r, world)).collect();
        for _ in 0..rounds {
            for s in streams.iter_mut() {
                prop_assert_eq!(s.step(), serial.step());
            }
        }
    }

    /// Leap-frog discard must commute with stepping for any rank.
    #[test]
    fn leapfrog_discard(seed in any::<u64>(), world in 1u32..8, n in 0u64..500) {
        let base = Lcg64::new(seed);
        let rank = (seed % u64::from(world)) as u32;
        let mut a = LeapFrog::new(&base, rank, world);
        let mut b = a.clone();
        for _ in 0..n {
            a.step();
        }
        b.discard(n);
        prop_assert_eq!(a.step(), b.step());
    }

    /// Unit uniforms always land in [0, 1).
    #[test]
    fn unit_uniform_range(seed in any::<u64>()) {
        let mut g = SplitMix64::new(seed);
        for _ in 0..100 {
            let u = g.unit_f64();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    /// Bounded draws always land in range for any bound ≥ 1.
    #[test]
    fn bounded_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut g = SplitMix64::new(seed);
        for _ in 0..50 {
            prop_assert!(g.bounded_u64(bound) < bound);
        }
    }

    /// Stream derivation is a pure function of (seed, index).
    #[test]
    fn stream_derivation_deterministic(seed in any::<u64>(), idx in any::<u64>()) {
        let mut a = SplitMix64::for_stream(seed, idx);
        let mut b = SplitMix64::for_stream(seed, idx);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Distinct stream indices yield distinct first outputs (mix64 is a
    /// bijection, so collisions would imply equal pre-images).
    #[test]
    fn stream_indices_distinct(seed in any::<u64>(), i in 0u64..1_000, j in 0u64..1_000) {
        prop_assume!(i != j);
        let mut a = SplitMix64::for_stream(seed, i);
        let mut b = SplitMix64::for_stream(seed, j);
        prop_assert_ne!(a.next_u64(), b.next_u64());
    }
}
