//! SplitMix64: a tiny, statistically strong generator used for seeding and
//! for deriving independent per-sample streams.
//!
//! SplitMix64 (Steele, Lea, Flood — "Fast splittable pseudorandom number
//! generators", OOPSLA'14) advances a counter by a fixed odd gamma and mixes
//! it through a variant of the MurmurHash3/Stafford finalizer. Two properties
//! make it the right tool here:
//!
//! 1. **Splittability**: deriving a child stream from `(seed, index)` is one
//!    mix away, so stream creation is O(1) and allocation-free. The Ripples
//!    reproduction uses this to give every RRR sample its own generator,
//!    making outputs *bitwise independent of thread/rank count*.
//! 2. **Equidistribution of the counter**: distinct indices can never collide
//!    within a stream of 2^64 draws.

/// The golden-ratio increment used by SplitMix64.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Applies the 64-bit variant-13 finalizer (Stafford's Mix13).
///
/// This is a bijection on `u64` with excellent avalanche behaviour; it is
/// also used to pre-condition user seeds for [`crate::Lcg64`].
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives the generator for a `(seed, index)` pair.
    ///
    /// Children of distinct indices under the same seed start at states that
    /// are mixes of distinct counters, giving independent-looking streams.
    /// This is the workhorse behind [`crate::stream::StreamFactory`].
    #[inline]
    #[must_use]
    pub fn for_stream(seed: u64, index: u64) -> Self {
        // Two mixing rounds decorrelate (seed, index) pairs that differ in
        // few bits; a single round leaves detectable structure when both the
        // seed and the index are small integers.
        Self::new(mix64(
            mix64(seed).wrapping_add(index.wrapping_mul(GOLDEN_GAMMA)),
        ))
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64_raw(self.state)
    }

    /// Returns the next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        crate::distributions::u64_to_unit_f64(self.next_u64())
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias.
    ///
    /// See [`crate::distributions::bounded_u64`] for the algorithm.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        crate::distributions::bounded_u64(self, bound)
    }

    /// Bernoulli trial: returns `true` with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Advances the stream by `n` draws in O(1).
    ///
    /// The state is a plain counter (each draw adds [`GOLDEN_GAMMA`] before
    /// mixing), so skipping is a single wrapping multiply-add: after
    /// `skip(n)` the next [`SplitMix64::next_u64`] returns exactly what the
    /// `n+1`-th draw of the unskipped stream would have. The vertex-cut
    /// partitioned sampler uses this to reproduce the middle of a per-vertex
    /// coin-flip stream on the rank that owns that slice of the in-edges.
    #[inline]
    pub fn skip(&mut self, n: u64) {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA.wrapping_mul(n));
    }
}

/// The finalizer applied to an already-incremented state (no gamma add).
#[inline]
fn mix64_raw(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl rand::RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        SplitMix64::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bits = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl rand::SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First three outputs for seed 1234567, cross-checked against the
        // reference Java implementation of SplitMix64.
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
        assert_eq!(g.next_u64(), 9817491932198370423);
    }

    #[test]
    fn streams_differ_by_index() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::for_stream(1, 0);
            (0..4).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::for_stream(1, 1);
            (0..4).map(|_| g.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn streams_deterministic() {
        let mut g1 = SplitMix64::for_stream(99, 7);
        let mut g2 = SplitMix64::for_stream(99, 7);
        for _ in 0..16 {
            assert_eq!(g1.next_u64(), g2.next_u64());
        }
    }

    #[test]
    fn unit_f64_range_and_mean() {
        let mut g = SplitMix64::new(3);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = g.unit_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut g = SplitMix64::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| g.bernoulli(0.3)).count();
        let freq = hits as f64 / f64::from(n);
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut g = SplitMix64::new(1);
        assert!(!(0..1000).any(|_| g.bernoulli(0.0)));
        assert!((0..1000).all(|_| g.bernoulli(1.0)));
    }

    #[test]
    fn skip_matches_sequential_draws() {
        for n in [0u64, 1, 2, 7, 63, 1000] {
            let mut seq = SplitMix64::for_stream(42, 9);
            for _ in 0..n {
                seq.next_u64();
            }
            let mut skipped = SplitMix64::for_stream(42, 9);
            skipped.skip(n);
            assert_eq!(skipped, seq, "skip({n}) must equal {n} draws");
            assert_eq!(skipped.next_u64(), seq.next_u64());
        }
    }

    #[test]
    fn mix64_is_injective_on_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }
}
