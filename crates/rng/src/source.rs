//! The minimal random-source interface the diffusion kernels consume.
//!
//! Keeping the kernels generic over this trait lets the same probabilistic
//! BFS run off per-sample SplitMix64 streams (the reproducibility-preserving
//! default) or the paper's leap-frogged LCG ranks — the two modes compared
//! in `benches/ablation_rng.rs`.

/// A stream of uniform random numbers.
pub trait RandomSource {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        crate::distributions::u64_to_unit_f64(self.next_u64())
    }

    /// Uniform integer in `[0, bound)` by multiply-shift (negligible bias
    /// for the bounds used here; `SplitMix64` overrides with exact Lemire
    /// rejection).
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

impl RandomSource for crate::SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        crate::SplitMix64::next_u64(self)
    }

    #[inline]
    fn unit_f64(&mut self) -> f64 {
        crate::SplitMix64::unit_f64(self)
    }

    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        crate::SplitMix64::bounded_u64(self, bound)
    }
}

impl RandomSource for crate::Lcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        crate::Lcg64::next_u64(self)
    }

    #[inline]
    fn unit_f64(&mut self) -> f64 {
        crate::Lcg64::unit_f64(self)
    }
}

impl RandomSource for crate::LeapFrog {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        crate::LeapFrog::next_u64(self)
    }

    #[inline]
    fn unit_f64(&mut self) -> f64 {
        crate::LeapFrog::unit_f64(self)
    }
}

impl RandomSource for crate::stream::RankStream {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        crate::stream::RankStream::next_u64(self)
    }

    #[inline]
    fn unit_f64(&mut self) -> f64 {
        crate::stream::RankStream::unit_f64(self)
    }

    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        crate::stream::RankStream::bounded_u64(self, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lcg64, SplitMix64};

    fn exercise<R: RandomSource>(mut r: R) {
        for _ in 0..200 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
            assert!(r.bounded_u64(13) < 13);
        }
        assert!(!(0..100).any(|_| r.bernoulli(0.0)));
        assert!((0..100).all(|_| r.bernoulli(1.0)));
    }

    #[test]
    fn all_sources_conform() {
        exercise(SplitMix64::new(1));
        exercise(Lcg64::new(1));
        let base = Lcg64::new(2);
        exercise(crate::LeapFrog::new(&base, 0, 4));
        exercise(crate::stream::RankStream::new(3, 1, 4));
    }

    #[test]
    fn trait_and_inherent_agree_for_splitmix() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..32 {
            assert_eq!(RandomSource::next_u64(&mut a), SplitMix64::next_u64(&mut b));
        }
    }
}
