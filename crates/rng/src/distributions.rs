//! The handful of distributions the influence-maximization kernels need.
//!
//! Hot loops in `ripples-diffusion` draw millions of Bernoulli variates and
//! bounded integers per second, so everything here is branch-light and
//! allocation-free.

use crate::SplitMix64;

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
///
/// Uses the top 53 bits (the significand width of `f64`), which for LCGs over
/// Z/2^64 are also the statistically strongest bits.
#[inline]
#[must_use]
pub fn u64_to_unit_f64(bits: u64) -> f64 {
    // 2^-53 as a constant; (bits >> 11) is uniform on [0, 2^53).
    const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
    ((bits >> 11) as f64) * SCALE
}

/// Draws a uniform integer in `[0, bound)` without modulo bias using Lemire's
/// multiply-shift rejection method.
///
/// # Panics
///
/// Panics if `bound == 0` — in **every** build profile. An earlier revision
/// `debug_assert!`ed and silently returned 0 in release, which meant the
/// same program could panic or not depending on compiler flags; a
/// release-with-debug-assertions CI leg (the oracle job) would then disagree
/// with a plain release build. The empty range `[0, 0)` has no uniform
/// value, so the only profile-independent contract is to reject it.
#[inline]
pub fn bounded_u64(rng: &mut SplitMix64, bound: u64) -> u64 {
    assert!(bound > 0, "bounded_u64 requires bound > 0");
    // Lemire 2019: x*bound / 2^64 is uniform once low-product rejection
    // removes the bias region of size (2^64 mod bound).
    let mut x = rng.next_u64();
    let mut m = (u128::from(x)) * (u128::from(bound));
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            x = rng.next_u64();
            m = (u128::from(x)) * (u128::from(bound));
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A reusable uniform-`[0,1)` sampler (zero state; exists so call sites read
/// declaratively and so alternative output mixers can be swapped in one
/// place).
#[derive(Clone, Copy, Debug, Default)]
pub struct UnitUniform;

impl UnitUniform {
    /// Samples `[0, 1)`.
    #[inline]
    pub fn sample(self, rng: &mut SplitMix64) -> f64 {
        rng.unit_f64()
    }
}

/// A Bernoulli distribution with fixed success probability.
///
/// Pre-computes the 64-bit integer threshold so each trial is a single
/// compare against raw bits — measurably faster than a float compare in the
/// edge-sampling loop, and exact for probabilities representable in 64 bits.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    /// Succeed iff `bits < threshold`; `u64::MAX` means "always" (p = 1.0
    /// must always succeed even though the comparison is strict).
    threshold: u64,
    always: bool,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution. `p` is clamped to `[0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return Self {
                threshold: u64::MAX,
                always: true,
            };
        }
        // p * 2^64, computed via 2^32 squares to stay in f64 range exactly.
        let threshold = (p * (u64::MAX as f64 + 1.0)) as u64;
        Self {
            threshold,
            always: false,
        }
    }

    /// Performs one trial.
    #[inline]
    pub fn sample(self, rng: &mut SplitMix64) -> bool {
        self.always || rng.next_u64() < self.threshold
    }

    /// The probability this distribution was built with (recovered from the
    /// threshold; exact for p ∈ {0, 1}).
    #[must_use]
    pub fn p(self) -> f64 {
        if self.always {
            1.0
        } else {
            self.threshold as f64 / (u64::MAX as f64 + 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_f64_extremes() {
        assert_eq!(u64_to_unit_f64(0), 0.0);
        let max = u64_to_unit_f64(u64::MAX);
        assert!(max < 1.0);
        assert!(max > 0.9999999);
    }

    #[test]
    fn bounded_u64_in_range_and_covers() {
        let mut rng = SplitMix64::new(17);
        let bound = 10;
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = bounded_u64(&mut rng, bound);
            assert!(v < bound);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residue never drawn");
    }

    #[test]
    fn bounded_u64_bound_one() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            assert_eq!(bounded_u64(&mut rng, 1), 0);
        }
    }

    /// Regression (ISSUE 5): a zero bound must panic in *both* profiles.
    /// The pre-fix code panicked in debug but silently returned 0 in
    /// release, so this test fails under `cargo test --release` against it.
    #[test]
    #[should_panic(expected = "bound > 0")]
    fn bounded_u64_zero_bound_panics_in_every_profile() {
        let mut rng = SplitMix64::new(1);
        let _ = bounded_u64(&mut rng, 0);
    }

    #[test]
    fn bounded_u64_uniformity() {
        let mut rng = SplitMix64::new(99);
        let bound = 7u64;
        let n = 140_000;
        let mut counts = [0u32; 7];
        for _ in 0..n {
            counts[bounded_u64(&mut rng, bound) as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.05, "residue {i} off by {dev}");
        }
    }

    #[test]
    fn bernoulli_zero_and_one() {
        let mut rng = SplitMix64::new(5);
        let never = Bernoulli::new(0.0);
        let always = Bernoulli::new(1.0);
        for _ in 0..1000 {
            assert!(!never.sample(&mut rng));
            assert!(always.sample(&mut rng));
        }
    }

    #[test]
    fn bernoulli_frequency_half() {
        let mut rng = SplitMix64::new(8);
        let d = Bernoulli::new(0.5);
        let n = 100_000;
        let hits = (0..n).filter(|_| d.sample(&mut rng)).count();
        let freq = hits as f64 / f64::from(n);
        assert!((freq - 0.5).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn bernoulli_p_roundtrip() {
        for p in [0.0, 0.1, 0.25, 0.5, 0.9, 1.0] {
            let d = Bernoulli::new(p);
            assert!((d.p() - p).abs() < 1e-9, "p {p} -> {}", d.p());
        }
    }

    #[test]
    fn bernoulli_clamps() {
        let mut rng = SplitMix64::new(2);
        assert!(Bernoulli::new(2.0).sample(&mut rng));
        assert!(!Bernoulli::new(-1.0).sample(&mut rng));
    }
}
