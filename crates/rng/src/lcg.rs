//! 64-bit linear congruential generator with O(log n) skip-ahead.
//!
//! The recurrence is the classic affine map over Z/2^64:
//!
//! ```text
//! x_{n+1} = a · x_n + c   (mod 2^64)
//! ```
//!
//! with Knuth's MMIX constants, the same family TRNG's `lcg64` uses. Because
//! the modulus is a power of two the low bits have short periods, so the
//! *output* function returns the high 32 bits per step and composes two steps
//! for a full `u64` — callers that only need a `[0,1)` double get the top 53
//! bits of one step, which are the strong ones.

/// Knuth MMIX multiplier.
pub const MMIX_MULTIPLIER: u64 = 6364136223846793005;
/// Knuth MMIX increment.
pub const MMIX_INCREMENT: u64 = 1442695040888963407;

/// A 64-bit linear congruential generator `x ← a·x + c (mod 2^64)`.
///
/// Supports arbitrary-stride jumps in O(log stride) time via
/// [`Lcg64::discard`], which is what makes leap-frog splitting and
/// block-splitting across ranks cheap (see [`crate::leapfrog`]).
///
/// ```
/// use ripples_rng::Lcg64;
///
/// let mut stepped = Lcg64::new(42);
/// for _ in 0..1_000 {
///     stepped.step();
/// }
/// let jumped = Lcg64::new(42).jumped(1_000);
/// assert_eq!(stepped, jumped); // O(log n) skip-ahead
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lcg64 {
    state: u64,
    multiplier: u64,
    increment: u64,
}

impl Lcg64 {
    /// Creates a generator with the MMIX parameters seeded with `seed`.
    ///
    /// The seed is pre-mixed through one SplitMix64 round so that small or
    /// correlated seeds (0, 1, 2, …) do not produce correlated early output.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: crate::splitmix::mix64(seed),
            multiplier: MMIX_MULTIPLIER,
            increment: MMIX_INCREMENT,
        }
    }

    /// Creates a generator with explicit parameters and *raw* (unmixed) state.
    ///
    /// Used by [`crate::leapfrog::LeapFrog`] to build derived streams whose
    /// multiplier/increment encode a stride of the base sequence.
    #[must_use]
    pub const fn from_parts(state: u64, multiplier: u64, increment: u64) -> Self {
        Self {
            state,
            multiplier,
            increment,
        }
    }

    /// The raw internal state (before output mixing).
    #[must_use]
    pub const fn state(&self) -> u64 {
        self.state
    }

    /// The multiplier `a` of the affine update.
    #[must_use]
    pub const fn multiplier(&self) -> u64 {
        self.multiplier
    }

    /// The increment `c` of the affine update.
    #[must_use]
    pub const fn increment(&self) -> u64 {
        self.increment
    }

    /// Advances the state by one step and returns the *new* raw state.
    #[inline]
    pub fn step(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(self.multiplier)
            .wrapping_add(self.increment);
        self.state
    }

    /// Returns the next 32 random bits (the high half of one step).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    /// Returns the next 64 random bits (high halves of two steps).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let hi = u64::from(self.next_u32());
        let lo = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Returns a uniform `f64` in `[0, 1)` using the top 53 bits of one step.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        crate::distributions::u64_to_unit_f64(self.step())
    }

    /// Skips the generator ahead by `n` steps in O(log n) time.
    ///
    /// Uses Brown's decomposition: the n-fold composition of `x ↦ a·x + c`
    /// is itself affine, `x ↦ A·x + C` with `A = aⁿ` and
    /// `C = c·(aⁿ⁻¹ + … + a + 1)`, both computable by binary exponentiation
    /// entirely in wrapping arithmetic (no division by the even `a − 1`).
    pub fn discard(&mut self, n: u64) {
        let (a_total, c_total) = affine_pow(self.multiplier, self.increment, n);
        self.state = self.state.wrapping_mul(a_total).wrapping_add(c_total);
    }

    /// Returns a copy of this generator advanced by `n` steps, leaving `self`
    /// untouched.
    #[must_use]
    pub fn jumped(&self, n: u64) -> Self {
        let mut g = self.clone();
        g.discard(n);
        g
    }
}

/// Computes the coefficients `(A, C)` of the `n`-fold composition of the
/// affine map `x ↦ a·x + c` over Z/2^64, i.e. the map `x ↦ A·x + C` equal to
/// applying the update `n` times.
#[must_use]
pub fn affine_pow(a: u64, c: u64, mut n: u64) -> (u64, u64) {
    // Invariant: applying (a_total, c_total) then (cur_a, cur_c)^(remaining n)
    // equals the original n-fold map.
    let mut a_total: u64 = 1;
    let mut c_total: u64 = 0;
    let mut cur_a = a;
    let mut cur_c = c;
    while n > 0 {
        if n & 1 == 1 {
            a_total = a_total.wrapping_mul(cur_a);
            c_total = c_total.wrapping_mul(cur_a).wrapping_add(cur_c);
        }
        cur_c = cur_c.wrapping_mul(cur_a.wrapping_add(1));
        cur_a = cur_a.wrapping_mul(cur_a);
        n >>= 1;
    }
    (a_total, c_total)
}

impl rand::RngCore for Lcg64 {
    fn next_u32(&mut self) -> u32 {
        Lcg64::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        Lcg64::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bits = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_matches_recurrence() {
        let mut g = Lcg64::new(42);
        let x0 = g.state();
        let x1 = g.step();
        assert_eq!(
            x1,
            x0.wrapping_mul(MMIX_MULTIPLIER)
                .wrapping_add(MMIX_INCREMENT)
        );
    }

    #[test]
    fn discard_equals_iterated_stepping() {
        for n in [0u64, 1, 2, 3, 7, 64, 1000, 12345] {
            let mut a = Lcg64::new(7);
            let mut b = a.clone();
            for _ in 0..n {
                a.step();
            }
            b.discard(n);
            assert_eq!(a, b, "discard({n}) diverged from stepping");
        }
    }

    #[test]
    fn jumped_does_not_mutate_original() {
        let g = Lcg64::new(9);
        let before = g.clone();
        let j = g.jumped(100);
        assert_eq!(g, before);
        assert_ne!(j.state(), g.state());
    }

    #[test]
    fn affine_pow_identity_and_single() {
        let (a0, c0) = affine_pow(MMIX_MULTIPLIER, MMIX_INCREMENT, 0);
        assert_eq!((a0, c0), (1, 0));
        let (a1, c1) = affine_pow(MMIX_MULTIPLIER, MMIX_INCREMENT, 1);
        assert_eq!((a1, c1), (MMIX_MULTIPLIER, MMIX_INCREMENT));
    }

    #[test]
    fn affine_pow_composes() {
        // (a,c)^(m+n) == (a,c)^m ∘ (a,c)^n for a few (m, n).
        for (m, n) in [(3u64, 5u64), (17, 1), (100, 255), (1, 1)] {
            let (am, cm) = affine_pow(MMIX_MULTIPLIER, MMIX_INCREMENT, m);
            let (an, cn) = affine_pow(MMIX_MULTIPLIER, MMIX_INCREMENT, n);
            let (amn, cmn) = affine_pow(MMIX_MULTIPLIER, MMIX_INCREMENT, m + n);
            // Apply n first then m: A = am*an, C = am*cn + cm.
            assert_eq!(amn, am.wrapping_mul(an));
            assert_eq!(cmn, am.wrapping_mul(cn).wrapping_add(cm));
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut g = Lcg64::new(123);
        for _ in 0..10_000 {
            let u = g.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_f64_mean_reasonable() {
        let mut g = Lcg64::new(2024);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| g.unit_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn distinct_seeds_distinct_output() {
        let mut a = Lcg64::new(1);
        let mut b = Lcg64::new(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn rngcore_fill_bytes_works() {
        use rand::RngCore as _;
        let mut g = Lcg64::new(5);
        let mut buf = [0u8; 33];
        g.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
