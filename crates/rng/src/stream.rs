//! Deterministic stream derivation: one master seed fans out to per-rank,
//! per-sample, and per-phase generators.
//!
//! The distributed IMM algorithm assigns RRR sample `i` to some rank; which
//! rank depends on the partition (θ/p each). If randomness were drawn from
//! per-rank sequences, the *content* of sample `i` would change whenever `p`
//! changes, making cross-configuration testing (and debugging) miserable.
//! [`StreamFactory`] instead keys every generator by a stable *logical*
//! index — the global sample id, the vertex id, the Monte-Carlo trial id —
//! so that:
//!
//! * sequential, multithreaded, and distributed runs with the same master
//!   seed produce **identical RRR sets and identical seed sets**;
//! * results are reproducible regardless of scheduling.
//!
//! The paper-faithful leap-frog mode ([`RankStream`]) is kept for the
//! distributed implementation benchmarks and for the RNG ablation study.

use crate::{Lcg64, LeapFrog, SplitMix64};

/// Domain-separation tags so that generators for different purposes never
/// collide even when their logical indices do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKind {
    /// One stream per RRR sample (keyed by global sample index).
    Sample,
    /// One stream per forward Monte-Carlo trial.
    ForwardTrial,
    /// One stream per estimation-round sample batch.
    Estimation,
    /// Anything else (graph generation, shuffling, …).
    Auxiliary,
}

impl StreamKind {
    const fn tag(self) -> u64 {
        match self {
            StreamKind::Sample => 0x5151_0001,
            StreamKind::ForwardTrial => 0x5151_0002,
            StreamKind::Estimation => 0x5151_0003,
            StreamKind::Auxiliary => 0x5151_0004,
        }
    }
}

/// Fans a master seed out into independent logical streams.
#[derive(Clone, Copy, Debug)]
pub struct StreamFactory {
    master: u64,
}

impl StreamFactory {
    /// Creates a factory from the experiment's master seed.
    #[must_use]
    pub const fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed.
    #[must_use]
    pub const fn master(&self) -> u64 {
        self.master
    }

    /// Generator for logical stream `index` of `kind`.
    #[inline]
    #[must_use]
    pub fn stream(&self, kind: StreamKind, index: u64) -> SplitMix64 {
        SplitMix64::for_stream(self.master ^ kind.tag().rotate_left(32), index)
    }

    /// Shorthand for the per-RRR-sample stream.
    #[inline]
    #[must_use]
    pub fn sample_stream(&self, sample_index: u64) -> SplitMix64 {
        self.stream(StreamKind::Sample, sample_index)
    }

    /// Shorthand for the per-forward-trial stream.
    #[inline]
    #[must_use]
    pub fn trial_stream(&self, trial_index: u64) -> SplitMix64 {
        self.stream(StreamKind::ForwardTrial, trial_index)
    }

    /// A derived factory for a sub-experiment (e.g. one estimation round).
    #[must_use]
    pub fn child(&self, label: u64) -> Self {
        Self {
            master: crate::splitmix::mix64(self.master ^ label.rotate_left(17)),
        }
    }
}

/// Paper-faithful per-rank stream: leap-frog split of one global LCG.
///
/// Rank `r` of `p` sees draws `x_r, x_{r+p}, …` of the base sequence seeded
/// by the master seed. Used by the distributed implementation when running
/// in `RngMode::LeapFrog` (see `ripples-core`), and compared against the
/// per-sample SplitMix derivation in `benches/ablation_rng.rs`.
#[derive(Clone, Debug)]
pub struct RankStream {
    lf: LeapFrog,
}

impl RankStream {
    /// Creates the leap-frog stream for `rank` of `world` from the master
    /// seed.
    #[must_use]
    pub fn new(master: u64, rank: u32, world: u32) -> Self {
        let base = Lcg64::new(master);
        Self {
            lf: LeapFrog::new(&base, rank, world),
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.lf.unit_f64()
    }

    /// Next 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.lf.next_u64()
    }

    /// Uniform integer in `[0, bound)` (multiply-shift; the negligible bias
    /// of not rejecting is acceptable for vertex selection and matches what
    /// the original C++ implementation does with `std::uniform_int` over an
    /// LCG).
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_domain_separated() {
        let f = StreamFactory::new(123);
        let mut a = f.stream(StreamKind::Sample, 5);
        let mut b = f.stream(StreamKind::ForwardTrial, 5);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn same_index_same_stream() {
        let f = StreamFactory::new(9);
        let mut a = f.sample_stream(42);
        let mut b = f.sample_stream(42);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn child_differs_from_parent() {
        let f = StreamFactory::new(7);
        let c = f.child(1);
        assert_ne!(f.master(), c.master());
        let mut a = f.sample_stream(0);
        let mut b = c.sample_stream(0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn rank_streams_partition_base_sequence() {
        // Union of all rank streams == serial LCG sequence.
        let master = 555;
        let world = 3;
        let mut serial = Lcg64::new(master);
        let mut ranks: Vec<RankStream> = (0..world)
            .map(|r| RankStream::new(master, r, world))
            .collect();
        for _ in 0..20 {
            for r in ranks.iter_mut() {
                assert_eq!(r.lf.step(), serial.step());
            }
        }
    }

    #[test]
    fn bounded_u64_in_range() {
        let mut r = RankStream::new(1, 0, 2);
        for _ in 0..1000 {
            assert!(r.bounded_u64(17) < 17);
        }
    }
}
