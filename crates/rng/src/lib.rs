//! Parallel pseudorandom-number substrate for `ripples-rs`.
//!
//! The CLUSTER'19 Ripples paper generates reverse-reachability samples on many
//! MPI ranks at once and stresses that *"accurate generation of pseudorandom
//! numbers in parallel is critical to guarantee the approximation bounds of
//! the algorithm"*. It uses the TRNG library's 64-bit linear congruential
//! generator split across ranks with the **leap-frog** method.
//!
//! This crate reimplements that substrate from scratch:
//!
//! * [`Lcg64`] — a 64-bit LCG with O(log n) [`Lcg64::discard`] (skip-ahead)
//!   using Brown's binary decomposition of the affine update, exactly the
//!   capability TRNG provides.
//! * [`LeapFrog`] — splits one LCG sequence into `p` disjoint interleaved
//!   streams (rank *i* consumes x_i, x_{i+p}, x_{i+2p}, …), the paper's
//!   distribution strategy.
//! * [`SplitMix64`] — a fast seeding/stream-derivation generator used to
//!   derive statistically independent per-sample generators, which makes
//!   every Ripples result *independent of the number of ranks/threads* (a
//!   stronger reproducibility property than leap-frog; both are provided and
//!   benchmarked against each other in `ripples-bench`).
//! * [`distributions`] — the small set of distributions the algorithms need:
//!   uniform `f64` in `[0,1)`, Bernoulli trials, and unbiased bounded
//!   integers (Lemire rejection sampling).
//! * [`stream`] — deterministic stream derivation: one master seed fans out
//!   to per-rank, per-sample, and per-phase generators.
//!
//! All generators implement [`rand::RngCore`] so they compose with the wider
//! ecosystem, but the hot paths in `ripples-diffusion` call the inherent
//! methods directly (they are `#[inline]` and branch-free).

#![warn(missing_docs)]

pub mod distributions;
pub mod lcg;
pub mod leapfrog;
pub mod source;
pub mod splitmix;
pub mod stream;

pub use distributions::{Bernoulli, UnitUniform};
pub use lcg::Lcg64;
pub use leapfrog::LeapFrog;
pub use source::RandomSource;
pub use splitmix::SplitMix64;
pub use stream::{RankStream, StreamFactory};

/// Convenience alias used throughout the workspace: the generator every hot
/// loop uses. Chosen for speed and for exact-reproducibility guarantees; see
/// the crate docs.
pub type DefaultRng = SplitMix64;
