//! Classic seed-selection heuristics from the paper's related work, used as
//! quality baselines: DegreeDiscount (Chen et al., KDD'09) and plain
//! high-degree / random selection.
//!
//! The paper (§2) credits degree discounting with "excellent speedups … on
//! relatively large datasets" while noting it forfeits the approximation
//! guarantee — a trade the quality tests quantify against IMM.

use ripples_graph::{Graph, Vertex};
use ripples_rng::SplitMix64;

/// DegreeDiscountIC (Chen, Wang, Yang 2009), tuned for the Independent
/// Cascade model with a representative propagation probability `p`.
///
/// Each round picks the vertex maximizing the discounted degree
/// `dd(v) = d(v) − 2·t(v) − (d(v) − t(v))·t(v)·p`, where `t(v)` counts v's
/// already-selected neighbors. Runs in `O(k·log n + m)` with a lazy
/// rescoring pass (here: simple argmax per round, adequate at library
/// scale).
///
/// # Panics
///
/// Panics unless `p ∈ [0, 1]`.
#[must_use]
pub fn degree_discount_ic(graph: &Graph, k: u32, p: f64) -> Vec<Vertex> {
    assert!((0.0..=1.0).contains(&p), "propagation probability in [0,1]");
    let n = graph.num_vertices();
    let k = k.min(n);
    let degree: Vec<f64> = (0..n).map(|v| graph.out_degree(v) as f64).collect();
    let mut tickets = vec![0.0f64; n as usize]; // t(v): selected neighbors
    let mut selected = vec![false; n as usize];
    let mut seeds = Vec::with_capacity(k as usize);
    for _ in 0..k {
        let mut best: Option<(f64, Vertex)> = None;
        for v in 0..n {
            if selected[v as usize] {
                continue;
            }
            let d = degree[v as usize];
            let t = tickets[v as usize];
            let dd = d - 2.0 * t - (d - t) * t * p;
            match best {
                Some((bd, bv)) if bd > dd || (bd == dd && bv < v) => {}
                _ => best = Some((dd, v)),
            }
        }
        let Some((_, v)) = best else { break };
        selected[v as usize] = true;
        seeds.push(v);
        // Discount the neighbors' scores.
        for &u in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
            if !selected[u as usize] {
                tickets[u as usize] += 1.0;
            }
        }
    }
    seeds
}

/// The `k` highest out-degree vertices (ties by id).
#[must_use]
pub fn high_degree_seeds(graph: &Graph, k: u32) -> Vec<Vertex> {
    let n = graph.num_vertices();
    let k = k.min(n) as usize;
    let mut order: Vec<Vertex> = (0..n).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(graph.out_degree(v)), v));
    order.truncate(k);
    order
}

/// `k` distinct uniform-random vertices (deterministic in `seed`).
#[must_use]
pub fn random_seeds(graph: &Graph, k: u32, seed: u64) -> Vec<Vertex> {
    let n = graph.num_vertices();
    let k = k.min(n) as usize;
    let mut rng = SplitMix64::for_stream(seed, 0x52_41_4E_44);
    let mut pool: Vec<Vertex> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.bounded_u64((n as usize - i) as u64) as usize;
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::generators::barabasi_albert;
    use ripples_graph::{GraphBuilder, WeightModel};

    #[test]
    fn degree_discount_starts_with_top_degree() {
        let g = barabasi_albert(500, 3, WeightModel::Constant(0.05), false, 5);
        let dd = degree_discount_ic(&g, 1, 0.05);
        let hd = high_degree_seeds(&g, 1);
        assert_eq!(dd, hd, "first pick must be the max-degree vertex");
    }

    #[test]
    fn degree_discount_spreads_out_of_neighborhoods() {
        // Two stars; k = 2 should take both centers, not a center + spoke.
        let mut b = GraphBuilder::new(12);
        for v in 1..6 {
            b.add_undirected(0, v, 0.1).unwrap();
        }
        for v in 7..12 {
            b.add_undirected(6, v, 0.1).unwrap();
        }
        let g = b.build().unwrap();
        let dd = degree_discount_ic(&g, 2, 0.1);
        assert_eq!(dd, vec![0, 6]);
    }

    #[test]
    fn degree_discount_distinct_and_sized() {
        let g = barabasi_albert(300, 4, WeightModel::Constant(0.1), false, 6);
        let dd = degree_discount_ic(&g, 25, 0.1);
        assert_eq!(dd.len(), 25);
        let mut s = dd.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 25);
    }

    #[test]
    fn high_degree_ordering() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(2, 0, 1.0).unwrap();
        b.add_edge(2, 1, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.add_edge(1, 0, 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(high_degree_seeds(&g, 2), vec![2, 1]);
    }

    #[test]
    fn random_seeds_distinct_and_deterministic() {
        let g = barabasi_albert(100, 2, WeightModel::Constant(0.1), false, 3);
        let a = random_seeds(&g, 20, 7);
        let b = random_seeds(&g, 20, 7);
        let c = random_seeds(&g, 20, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut s = a.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn k_clamps() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(degree_discount_ic(&g, 10, 0.1).len(), 3);
        assert_eq!(high_degree_seeds(&g, 10).len(), 3);
        assert_eq!(random_seeds(&g, 10, 1).len(), 3);
    }
}
