//! The classic Monte-Carlo greedy baseline with CELF lazy evaluation.
//!
//! Kempe et al. (2003) select seeds by greedy hill climbing on a
//! Monte-Carlo oracle for `E[|I(S)|]`; Leskovec et al. (2007) observed that
//! submodularity lets the greedy skip most marginal-gain re-evaluations
//! (CELF). The paper's related-work section positions IMM against exactly
//! this lineage, and the test suite uses this implementation to
//! cross-validate IMM's output quality on small graphs: both should find
//! seed sets of comparable expected influence.
//!
//! Complexity makes this baseline unusable beyond toy sizes (the paper: the
//! Kempe-era flow "could be run only on small networks"), which is itself
//! one of the reproduction's observable claims — see
//! `benches/end_to_end_imm.rs`.

use crate::phases::PhaseTimers;
use ripples_diffusion::{estimate_spread, DiffusionModel};
use ripples_graph::{Graph, Vertex};
use ripples_rng::StreamFactory;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a CELF greedy run.
#[derive(Clone, Debug)]
pub struct CelfResult {
    /// Selected seeds in selection order.
    pub seeds: Vec<Vertex>,
    /// Estimated expected influence after each prefix of `seeds`.
    pub spreads: Vec<f64>,
    /// Number of spread evaluations performed (the quantity CELF saves).
    pub evaluations: u64,
    /// Wall-clock timers (everything accrues to `Other`).
    pub timers: PhaseTimers,
}

/// Greedy seed selection on a Monte-Carlo spread oracle with CELF lazy
/// evaluation.
///
/// `trials` Monte-Carlo cascades are averaged per oracle call, with common
/// random numbers across calls (the same per-trial RNG streams), which
/// keeps marginal-gain estimates consistent and the lazy bound valid in
/// practice.
///
/// # Panics
///
/// Panics if `trials == 0`.
#[must_use]
pub fn celf_greedy(
    graph: &Graph,
    model: DiffusionModel,
    k: u32,
    trials: u32,
    seed: u64,
) -> CelfResult {
    assert!(trials > 0, "need at least one Monte-Carlo trial");
    let n = graph.num_vertices();
    let k = k.min(n);
    let factory = StreamFactory::new(seed);
    let mut timers = PhaseTimers::new();
    let mut evaluations = 0u64;

    let start = std::time::Instant::now();
    let mut seeds: Vec<Vertex> = Vec::with_capacity(k as usize);
    let mut spreads: Vec<f64> = Vec::with_capacity(k as usize);
    let mut current_spread = 0.0f64;

    // Initial pass: spread({v}) for every vertex.
    // f64 bit-ordering: spreads are non-negative, so to_bits is monotone.
    let mut heap: BinaryHeap<(u64, Reverse<Vertex>, u32)> = BinaryHeap::with_capacity(n as usize);
    let mut scratch: Vec<Vertex> = Vec::with_capacity(k as usize + 1);
    for v in 0..n {
        let s = estimate_spread(graph, model, &[v], trials, &factory);
        evaluations += 1;
        heap.push((s.to_bits(), Reverse(v), 0));
    }

    let mut round = 0u32;
    while seeds.len() < k as usize {
        let Some((gain_bits, Reverse(v), validated)) = heap.pop() else {
            break;
        };
        if validated < round {
            // Stale upper bound: re-evaluate v's marginal gain against the
            // current seed set and reinsert.
            scratch.clear();
            scratch.extend_from_slice(&seeds);
            scratch.push(v);
            let s = estimate_spread(graph, model, &scratch, trials, &factory);
            evaluations += 1;
            let marginal = (s - current_spread).max(0.0);
            heap.push((marginal.to_bits(), Reverse(v), round));
            continue;
        }
        seeds.push(v);
        current_spread += f64::from_bits(gain_bits);
        spreads.push(current_spread);
        round += 1;
    }
    timers.add(crate::phases::Phase::Other, start.elapsed());

    CelfResult {
        seeds,
        spreads,
        evaluations,
        timers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::{generators::erdos_renyi, GraphBuilder, WeightModel};

    #[test]
    fn picks_the_dominant_hub() {
        // Star with certain edges: center spreads to everything.
        let mut b = GraphBuilder::new(8);
        for v in 1..8 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let r = celf_greedy(&g, DiffusionModel::IndependentCascade, 1, 16, 3);
        assert_eq!(r.seeds, vec![0]);
        assert!((r.spreads[0] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn spreads_are_monotone() {
        let g = erdos_renyi(60, 360, WeightModel::Constant(0.15), false, 4);
        let r = celf_greedy(&g, DiffusionModel::IndependentCascade, 5, 64, 1);
        assert_eq!(r.seeds.len(), 5);
        for w in r.spreads.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "spread decreased: {:?}", r.spreads);
        }
    }

    #[test]
    fn lazy_saves_evaluations() {
        let g = erdos_renyi(80, 480, WeightModel::Constant(0.1), false, 7);
        let k = 5;
        let r = celf_greedy(&g, DiffusionModel::IndependentCascade, k, 32, 2);
        // Naive greedy would do n evaluations per round: n*k total.
        let naive = u64::from(g.num_vertices()) * u64::from(k);
        assert!(
            r.evaluations < naive / 2,
            "CELF used {} evaluations, naive would use {naive}",
            r.evaluations
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = erdos_renyi(50, 300, WeightModel::Constant(0.2), false, 9);
        let a = celf_greedy(&g, DiffusionModel::LinearThreshold, 3, 32, 5);
        let b = celf_greedy(&g, DiffusionModel::LinearThreshold, 3, 32, 5);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn k_clamps_to_n() {
        let g = erdos_renyi(5, 10, WeightModel::Constant(0.5), false, 2);
        let r = celf_greedy(&g, DiffusionModel::IndependentCascade, 50, 8, 1);
        assert_eq!(r.seeds.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_trials_panics() {
        let g = erdos_renyi(5, 10, WeightModel::Constant(0.5), false, 2);
        let _ = celf_greedy(&g, DiffusionModel::IndependentCascade, 1, 0, 1);
    }
}
