//! Sampling-engine dispatch: reference vs. fused multi-cascade kernels.
//!
//! PR 3 gave seed *selection* a cost-model dispatch ([`crate::SelectEngine`]);
//! this module does the same for the *sampling* phase. Two kernels produce
//! the RRR collection:
//!
//! * **Reference** — [`ripples_diffusion::sample_batch`] /
//!   [`ripples_diffusion::sample_batch_sequential`]: one cascade at a time,
//!   bitwise-deterministic layout keyed by global sample index. This is the
//!   oracle-checked kernel every engine defaults to.
//! * **Fused** — [`ripples_diffusion::sample_batch_fused`]: 64 cascades per
//!   frontier pass with per-vertex bitmask state (Göktürk & Kaya's fusing
//!   recipe). It draws a *different RNG schedule*, so its output is
//!   statistically equivalent to the reference (same root distribution,
//!   same influence estimates — see the `sampler-equivalence` oracle
//!   check), not bitwise equal.
//!
//! [`SampleEngine::Auto`] probes the first batch with the reference kernel
//! and switches to the fused kernel only when the measured mean RRR set
//! size says the fusing overhead will amortize (see
//! [`fused_sampling_is_profitable`]).

use ripples_diffusion::{
    sample_batch, sample_batch_fused, sample_batch_sequential, BatchOutcome, DiffusionModel,
    RrrStore, FUSED_LANES,
};
use ripples_graph::Graph;
use ripples_rng::StreamFactory;

/// Which sampling kernel a run uses for its RRR batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleEngine {
    /// Cost-model dispatch: probe with the reference kernel, then
    /// [`SampleEngine::Fused`] when [`fused_sampling_is_profitable`], else
    /// [`SampleEngine::Reference`] for the rest of the run.
    Auto,
    /// The one-cascade-at-a-time reference sampler (the default; bitwise
    /// deterministic layout, used by every cross-engine equality test).
    Reference,
    /// The 64-lane fused multi-cascade sampler.
    Fused,
}

impl SampleEngine {
    /// Parses a CLI tag (`--sample ENGINE`).
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "auto" => Some(SampleEngine::Auto),
            "reference" | "ref" => Some(SampleEngine::Reference),
            "fused" => Some(SampleEngine::Fused),
            _ => None,
        }
    }

    /// Canonical tag, the inverse of [`SampleEngine::from_tag`].
    #[must_use]
    pub const fn tag(self) -> &'static str {
        match self {
            SampleEngine::Auto => "auto",
            SampleEngine::Reference => "reference",
            SampleEngine::Fused => "fused",
        }
    }
}

/// Samples drawn with the reference kernel before [`SampleEngine::Auto`]
/// commits to a kernel — one full lane word, so the probe itself is exactly
/// the work a single fused block would cover.
pub const AUTO_PROBE_SAMPLES: usize = FUSED_LANES;

/// The measured cost model behind [`SampleEngine::Auto`].
///
/// The fused kernel advances 64 cascades per frontier pass but pays
/// full-width (64-lane) RNG draws on every examined edge, so it wins only
/// when cascades *overlap*: when a typical frontier vertex is live in
/// several lanes at once, one traversal amortizes across them. With RRR
/// sets of mean size `s̄` over `n` vertices, the expected number of lanes
/// touching a given sampled vertex is `64·s̄/n`; we require ≥ 4 so the
/// per-edge draw widening is repaid several times over:
///
/// ```text
/// fused  ⇔  64·s̄ ≥ 4·n  ⇔  s̄ ≥ n/16
/// ```
///
/// Sparse-cascade graphs (WC weights, s̄ ≲ 50) stay on the reference
/// kernel; dense synthetic graphs whose cascades span a large fraction of
/// the vertex set go fused.
#[must_use]
pub fn fused_sampling_is_profitable(n: u32, mean_set_size: f64) -> bool {
    n > 0 && FUSED_LANES as f64 * mean_set_size >= 4.0 * f64::from(n)
}

/// A stateful sampler the engines hand to [`crate::seq::run_imm_compact`]:
/// routes each batch to the reference or fused kernel according to the
/// requested [`SampleEngine`], resolving `Auto` once from a measured probe.
///
/// The resolution is deterministic for a fixed `(graph, params)` pair —
/// the probe samples are the collection's first `AUTO_PROBE_SAMPLES`
/// reference samples, whose sizes depend only on the seeded RNG streams —
/// so `Auto` runs are reproducible across thread counts like everything
/// else.
pub struct SamplerDispatch<'a> {
    graph: &'a Graph,
    model: DiffusionModel,
    factory: &'a StreamFactory,
    /// Reference batches run the rayon parallel sampler when true, the
    /// strictly sequential one when false (the fused kernel parallelizes
    /// internally either way, with a thread-count-invariant layout).
    parallel: bool,
    /// `Some(true)` = fused, `Some(false)` = reference, `None` = `Auto`
    /// not yet resolved.
    fused: Option<bool>,
}

impl<'a> SamplerDispatch<'a> {
    /// Creates a dispatcher for one run.
    #[must_use]
    pub fn new(
        graph: &'a Graph,
        model: DiffusionModel,
        factory: &'a StreamFactory,
        engine: SampleEngine,
        parallel: bool,
    ) -> Self {
        Self {
            graph,
            model,
            factory,
            parallel,
            fused: match engine {
                SampleEngine::Auto => None,
                SampleEngine::Reference => Some(false),
                SampleEngine::Fused => Some(true),
            },
        }
    }

    /// The kernel this dispatcher has committed to: `Some(true)` fused,
    /// `Some(false)` reference, `None` while `Auto` is still unprobed.
    #[must_use]
    pub fn resolved_fused(&self) -> Option<bool> {
        self.fused
    }

    fn reference<S: RrrStore>(&self, first: u64, count: usize, out: &mut S) -> BatchOutcome {
        if self.parallel {
            sample_batch(self.graph, self.model, self.factory, first, count, out)
        } else {
            sample_batch_sequential(self.graph, self.model, self.factory, first, count, out)
        }
    }

    /// Appends samples `first..first+count` to `out` with the resolved
    /// kernel; on the first non-empty `Auto` batch, draws up to
    /// [`AUTO_PROBE_SAMPLES`] reference samples first and commits to a
    /// kernel based on their mean size.
    pub fn sample_batch<S: RrrStore>(
        &mut self,
        first: u64,
        count: usize,
        out: &mut S,
    ) -> BatchOutcome {
        let fused = match self.fused {
            Some(f) => f,
            None => {
                if count == 0 {
                    return BatchOutcome::default();
                }
                let probe = count.min(AUTO_PROBE_SAMPLES);
                let old_len = out.len();
                let mut outcome = self.reference(first, probe, out);
                let entries: usize = (old_len..out.len()).map(|j| out.sample_len(j)).sum();
                let mean = entries as f64 / probe as f64;
                let fused = fused_sampling_is_profitable(self.graph.num_vertices(), mean);
                self.fused = Some(fused);
                let rest = count - probe;
                if rest > 0 {
                    outcome.absorb(self.sample_batch(first + probe as u64, rest, out));
                }
                return outcome;
            }
        };
        if fused {
            sample_batch_fused(self.graph, self.model, self.factory, first, count, out)
        } else {
            self.reference(first, count, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_diffusion::RrrCollection;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    fn dense_graph() -> Graph {
        // High constant IC probability → cascades span most of the graph,
        // so s̄ ≫ n/16 and the cost model goes fused.
        erdos_renyi(200, 3000, WeightModel::Constant(0.4), false, 5)
    }

    fn sparse_graph() -> Graph {
        // Weighted-cascade-like tiny probabilities → near-singleton sets.
        erdos_renyi(2000, 8000, WeightModel::Constant(0.005), false, 5)
    }

    #[test]
    fn engine_tags_round_trip() {
        for engine in [
            SampleEngine::Auto,
            SampleEngine::Reference,
            SampleEngine::Fused,
        ] {
            assert_eq!(SampleEngine::from_tag(engine.tag()), Some(engine));
        }
        assert_eq!(SampleEngine::from_tag("ref"), Some(SampleEngine::Reference));
        assert!(SampleEngine::from_tag("bogus").is_none());
    }

    #[test]
    fn cost_model_thresholds() {
        assert!(!fused_sampling_is_profitable(0, 10.0));
        // s̄ = n/16 exactly meets the bar.
        assert!(fused_sampling_is_profitable(1600, 100.0));
        assert!(!fused_sampling_is_profitable(1600, 99.0));
    }

    #[test]
    fn reference_dispatch_is_bitwise_identical() {
        let g = dense_graph();
        let f = StreamFactory::new(11);
        let model = DiffusionModel::IndependentCascade;
        let mut direct = RrrCollection::new();
        sample_batch_sequential(&g, model, &f, 0, 150, &mut direct);
        let mut routed = RrrCollection::new();
        let mut d = SamplerDispatch::new(&g, model, &f, SampleEngine::Reference, false);
        d.sample_batch(0, 150, &mut routed);
        assert_eq!(direct.len(), routed.len());
        for j in 0..direct.len() {
            assert_eq!(direct.get(j), routed.get(j));
        }
    }

    #[test]
    fn fused_dispatch_is_bitwise_identical_to_fused_kernel() {
        let g = dense_graph();
        let f = StreamFactory::new(11);
        let model = DiffusionModel::IndependentCascade;
        let mut direct = RrrCollection::new();
        sample_batch_fused(&g, model, &f, 0, 150, &mut direct);
        let mut routed = RrrCollection::new();
        let mut d = SamplerDispatch::new(&g, model, &f, SampleEngine::Fused, true);
        let outcome = d.sample_batch(0, 150, &mut routed);
        assert_eq!(direct.len(), routed.len());
        for j in 0..direct.len() {
            assert_eq!(direct.get(j), routed.get(j));
        }
        assert!(outcome.fused_passes > 0);
    }

    #[test]
    fn auto_goes_fused_on_dense_cascades() {
        let g = dense_graph();
        let f = StreamFactory::new(11);
        let mut out = RrrCollection::new();
        let mut d = SamplerDispatch::new(
            &g,
            DiffusionModel::IndependentCascade,
            &f,
            SampleEngine::Auto,
            false,
        );
        assert_eq!(d.resolved_fused(), None);
        let outcome = d.sample_batch(0, 200, &mut out);
        assert_eq!(d.resolved_fused(), Some(true));
        assert_eq!(out.len(), 200);
        assert!(outcome.fused_passes > 0, "remainder did not run fused");
        // The probe prefix is the reference sampler's output, bitwise.
        let mut reference = RrrCollection::new();
        sample_batch_sequential(
            &g,
            DiffusionModel::IndependentCascade,
            &f,
            0,
            AUTO_PROBE_SAMPLES,
            &mut reference,
        );
        for j in 0..AUTO_PROBE_SAMPLES {
            assert_eq!(out.get(j), reference.get(j));
        }
    }

    #[test]
    fn auto_stays_reference_on_sparse_cascades() {
        let g = sparse_graph();
        let f = StreamFactory::new(11);
        let mut out = RrrCollection::new();
        let mut d = SamplerDispatch::new(
            &g,
            DiffusionModel::IndependentCascade,
            &f,
            SampleEngine::Auto,
            false,
        );
        let outcome = d.sample_batch(0, 300, &mut out);
        assert_eq!(d.resolved_fused(), Some(false));
        assert_eq!(out.len(), 300);
        assert_eq!(outcome.fused_passes, 0);
        // A fully reference-resolved Auto run is bitwise the reference run.
        let mut reference = RrrCollection::new();
        sample_batch_sequential(
            &g,
            DiffusionModel::IndependentCascade,
            &f,
            0,
            300,
            &mut reference,
        );
        for j in 0..300 {
            assert_eq!(out.get(j), reference.get(j));
        }
    }

    #[test]
    fn auto_probe_smaller_than_batch_still_resolves() {
        let g = dense_graph();
        let f = StreamFactory::new(3);
        let mut out = RrrCollection::new();
        let mut d = SamplerDispatch::new(
            &g,
            DiffusionModel::IndependentCascade,
            &f,
            SampleEngine::Auto,
            false,
        );
        // Batch smaller than the probe width: decide on what we have.
        d.sample_batch(0, 10, &mut out);
        assert!(d.resolved_fused().is_some());
        assert_eq!(out.len(), 10);
        // Later batches reuse the committed kernel.
        d.sample_batch(10, 90, &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn empty_batch_does_not_resolve_auto() {
        let g = dense_graph();
        let f = StreamFactory::new(3);
        let mut out = RrrCollection::new();
        let mut d = SamplerDispatch::new(
            &g,
            DiffusionModel::IndependentCascade,
            &f,
            SampleEngine::Auto,
            false,
        );
        let outcome = d.sample_batch(0, 0, &mut out);
        assert_eq!(d.resolved_fused(), None);
        assert_eq!(outcome.fused_passes, 0);
        assert!(out.is_empty());
    }
}
