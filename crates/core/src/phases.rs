//! Phase timers matching the paper's runtime decomposition.
//!
//! Every runtime figure in the paper (Figures 3–8) decomposes execution into
//! four phases: *EstimateTheta* (Algorithm 2, including the `Sample` calls it
//! makes internally — the paper's convention, §4.1), *Sample* (the top-up
//! invocation from Algorithm 1's skeleton), *SelectSeeds* (Algorithm 4), and
//! *Other*.

use std::fmt;
use std::time::{Duration, Instant};

/// One of the paper's four runtime phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Algorithm 2, inclusive of its internal sampling and selection.
    EstimateTheta,
    /// The final `Sample(G, θ − |R|, R)` top-up from Algorithm 1.
    Sample,
    /// Algorithm 4 on the full collection.
    SelectSeeds,
    /// Everything else (allocation, result assembly, …).
    Other,
}

impl Phase {
    /// All phases in the paper's reporting order.
    pub const ALL: [Phase; 4] = [
        Phase::EstimateTheta,
        Phase::Sample,
        Phase::SelectSeeds,
        Phase::Other,
    ];

    /// Column label used by the benchmark harness.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Phase::EstimateTheta => "EstimateTheta",
            Phase::Sample => "Sample",
            Phase::SelectSeeds => "SelectSeeds",
            Phase::Other => "Other",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated wall-clock per phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimers {
    estimate: Duration,
    sample: Duration,
    select: Duration,
    other: Duration,
}

impl PhaseTimers {
    /// Creates zeroed timers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to `phase`.
    pub fn add(&mut self, phase: Phase, d: Duration) {
        let slot = match phase {
            Phase::EstimateTheta => &mut self.estimate,
            Phase::Sample => &mut self.sample,
            Phase::SelectSeeds => &mut self.select,
            Phase::Other => &mut self.other,
        };
        *slot += d;
    }

    /// Times `f` and charges it to `phase`.
    pub fn record<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Accumulated time of one phase.
    #[must_use]
    pub fn get(&self, phase: Phase) -> Duration {
        match phase {
            Phase::EstimateTheta => self.estimate,
            Phase::Sample => self.sample,
            Phase::SelectSeeds => self.select,
            Phase::Other => self.other,
        }
    }

    /// Sum over all phases.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.estimate + self.sample + self.select + self.other
    }

    /// Merges another timer set into this one.
    pub fn merge(&mut self, other: &PhaseTimers) {
        self.estimate += other.estimate;
        self.sample += other.sample;
        self.select += other.select;
        self.other += other.other;
    }
}

impl fmt::Display for PhaseTimers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EstimateTheta {:.3}s | Sample {:.3}s | SelectSeeds {:.3}s | Other {:.3}s",
            self.estimate.as_secs_f64(),
            self.sample.as_secs_f64(),
            self.select.as_secs_f64(),
            self.other.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut t = PhaseTimers::new();
        let out = t.record(Phase::Sample, || 42);
        assert_eq!(out, 42);
        t.add(Phase::Sample, Duration::from_millis(5));
        assert!(t.get(Phase::Sample) >= Duration::from_millis(5));
        assert_eq!(t.get(Phase::SelectSeeds), Duration::ZERO);
    }

    #[test]
    fn total_sums_phases() {
        let mut t = PhaseTimers::new();
        t.add(Phase::EstimateTheta, Duration::from_millis(2));
        t.add(Phase::Other, Duration::from_millis(3));
        assert_eq!(t.total(), Duration::from_millis(5));
    }

    #[test]
    fn merge_adds() {
        let mut a = PhaseTimers::new();
        a.add(Phase::Sample, Duration::from_millis(1));
        let mut b = PhaseTimers::new();
        b.add(Phase::Sample, Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.get(Phase::Sample), Duration::from_millis(3));
    }

    #[test]
    fn labels() {
        assert_eq!(Phase::EstimateTheta.label(), "EstimateTheta");
        assert_eq!(Phase::ALL.len(), 4);
    }
}
