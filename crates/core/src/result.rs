//! The result record every IMM implementation returns.

use crate::memory::MemoryStats;
use crate::obs::RunReport;
use crate::phases::PhaseTimers;
use ripples_graph::Vertex;

/// Everything an IMM run reports.
#[derive(Clone, Debug)]
pub struct ImmResult {
    /// The selected seed set, in selection order.
    pub seeds: Vec<Vertex>,
    /// The final number of RRR samples `θ`.
    pub theta: usize,
    /// Coverage fraction `F_R(S)` of the final selection.
    pub coverage_fraction: f64,
    /// The lower bound on OPT established by estimation (`LB`), if any
    /// round certified one.
    pub opt_lower_bound: Option<f64>,
    /// Wall-clock per phase.
    pub timers: PhaseTimers,
    /// Memory accounting.
    pub memory: MemoryStats,
    /// Per-sample work units (in-edges examined) for the final collection;
    /// feeds the strong-scaling replay model. Empty if the implementation
    /// did not track it.
    pub sample_work: Vec<u64>,
    /// Full observability record: phase spans, work counters, histograms,
    /// and (for distributed engines) communication accounting. `timers` is
    /// the flat view derived from this report's span tree.
    pub report: RunReport,
}

impl ImmResult {
    /// `n·F_R(S)`-style influence estimate implied by coverage: the unbiased
    /// estimator of E[|I(S)|] from the RRR samples themselves.
    #[must_use]
    pub fn coverage_influence_estimate(&self, n: u32) -> f64 {
        self.coverage_fraction * f64::from(n)
    }

    /// Total sampling work units recorded.
    #[must_use]
    pub fn total_sample_work(&self) -> u64 {
        self.sample_work.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn influence_estimate_scales_with_n() {
        let r = ImmResult {
            seeds: vec![1, 2],
            theta: 100,
            coverage_fraction: 0.25,
            opt_lower_bound: None,
            timers: PhaseTimers::new(),
            memory: MemoryStats::default(),
            sample_work: vec![3, 4],
            report: RunReport::new("test"),
        };
        assert!((r.coverage_influence_estimate(400) - 100.0).abs() < 1e-12);
        assert_eq!(r.total_sample_work(), 7);
    }
}
