//! TIM/TIM⁺ (Tang et al., SIGMOD 2014) — IMM's direct predecessor.
//!
//! The CLUSTER'19 paper positions IMM as "a significant improvement over
//! its predecessors", of which TIM⁺ is the one IMM's own paper benchmarks
//! against. Implementing it makes that improvement *measurable* here:
//! TIM⁺'s KPT estimation is looser than IMM's martingale bound, so it
//! requests noticeably more RRR samples for the same `(ε, ℓ)` guarantee —
//! see `benches/ablation_theta.rs` and `tests/quality.rs`.
//!
//! Structure (following the TIM paper, natural logs throughout):
//!
//! 1. **KPT estimation**: for `i = 1 .. log₂(n) − 1`, draw
//!    `cᵢ = (6ℓ·ln n + 6·ln log₂ n)·2ⁱ` RRR sets; each set `R` contributes
//!    `κ(R) = 1 − (1 − w(R)/m)ᵏ`, where the *width* `w(R)` is the number of
//!    edges entering `R`'s vertices. Stop when the mean κ exceeds `1/2ⁱ`;
//!    then `KPT = (mean κ)·n/2`.
//! 2. **Refinement (the ⁺)**: greedily select `k` seeds from the phase-1
//!    samples, measure their coverage fraction `f`, and take
//!    `KPT⁺ = max(KPT, f·n/(1+ε′))` — a cheap lower-bound tightening.
//! 3. **Selection**: draw `θ = λ/KPT⁺` samples with
//!    `λ = (8 + 2ε)·n·(ℓ·ln n + ln C(n,k) + ln 2)/ε²`, then run the
//!    standard greedy max-cover.

use crate::memory::MemoryStats;
use crate::obs::RunReport;
use crate::params::ImmParams;
use crate::result::ImmResult;
use crate::sample::{SampleEngine, SamplerDispatch};
use crate::select::{select_with_engine_store, SelectEngine};
use crate::theta::log_binomial;
use ripples_diffusion::{DynRrrStore, RrrCollection, RrrStore, RrrStoreKind, StorageConfig};
use ripples_graph::Graph;
use ripples_rng::StreamFactory;

/// The width of RRR set `i` in a store: the number of edges pointing into
/// its vertices (TIM's proxy for the cost/influence of the set). Computed
/// through [`RrrStore::for_each_vertex`] so compressed backends stream
/// gap-decoded ids without materializing the slice.
fn width<S: RrrStore>(graph: &Graph, store: &S, i: usize) -> u64 {
    let mut w = 0u64;
    store.for_each_vertex(i, |v| w += graph.in_degree(v) as u64);
    w
}

/// Runs TIM⁺. Parameter semantics match [`crate::ImmParams`]; the returned
/// [`ImmResult`] is directly comparable with the IMM engines' output.
#[must_use]
pub fn tim_plus(graph: &Graph, params: &ImmParams) -> ImmResult {
    tim_plus_with_sample(graph, params, SampleEngine::Reference)
}

/// [`tim_plus`] with an explicit sampling engine (CLI `--sample`). With
/// [`SampleEngine::Reference`] this is bitwise [`tim_plus`]; the fused
/// sampler draws a different RNG schedule, so its output is statistically
/// (not bitwise) equivalent.
#[must_use]
pub fn tim_plus_with_sample(graph: &Graph, params: &ImmParams, sample: SampleEngine) -> ImmResult {
    tim_plus_impl(graph, params, sample, RrrCollection::new())
}

/// [`tim_plus_with_sample`] over an explicit RRR storage backend (CLI
/// `--rrr-store` / `--rrr-budget`). The flat backend takes exactly the
/// [`tim_plus_with_sample`] code paths; compressed backends stream widths
/// and greedy cover through decode-on-touch, so the seed set and θ are
/// identical for every backend.
#[must_use]
pub fn tim_plus_with_storage(
    graph: &Graph,
    params: &ImmParams,
    sample: SampleEngine,
    storage: StorageConfig,
) -> ImmResult {
    if storage.kind == RrrStoreKind::Flat {
        return tim_plus_with_sample(graph, params, sample);
    }
    tim_plus_impl(
        graph,
        params,
        sample,
        DynRrrStore::new(storage, graph.num_vertices()),
    )
}

fn tim_plus_impl<S: RrrStore>(
    graph: &Graph,
    params: &ImmParams,
    sample: SampleEngine,
    store: S,
) -> ImmResult {
    let n = graph.num_vertices();
    if n < 2 {
        return crate::seq::immopt_sequential(graph, params);
    }
    let k = params.effective_k(n);
    let m = graph.num_edges().max(1) as f64;
    let nf = f64::from(n);
    let ln_n = nf.ln();
    let log2_n = nf.log2();
    let ell = params.ell * (1.0 + std::f64::consts::LN_2 / ln_n);
    let epsilon = params.epsilon;
    let factory = StreamFactory::new(params.seed);
    let mut sampler = SamplerDispatch::new(graph, params.model, &factory, sample, false);

    let mut report = RunReport::new("tim");
    let mut memory = MemoryStats {
        counter_bytes: n as usize * std::mem::size_of::<u64>(),
        graph_bytes: graph.resident_bytes(),
        ..MemoryStats::default()
    };
    let mut collection = store;
    let mut sample_work: Vec<u64> = Vec::new();
    let mut next_index: u64 = 0;

    // --- Phase 1 + 2: KPT estimation and refinement ----------------------
    let mut kpt = 1.0f64;
    {
        let collection = &mut collection;
        let sample_work = &mut sample_work;
        let next_index = &mut next_index;
        let memory = &mut memory;
        let kpt = &mut kpt;
        let sampler = &mut sampler;
        report.span("EstimateTheta", |report| {
            let c_base = 6.0 * ell * ln_n + 6.0 * log2_n.ln().max(0.0);
            let max_i = (log2_n.floor() as u32).saturating_sub(1).max(1);
            for i in 1..=max_i {
                let budget = (c_base * 2f64.powi(i as i32)).ceil() as usize;
                let stop = report.span(&format!("round-{i}"), |report| {
                    if budget > collection.len() {
                        let need = budget - collection.len();
                        let old_len = collection.len();
                        let outcome = report.span("sample", |_| {
                            sampler.sample_batch(*next_index, need, collection)
                        });
                        *next_index += need as u64;
                        sample_work.extend_from_slice(&outcome.work_per_sample);
                        crate::seq::record_batch(report, collection, old_len, &outcome);
                    }
                    report.counters.theta_rounds += 1;
                    report.counters.round_budgets.push(budget as u64);
                    let t_decode = std::time::Instant::now();
                    let mut kappa_sum = 0.0f64;
                    for j in 0..collection.len() {
                        let w = width(graph, &*collection, j) as f64;
                        kappa_sum += 1.0 - (1.0 - w / m).powi(k as i32);
                    }
                    report.counters.decode_nanos +=
                        u64::try_from(t_decode.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    let mean_kappa = kappa_sum / collection.len() as f64;
                    report.counters.round_coverage.push(mean_kappa);
                    if mean_kappa > 1.0 / 2f64.powi(i as i32) {
                        *kpt = mean_kappa * nf / 2.0;
                        true
                    } else {
                        false
                    }
                });
                if stop {
                    break;
                }
            }
            // TIM⁺ refinement: greedy coverage on the phase-1 samples gives
            // an alternative lower bound on OPT.
            if !collection.is_empty() {
                let (sel, refine_stats) = report.span("refine", |_| {
                    select_with_engine_store(SelectEngine::Sequential, &*collection, n, k, 1)
                });
                report.counters.select_iterations += sel.seeds.len() as u64;
                report.counters.decode_nanos += refine_stats.decode_nanos;
                let eps_prime = std::f64::consts::SQRT_2 * epsilon;
                let refined = sel.fraction * nf / (1.0 + eps_prime);
                *kpt = kpt.max(refined);
            }
            memory.observe_rrr(collection.resident_bytes());
        });
    }

    // --- Phase 3: sampling at θ = λ/KPT⁺ ---------------------------------
    let lambda = (8.0 + 2.0 * epsilon)
        * nf
        * (ell * ln_n + log_binomial(u64::from(n), u64::from(k)) + std::f64::consts::LN_2)
        / (epsilon * epsilon);
    let theta = (lambda / kpt.max(1.0)).ceil() as usize;
    if theta > collection.len() {
        let need = theta - collection.len();
        let old_len = collection.len();
        let collection_ref = &mut collection;
        let outcome = report.span("Sample", |_| {
            sampler.sample_batch(next_index, need, collection_ref)
        });
        sample_work.extend_from_slice(&outcome.work_per_sample);
        crate::seq::record_batch(&mut report, &collection, old_len, &outcome);
    }
    memory.observe_rrr(collection.resident_bytes());

    // TIM's θ is the largest of any engine here, so its one final greedy
    // pass is exactly where the fused index pays for itself.
    let (final_sel, select_stats) = report.span("SelectSeeds", |_| {
        select_with_engine_store(SelectEngine::Fused, &collection, n, k, 1)
    });
    report.counters.select_iterations += final_sel.seeds.len() as u64;
    memory.observe_index(select_stats.index_bytes);
    report.counters.rrr_entries = collection.total_entries();
    report.counters.rrr_bytes_peak = memory.peak_rrr_bytes as u64;
    report.counters.theta_final = collection.len() as u64;
    report.counters.unsorted_pushes = collection.unsorted_pushes();
    report.counters.select_entries_touched = select_stats.entries_touched;
    report.counters.index_build_nanos = select_stats.index_build_nanos;
    report.counters.index_bytes_peak = select_stats.index_bytes as u64;
    report.counters.decode_nanos += select_stats.decode_nanos;
    report.counters.spill_bytes_written = collection.spill_bytes_written();
    if crate::obs::trace::enabled() {
        report.trace = Some(crate::obs::trace::collect_all());
    }

    ImmResult {
        seeds: final_sel.seeds,
        theta: collection.len(),
        coverage_fraction: final_sel.fraction,
        opt_lower_bound: Some(kpt),
        timers: report.phase_timers(),
        memory,
        sample_work,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::immopt_sequential;
    use ripples_diffusion::{estimate_spread, DiffusionModel};
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    fn test_graph() -> Graph {
        erdos_renyi(
            400,
            3200,
            WeightModel::UniformRandom { seed: 12 },
            false,
            48,
        )
    }

    #[test]
    fn returns_k_distinct_seeds() {
        let g = test_graph();
        let p = ImmParams::new(6, 0.5, DiffusionModel::IndependentCascade, 4);
        let r = tim_plus(&g, &p);
        assert_eq!(r.seeds.len(), 6);
        let mut s = r.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 6);
        assert!(r.theta > 0);
    }

    #[test]
    fn imm_needs_no_more_samples_than_tim() {
        // The headline improvement: IMM's martingale bound is tighter, so
        // θ_IMM ≤ θ_TIM for the same guarantee (allow a small fudge for the
        // randomized lower bounds).
        let g = test_graph();
        let p = ImmParams::new(10, 0.5, DiffusionModel::IndependentCascade, 4);
        let tim = tim_plus(&g, &p);
        let imm = immopt_sequential(&g, &p);
        assert!(
            (imm.theta as f64) < 1.2 * tim.theta as f64,
            "IMM θ {} not better than TIM θ {}",
            imm.theta,
            tim.theta
        );
    }

    #[test]
    fn quality_matches_imm() {
        let g = test_graph();
        let model = DiffusionModel::IndependentCascade;
        let p = ImmParams::new(5, 0.5, model, 6);
        let tim = tim_plus(&g, &p);
        let imm = immopt_sequential(&g, &p);
        let factory = StreamFactory::new(99);
        let s_tim = estimate_spread(&g, model, &tim.seeds, 800, &factory);
        let s_imm = estimate_spread(&g, model, &imm.seeds, 800, &factory);
        let ratio = s_tim / s_imm.max(1.0);
        assert!(
            (0.9..=1.1).contains(&ratio),
            "TIM quality diverged: {s_tim} vs {s_imm}"
        );
    }

    #[test]
    fn lt_model_works() {
        let g = erdos_renyi(300, 2400, WeightModel::UniformRandom { seed: 2 }, true, 9);
        let p = ImmParams::new(4, 0.5, DiffusionModel::LinearThreshold, 3);
        let r = tim_plus(&g, &p);
        assert_eq!(r.seeds.len(), 4);
    }

    #[test]
    fn storage_backends_match_flat() {
        let g = test_graph();
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 4);
        let flat = tim_plus(&g, &p);
        for kind in [
            RrrStoreKind::Varint,
            RrrStoreKind::Bitpack,
            RrrStoreKind::Spill,
        ] {
            let budget = (kind == RrrStoreKind::Spill).then_some(4096);
            let r = tim_plus_with_storage(
                &g,
                &p,
                SampleEngine::Reference,
                StorageConfig { kind, budget },
            );
            assert_eq!(r.seeds, flat.seeds, "{kind:?}");
            assert_eq!(r.theta, flat.theta, "{kind:?}");
            assert!(
                r.report.counters.rrr_bytes_peak < flat.report.counters.rrr_bytes_peak,
                "{kind:?} peak {} not below flat {}",
                r.report.counters.rrr_bytes_peak,
                flat.report.counters.rrr_bytes_peak
            );
        }
    }

    #[test]
    fn degenerate_graph() {
        let g = ripples_graph::GraphBuilder::new(1).build().unwrap();
        let p = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade, 1);
        assert_eq!(tim_plus(&g, &p).seeds, vec![0]);
    }
}
