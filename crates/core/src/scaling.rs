//! Strong-scaling replay model.
//!
//! This reproduction runs on a single-core host, so Figures 5–8 (20-thread
//! and 16/1024-node strong scaling) cannot be *timed* directly. Instead,
//! every IMM run records an exact [`WorkTrace`] — per-sample work units and
//! selection volume — and this module replays that trace under a parallel
//! execution model:
//!
//! * **Sampling** is a bag of independent tasks (one per RRR set): its
//!   parallel runtime is the LPT (longest-processing-time) makespan of the
//!   per-sample work over `p` workers. This captures both the ideal `W/p`
//!   regime and the straggler regime where one giant RRR set bounds the
//!   runtime — the effect that caps LT scaling in Figure 8.
//! * **Selection** follows Algorithm 4's cost structure: a counting scan of
//!   all sample entries (splits perfectly), plus `k` greedy rounds in which
//!   every thread binary-searches every (local) sample — the non-scaling
//!   term that dominates small inputs (§4.2: "for the small inputs … the
//!   greedy strategy of seed selection starts to dominate").
//! * **Communication** (distributed only) is `(k + 1)` recursive-doubling
//!   all-reduces of the `n`-counter array per selection pass, priced by the
//!   α–β model of [`ripples_comm::costmodel`].
//!
//! Absolute seconds depend on the calibrated work rate; the deliverable is
//! the *shape* of the curves, which depends only on work ratios.

use ripples_comm::ClusterSpec;

/// The work profile of one IMM run, extracted from an
/// [`crate::ImmResult`].
#[derive(Clone, Debug)]
pub struct WorkTrace {
    /// Vertex count of the input.
    pub n: u32,
    /// Seed-set size.
    pub k: u32,
    /// Final sample count θ.
    pub theta: usize,
    /// Per-sample work units (in-edges examined), one entry per sample.
    pub sample_work: Vec<u64>,
    /// Total vertex entries across the stored RRR sets.
    pub rrr_entries: u64,
    /// Number of `n`-counter all-reduces one full run performs (selection
    /// passes × (k+1)); used only by the distributed predictor.
    pub allreduce_calls: u64,
}

impl WorkTrace {
    /// Builds a trace from a finished run.
    ///
    /// `selection_passes` is the number of times seed selection ran (one
    /// per estimation round plus the final pass); the distributed
    /// communication volume scales with it.
    #[must_use]
    pub fn from_result(result: &crate::ImmResult, n: u32, k: u32, selection_passes: u32) -> Self {
        // Entries are not carried on the result; reconstruct from the
        // compact layout's exact byte formula: offsets (θ+1)·8 + entries·4.
        let offset_bytes = (result.theta + 1) * std::mem::size_of::<usize>();
        let entry_bytes = result.memory.peak_rrr_bytes.saturating_sub(offset_bytes);
        WorkTrace {
            n,
            k,
            theta: result.theta,
            sample_work: result.sample_work.clone(),
            rrr_entries: (entry_bytes / std::mem::size_of::<u32>()) as u64,
            allreduce_calls: u64::from(selection_passes) * (u64::from(k) + 1),
        }
    }

    /// Total sampling work units.
    #[must_use]
    pub fn total_sample_work(&self) -> u64 {
        self.sample_work.iter().sum()
    }

    /// Mean RRR-set size (entries per sample).
    #[must_use]
    pub fn mean_rrr_size(&self) -> f64 {
        if self.theta == 0 {
            0.0
        } else {
            self.rrr_entries as f64 / self.theta as f64
        }
    }

    /// Work units of one full selection pass executed by one thread that
    /// owns a vertex interval, over `local_theta` samples with the trace's
    /// mean sample size: the k-round binary-search term of Algorithm 4.
    fn selection_scan_units(&self, local_theta: f64) -> f64 {
        let avg = self.mean_rrr_size().max(1.0);
        f64::from(self.k) * local_theta * avg.log2().max(1.0)
    }
}

/// LPT (greedy longest-first) makespan of `work` over `workers` identical
/// workers, in work units.
#[must_use]
pub fn lpt_makespan(work: &[u64], workers: u32) -> u64 {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    if work.is_empty() || workers == 0 {
        return 0;
    }
    let mut sorted: Vec<u64> = work.to_vec();
    sorted.sort_unstable_by_key(|&w| Reverse(w));
    // Min-heap of worker loads.
    let mut loads: BinaryHeap<Reverse<u64>> = (0..workers.min(sorted.len() as u32))
        .map(|_| Reverse(0u64))
        .collect();
    for w in sorted {
        let Reverse(least) = loads.pop().expect("at least one worker");
        loads.push(Reverse(least + w));
    }
    loads.into_iter().map(|Reverse(l)| l).max().unwrap_or(0)
}

/// One predicted point of a strong-scaling curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Scaling unit (threads for Figures 5–6, nodes for Figures 7–8).
    pub units: u32,
    /// Predicted sampling (+ estimation) seconds.
    pub sample_s: f64,
    /// Predicted seed-selection seconds.
    pub select_s: f64,
    /// Predicted communication seconds (0 for shared memory).
    pub comm_s: f64,
}

impl ScalingPoint {
    /// Total predicted seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.sample_s + self.select_s + self.comm_s
    }
}

/// Calibrates a work rate (units/second) from a measured run.
///
/// # Panics
///
/// Panics if `seconds` is not positive.
#[must_use]
pub fn calibrate_rate(total_work_units: u64, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "calibration time must be positive");
    total_work_units as f64 / seconds
}

/// Predicts the shared-memory strong-scaling curve (Figures 5–6) at the
/// given thread counts, with `rate` work units per second per thread.
#[must_use]
pub fn predict_multithreaded(trace: &WorkTrace, threads: &[u32], rate: f64) -> Vec<ScalingPoint> {
    threads
        .iter()
        .map(|&p| {
            let p_eff = p.max(1);
            let sample_units = lpt_makespan(&trace.sample_work, p_eff) as f64;
            // Counting scan splits across threads; the k-round search term
            // is per-thread constant (every owner visits every sample).
            let select_units = trace.rrr_entries as f64 / f64::from(p_eff)
                + trace.selection_scan_units(trace.theta as f64);
            ScalingPoint {
                units: p,
                sample_s: sample_units / rate,
                select_s: select_units / rate,
                comm_s: 0.0,
            }
        })
        .collect()
}

/// Predicts the distributed strong-scaling curve (Figures 7–8) on
/// `cluster` at the given node counts.
///
/// Each node is one rank running `threads_per_node` workers over its
/// `θ/ranks` local samples; the counter arrays travel `allreduce_calls`
/// times through the α–β network model.
#[must_use]
pub fn predict_distributed(
    trace: &WorkTrace,
    cluster: &ClusterSpec,
    nodes: &[u32],
) -> Vec<ScalingPoint> {
    let rate = cluster.edge_rate_per_thread;
    nodes
        .iter()
        .map(|&ranks| {
            let ranks_eff = ranks.max(1);
            let workers = ranks_eff * cluster.threads_per_node;
            let sample_units = lpt_makespan(&trace.sample_work, workers) as f64;
            let local_theta = trace.theta as f64 / f64::from(ranks_eff);
            let select_units = trace.rrr_entries as f64
                / f64::from(ranks_eff * cluster.threads_per_node)
                + trace.selection_scan_units(local_theta);
            let counter_bytes = u64::from(trace.n) * 8;
            let comm_s = trace.allreduce_calls as f64
                * cluster.network.allreduce_time(counter_bytes, ranks_eff);
            ScalingPoint {
                units: ranks,
                sample_s: sample_units / rate,
                select_s: select_units / rate,
                comm_s,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(sample_work: Vec<u64>, theta: usize) -> WorkTrace {
        WorkTrace {
            n: 10_000,
            k: 50,
            theta,
            rrr_entries: sample_work.iter().sum::<u64>() / 2,
            sample_work,
            allreduce_calls: 102,
        }
    }

    #[test]
    fn lpt_basics() {
        assert_eq!(lpt_makespan(&[], 4), 0);
        assert_eq!(lpt_makespan(&[10], 4), 10);
        assert_eq!(lpt_makespan(&[5, 5, 5, 5], 2), 10);
        // A giant task bounds the makespan regardless of workers.
        assert_eq!(lpt_makespan(&[100, 1, 1, 1], 64), 100);
        assert_eq!(lpt_makespan(&[3, 3, 3], 0), 0);
    }

    #[test]
    fn lpt_monotone_in_workers() {
        let work: Vec<u64> = (1..200).collect();
        let mut prev = u64::MAX;
        for p in [1u32, 2, 4, 8, 16] {
            let m = lpt_makespan(&work, p);
            assert!(m <= prev, "makespan increased at p={p}");
            prev = m;
        }
    }

    #[test]
    fn mt_prediction_scales_sampling() {
        let t = trace(vec![100; 10_000], 10_000);
        let pts = predict_multithreaded(&t, &[1, 2, 4, 8], 1e6);
        // Sampling should halve with each doubling (uniform tasks).
        for w in pts.windows(2) {
            let ratio = w[0].sample_s / w[1].sample_s;
            assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
        }
        // Selection has a non-scaling component: it shrinks slower.
        assert!(pts[3].select_s > pts[0].select_s / 8.0);
    }

    #[test]
    fn dist_prediction_charges_comm() {
        let t = trace(vec![100; 50_000], 50_000);
        let cluster = ClusterSpec::puma();
        let pts = predict_distributed(&t, &cluster, &[2, 4, 8, 16]);
        for p in &pts {
            assert!(p.comm_s > 0.0);
        }
        // Communication grows with rank count (log factor).
        assert!(pts[3].comm_s > pts[0].comm_s);
        // Total should still fall from 2 to 16 nodes for this large trace.
        assert!(pts[3].total_s() < pts[0].total_s());
    }

    #[test]
    fn straggler_bounds_scaling() {
        // One sample holds half the work: no amount of parallelism helps
        // beyond 2×.
        let mut work = vec![1u64; 1000];
        work.push(1000);
        let t = trace(work, 1001);
        let pts = predict_multithreaded(&t, &[1, 64], 1e6);
        assert!(
            pts[1].sample_s >= pts[0].sample_s / 2.5,
            "straggler ignored: {} vs {}",
            pts[1].sample_s,
            pts[0].sample_s
        );
    }

    #[test]
    fn calibration() {
        assert!((calibrate_rate(1_000_000, 2.0) - 500_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn calibration_rejects_zero_time() {
        let _ = calibrate_rate(1, 0.0);
    }
}
