//! The run-report observability layer.
//!
//! Every IMM entry point returns a [`RunReport`] describing *what the run
//! did*, not just how long it took: a hierarchical tree of phase spans
//! (EstimateTheta rounds, sample batches, seed selection), monotonic
//! counters (samples generated, in-edges examined, RRR entries, θ-round
//! budgets vs. achieved coverage), and small fixed-bucket histograms (RRR
//! set sizes, per-worker sample counts for load-balance skew). The
//! distributed engines additionally attach the communicator's collective
//! call/byte accounting as [`CommCounters`].
//!
//! The legacy flat [`PhaseTimers`] view is *derived* from the span tree
//! ([`RunReport::phase_timers`]) so [`crate::ImmResult`] stays
//! source-compatible with code that only reads `result.timers`.
//!
//! Exporters are dependency-free: [`RunReport::to_json`] emits a single
//! machine-readable JSON object, [`RunReport::render_pretty`] an indented
//! human-readable text block. The `ripples` CLI exposes both behind
//! `--report pretty|json` (`text` is accepted as an alias for `pretty`).
//!
//! Aggregates answer *how much*; the [`trace`] submodule answers *when and
//! where*: when tracing is enabled (CLI `--trace <file>`), every span exit,
//! sampler chunk, selection step, and collective also lands on a per-worker
//! event timeline attached to the report as [`RunReport::trace`].

pub mod metrics;
pub mod trace;

use crate::phases::{Phase, PhaseTimers};
use ripples_comm::CommStats;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, and the last bucket absorbs everything
/// beyond `2^31`.
const HISTOGRAM_BUCKETS: usize = 33;

/// Monotonic counters describing the work an IMM run performed.
///
/// For a fixed `(graph, params)` pair, `samples_generated`, `rrr_entries`,
/// `theta_rounds`, `theta_final`, `round_budgets`, and `round_coverage` are
/// *deterministic*: identical across thread counts and (for the
/// indexed-stream RNG mode) across rank counts. The byte/peak fields are
/// per-process observations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    /// RRR samples generated (globally, for the distributed engines).
    pub samples_generated: u64,
    /// In-edges examined while generating those samples (globally, for the
    /// distributed engines).
    pub edges_examined: u64,
    /// Total vertex entries stored across all RRR sets (globally, for the
    /// distributed engines).
    pub rrr_entries: u64,
    /// Peak resident bytes of the RRR storage on this process.
    pub rrr_bytes_peak: u64,
    /// Number of EstimateTheta martingale rounds executed.
    pub theta_rounds: u64,
    /// The final sample count θ.
    pub theta_final: u64,
    /// Greedy seed-selection iterations executed, summed over every
    /// selection pass (estimation rounds + the final SelectSeeds).
    pub select_iterations: u64,
    /// Out-of-contract (unsorted) `RrrCollection::push` calls that were
    /// repaired by sorting; always 0 for the in-tree samplers.
    pub unsorted_pushes: u64,
    /// Collection entries walked by index-driven selection engines across
    /// all cover+decrement steps (globally, for the distributed engines);
    /// 0 for engines that scan rather than index.
    pub select_entries_touched: u64,
    /// Wall time spent building selection inverted indexes, nanoseconds,
    /// summed over every selection pass on this process.
    pub index_build_nanos: u64,
    /// Peak resident bytes of a selection inverted index on this process.
    pub index_bytes_peak: u64,
    /// Peak transient bytes of the sampler's worker-local arenas on this
    /// process (0 for the sequential sampler, which has no arenas).
    pub arena_bytes_peak: u64,
    /// Frontier passes executed by the fused multi-cascade sampler (0 for
    /// the reference sampler, which walks one cascade at a time).
    pub fused_passes: u64,
    /// Peak transient bytes of the fused sampler's per-vertex activation
    /// masks on this process (0 for the reference sampler).
    pub mask_bytes_peak: u64,
    /// Wall time spent decoding compressed RRR blocks during selection,
    /// nanoseconds, summed over every selection pass on this process (0 for
    /// the flat store, whose slices need no decoding).
    pub decode_nanos: u64,
    /// Bytes written to the RRR spill file over the run on this process
    /// (0 for RAM-only storage backends).
    pub spill_bytes_written: u64,
    /// Per-round sample budgets `θ_x` requested by the schedule.
    pub round_budgets: Vec<u64>,
    /// Per-round coverage fraction achieved by the greedy selection.
    pub round_coverage: Vec<f64>,
    /// Collective attempts retried by the comm retry layer (globally, for
    /// the distributed engines); 0 on a reliable fabric.
    pub retries: u64,
    /// Collective attempts the fault layer failed before they reached the
    /// backend (globally, for the distributed engines).
    pub dropped_ops: u64,
    /// Ranks declared dead and excluded from the run's collectives
    /// (globally, for the distributed engines).
    pub degraded_ranks: u64,
    /// Peak resident bytes of this process's share of the graph: the full
    /// CSR for replicated engines, the vertex-cut shard for `imm_sharded`
    /// (max over ranks for the distributed engines).
    pub graph_bytes_peak: u64,
    /// Batched frontier exchanges (`alltoallv`) issued by the sharded
    /// engine; 0 for replicated engines.
    pub frontier_exchanges: u64,
    /// Nanoseconds of frontier-exchange latency hidden behind local
    /// sampling (post-to-wait gaps, summed; max over ranks). 0 for
    /// replicated engines.
    pub overlap_nanos: u64,
}

/// A fixed-size power-of-two histogram of `u64` observations.
///
/// Bucket 0 counts zeros; bucket `i ≥ 1` counts values in `[2^(i-1), 2^i)`;
/// the final bucket absorbs the tail. Cheap enough to update per sample and
/// mergeable across ranks with one All-Reduce (see
/// [`Histogram::to_flat`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index for `value`.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Records `times` observations of the same `value` at once — the bulk
    /// form used to fold pre-aggregated counts (e.g. the fused sampler's
    /// lane-width tallies) into a histogram.
    #[inline]
    pub fn record_n(&mut self, value: u64, times: u64) {
        if times == 0 {
            return;
        }
        self.buckets[Self::bucket_of(value)] += times;
        self.count += times;
        self.sum += value * times;
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper-bound estimate of the `q`-quantile (`q ∈ [0, 1]`): walks the
    /// buckets to the smallest one whose cumulative count reaches
    /// `ceil(q · count)` and returns that bucket's exclusive upper bound,
    /// clamped to the observed `max` — a bucket bound can exceed every value
    /// actually recorded (a histogram holding only the value 3 would
    /// otherwise report quantile 4), and no quantile of real observations
    /// can be larger than the largest of them. Returns 0 on an empty
    /// histogram. This is the p50/p99 estimator the serve mode exports for
    /// query latencies.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == HISTOGRAM_BUCKETS - 1 {
                    self.max
                } else {
                    Self::bucket_bounds(i).1.min(self.max)
                };
            }
        }
        self.max
    }

    /// Inclusive-exclusive value bounds of bucket `i`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), 1u64 << i)
        }
    }

    /// Flattens the summable state (buckets, count, sum — *not* max) into a
    /// `Vec<u64>` suitable for an element-wise All-Reduce across ranks.
    #[must_use]
    pub fn to_flat(&self) -> Vec<u64> {
        let mut flat = self.buckets.to_vec();
        flat.push(self.count);
        flat.push(self.sum);
        flat
    }

    /// Restores state from a reduced [`Histogram::to_flat`] buffer plus a
    /// separately max-reduced `max`.
    ///
    /// # Panics
    ///
    /// Panics if `flat` does not have the [`Histogram::to_flat`] length.
    pub fn set_from_flat(&mut self, flat: &[u64], max: u64) {
        assert_eq!(flat.len(), HISTOGRAM_BUCKETS + 2, "flat buffer length");
        self.buckets.copy_from_slice(&flat[..HISTOGRAM_BUCKETS]);
        self.count = flat[HISTOGRAM_BUCKETS];
        self.sum = flat[HISTOGRAM_BUCKETS + 1];
        self.max = max;
    }
}

/// Communication collective calls and modeled bytes moved by one rank over
/// the span of a run (a delta of two [`CommStats`] snapshots).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommCounters {
    /// `all_reduce_*` calls.
    pub allreduce_calls: u64,
    /// `barrier` calls.
    pub barrier_calls: u64,
    /// `broadcast_*` calls.
    pub broadcast_calls: u64,
    /// `all_gather_*` calls.
    pub allgather_calls: u64,
    /// `alltoallv_u64` / posted-exchange calls.
    pub exchange_calls: u64,
    /// Modeled payload bytes transmitted under recursive doubling (direct
    /// pairwise for exchanges).
    pub bytes_moved: u64,
}

impl CommCounters {
    /// The communication performed between two snapshots of the same rank's
    /// [`CommStats`] (counters are monotonic, so plain subtraction).
    #[must_use]
    pub fn delta(before: &CommStats, after: &CommStats) -> Self {
        Self {
            allreduce_calls: after.allreduce_calls - before.allreduce_calls,
            barrier_calls: after.barrier_calls - before.barrier_calls,
            broadcast_calls: after.broadcast_calls - before.broadcast_calls,
            allgather_calls: after.allgather_calls - before.allgather_calls,
            exchange_calls: after.exchange_calls - before.exchange_calls,
            bytes_moved: after.bytes_moved - before.bytes_moved,
        }
    }
}

impl From<CommStats> for CommCounters {
    fn from(s: CommStats) -> Self {
        Self::delta(&CommStats::default(), &s)
    }
}

/// One finished span of the phase tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span label (e.g. `"EstimateTheta"`, `"round-3"`, `"sample"`).
    pub name: String,
    /// Wall-clock nanoseconds spent inside the span (children included).
    pub nanos: u128,
    /// Nested spans in execution order.
    pub children: Vec<SpanNode>,
}

/// A span that has been entered but not yet exited.
#[derive(Clone, Debug)]
struct OpenSpan {
    name: String,
    start: Instant,
    children: Vec<SpanNode>,
}

/// The full observability record of one IMM run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Engine tag (`"immopt"`, `"baseline"`, `"mt"`, `"dist"`,
    /// `"partitioned"`, …).
    pub engine: String,
    /// Monotonic work counters.
    pub counters: Counters,
    /// Distribution of RRR set sizes (vertex entries per sample).
    pub rrr_sizes: Histogram,
    /// Distribution of per-worker sample counts — the load-balance skew of
    /// the sampling phase. Workers are threads (chunk owners) for the
    /// shared-memory engines and this rank's batches for the distributed
    /// ones.
    pub thread_samples: Histogram,
    /// Distribution of active lanes per fused frontier expansion — how full
    /// the fused sampler's cascade word stays as cascades die out. Empty
    /// for the reference sampler.
    pub lanes_active: Histogram,
    /// Communication accounting; `None` for the shared-memory engines.
    pub comm: Option<CommCounters>,
    /// The merged event timeline, when the run executed with tracing
    /// enabled ([`trace::start`]); `None` otherwise. Its
    /// [`trace::Trace::dropped`] counter reports events lost to full ring
    /// buffers, so truncated traces are never silent.
    pub trace: Option<trace::Trace>,
    spans: Vec<SpanNode>,
    open: Vec<OpenSpan>,
}

impl RunReport {
    /// Creates an empty report for `engine`.
    #[must_use]
    pub fn new(engine: &str) -> Self {
        Self {
            engine: engine.to_string(),
            counters: Counters::default(),
            rrr_sizes: Histogram::new(),
            thread_samples: Histogram::new(),
            lanes_active: Histogram::new(),
            comm: None,
            trace: None,
            spans: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Opens a span named `name`; pair with [`RunReport::exit`]. Prefer
    /// [`RunReport::span`], which cannot be left unbalanced.
    pub fn enter(&mut self, name: &str) {
        if metrics::enabled() {
            metrics::on_enter(name);
        }
        self.open.push(OpenSpan {
            name: name.to_string(),
            start: Instant::now(),
            children: Vec::new(),
        });
    }

    /// Closes the innermost open span, attaching it to its parent (or to
    /// the root list). A stray `exit` with no open span is a no-op.
    pub fn exit(&mut self) {
        let Some(open) = self.open.pop() else { return };
        if trace::enabled() {
            let (name, arg0) = trace::span_trace_name(&open.name);
            trace::complete(name, open.start, arg0, 0);
        }
        if metrics::enabled() {
            metrics::on_exit(self.open.iter().rev().map(|o| o.name.as_str()));
        }
        let node = SpanNode {
            name: open.name,
            nanos: open.start.elapsed().as_nanos(),
            children: open.children,
        };
        match self.open.last_mut() {
            Some(parent) => parent.children.push(node),
            None => self.spans.push(node),
        }
    }

    /// Runs `f` inside a span named `name`, timing it.
    pub fn span<T>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        self.enter(name);
        let out = f(self);
        self.exit();
        out
    }

    /// The finished top-level spans in execution order.
    #[must_use]
    pub fn spans(&self) -> &[SpanNode] {
        &self.spans
    }

    /// Derives the paper's flat four-phase timer view from the span tree:
    /// top-level spans named after a [`Phase`] label map to that phase,
    /// everything else to [`Phase::Other`].
    #[must_use]
    pub fn phase_timers(&self) -> PhaseTimers {
        let mut timers = PhaseTimers::new();
        for span in &self.spans {
            let phase = match span.name.as_str() {
                "EstimateTheta" => Phase::EstimateTheta,
                "Sample" => Phase::Sample,
                "SelectSeeds" => Phase::SelectSeeds,
                _ => Phase::Other,
            };
            timers.add(phase, nanos_to_duration(span.nanos));
        }
        timers
    }

    /// Serializes the report as one JSON object (no external dependencies;
    /// spans still open at export time are ignored).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        let _ = write!(out, "\"engine\":{}", json_string(&self.engine));
        out.push_str(",\"counters\":{");
        let c = &self.counters;
        let _ = write!(
            out,
            "\"samples_generated\":{},\"edges_examined\":{},\"rrr_entries\":{},\
             \"rrr_bytes_peak\":{},\"theta_rounds\":{},\"theta_final\":{},\
             \"select_iterations\":{},\"unsorted_pushes\":{},\
             \"select_entries_touched\":{},\"index_build_nanos\":{},\
             \"index_bytes_peak\":{},\"arena_bytes_peak\":{},\
             \"fused_passes\":{},\"mask_bytes_peak\":{},\
             \"decode_nanos\":{},\"spill_bytes_written\":{}",
            c.samples_generated,
            c.edges_examined,
            c.rrr_entries,
            c.rrr_bytes_peak,
            c.theta_rounds,
            c.theta_final,
            c.select_iterations,
            c.unsorted_pushes,
            c.select_entries_touched,
            c.index_build_nanos,
            c.index_bytes_peak,
            c.arena_bytes_peak,
            c.fused_passes,
            c.mask_bytes_peak,
            c.decode_nanos,
            c.spill_bytes_written
        );
        out.push_str(",\"round_budgets\":[");
        for (i, b) in c.round_budgets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("],\"round_coverage\":[");
        for (i, f) in c.round_coverage.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", json_f64(*f));
        }
        out.push(']');
        let _ = write!(
            out,
            ",\"retries\":{},\"dropped_ops\":{},\"degraded_ranks\":{},\
             \"graph_bytes_peak\":{},\"frontier_exchanges\":{},\"overlap_nanos\":{}",
            c.retries,
            c.dropped_ops,
            c.degraded_ranks,
            c.graph_bytes_peak,
            c.frontier_exchanges,
            c.overlap_nanos
        );
        out.push('}');
        out.push_str(",\"rrr_sizes\":");
        json_histogram(&mut out, &self.rrr_sizes);
        out.push_str(",\"thread_samples\":");
        json_histogram(&mut out, &self.thread_samples);
        out.push_str(",\"lanes_active\":");
        json_histogram(&mut out, &self.lanes_active);
        out.push_str(",\"comm\":");
        match &self.comm {
            None => out.push_str("null"),
            Some(cc) => {
                let _ = write!(
                    out,
                    "{{\"allreduce_calls\":{},\"barrier_calls\":{},\"broadcast_calls\":{},\
                     \"allgather_calls\":{},\"exchange_calls\":{},\"bytes_moved\":{}}}",
                    cc.allreduce_calls,
                    cc.barrier_calls,
                    cc.broadcast_calls,
                    cc.allgather_calls,
                    cc.exchange_calls,
                    cc.bytes_moved
                );
            }
        }
        out.push_str(",\"trace\":");
        match &self.trace {
            None => out.push_str("null"),
            Some(t) => {
                let _ = write!(
                    out,
                    "{{\"events\":{},\"dropped\":{},\"dropped_by_worker\":[",
                    t.len(),
                    t.dropped
                );
                for (i, d) in t.dropped_by_worker.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}{{\"rank\":{},\"tid\":{},\"dropped\":{}}}",
                        if i == 0 { "" } else { "," },
                        d.rank,
                        d.tid,
                        d.dropped
                    );
                }
                out.push_str("]}");
            }
        }
        out.push_str(",\"spans\":");
        json_spans(&mut out, &self.spans);
        out.push('}');
        out
    }

    /// Renders the report as indented human-readable text.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "run report — engine {}", self.engine);
        out.push_str("spans:\n");
        for span in &self.spans {
            pretty_span(&mut out, span, 1);
        }
        let c = &self.counters;
        out.push_str("counters:\n");
        let _ = writeln!(out, "  samples generated   {}", c.samples_generated);
        let _ = writeln!(out, "  edges examined      {}", c.edges_examined);
        let _ = writeln!(out, "  rrr entries         {}", c.rrr_entries);
        let _ = writeln!(out, "  rrr bytes (peak)    {}", c.rrr_bytes_peak);
        let _ = writeln!(out, "  theta rounds        {}", c.theta_rounds);
        let _ = writeln!(out, "  theta (final)       {}", c.theta_final);
        let _ = writeln!(out, "  select iterations   {}", c.select_iterations);
        let _ = writeln!(out, "  unsorted pushes     {}", c.unsorted_pushes);
        let _ = writeln!(out, "  select touched      {}", c.select_entries_touched);
        let _ = writeln!(out, "  index build (ns)    {}", c.index_build_nanos);
        let _ = writeln!(out, "  index bytes (peak)  {}", c.index_bytes_peak);
        let _ = writeln!(out, "  arena bytes (peak)  {}", c.arena_bytes_peak);
        let _ = writeln!(out, "  fused passes        {}", c.fused_passes);
        let _ = writeln!(out, "  mask bytes (peak)   {}", c.mask_bytes_peak);
        let _ = writeln!(out, "  decode time (ns)    {}", c.decode_nanos);
        let _ = writeln!(out, "  spill bytes written {}", c.spill_bytes_written);
        let _ = writeln!(out, "  comm retries        {}", c.retries);
        let _ = writeln!(out, "  comm dropped ops    {}", c.dropped_ops);
        let _ = writeln!(out, "  degraded ranks      {}", c.degraded_ranks);
        let _ = writeln!(out, "  graph bytes (peak)  {}", c.graph_bytes_peak);
        let _ = writeln!(out, "  frontier exchanges  {}", c.frontier_exchanges);
        let _ = writeln!(out, "  overlap (ns)        {}", c.overlap_nanos);
        for (i, (b, f)) in c.round_budgets.iter().zip(&c.round_coverage).enumerate() {
            let _ = writeln!(
                out,
                "  round {:>2}: budget {:>10}  coverage {:.4}",
                i + 1,
                b,
                f
            );
        }
        out.push_str("rrr set sizes:\n");
        pretty_histogram(&mut out, &self.rrr_sizes);
        out.push_str("per-worker samples:\n");
        pretty_histogram(&mut out, &self.thread_samples);
        if self.lanes_active.count() > 0 {
            out.push_str("fused lanes active:\n");
            pretty_histogram(&mut out, &self.lanes_active);
        }
        if let Some(cc) = &self.comm {
            out.push_str("comm:\n");
            let _ = writeln!(
                out,
                "  allreduce {}  allgather {}  broadcast {}  barrier {}  exchange {}  bytes {}",
                cc.allreduce_calls,
                cc.allgather_calls,
                cc.broadcast_calls,
                cc.barrier_calls,
                cc.exchange_calls,
                cc.bytes_moved
            );
        }
        if let Some(t) = &self.trace {
            let _ = writeln!(out, "trace:\n  events {}  dropped {}", t.len(), t.dropped);
            for d in &t.dropped_by_worker {
                let _ = writeln!(
                    out,
                    "    rank {} worker {} dropped {}",
                    d.rank, d.tid, d.dropped
                );
            }
        }
        out
    }
}

fn nanos_to_duration(nanos: u128) -> Duration {
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON-legal number (non-finite values become 0).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

fn json_histogram(out: &mut String, h: &Histogram) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"buckets\":[",
        h.count(),
        h.sum(),
        h.max(),
        json_f64(h.mean())
    );
    let mut first = true;
    for (i, &n) in h.buckets().iter().enumerate() {
        if n == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let (lo, hi) = Histogram::bucket_bounds(i);
        let _ = write!(out, "{{\"lo\":{lo},\"hi\":{hi},\"count\":{n}}}");
    }
    out.push_str("]}");
}

fn json_spans(out: &mut String, spans: &[SpanNode]) {
    out.push('[');
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"nanos\":{},\"children\":",
            json_string(&span.name),
            span.nanos
        );
        json_spans(out, &span.children);
        out.push('}');
    }
    out.push(']');
}

fn pretty_span(out: &mut String, span: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth);
    let _ = writeln!(
        out,
        "{indent}{:<24} {:>10.3}ms",
        span.name,
        span.nanos as f64 / 1e6
    );
    for child in &span.children {
        pretty_span(out, child, depth + 1);
    }
}

fn pretty_histogram(out: &mut String, h: &Histogram) {
    let _ = writeln!(
        out,
        "  count {}  mean {:.2}  max {}",
        h.count(),
        h.mean(),
        h.max()
    );
    for (i, &n) in h.buckets().iter().enumerate() {
        if n == 0 {
            continue;
        }
        let (lo, hi) = Histogram::bucket_bounds(i);
        let _ = writeln!(out, "    [{lo}, {hi}): {n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_nests_and_orders() {
        let mut r = RunReport::new("test");
        r.span("EstimateTheta", |r| {
            r.span("round-1", |_| {});
            r.span("round-2", |r| {
                r.span("sample", |_| {});
            });
        });
        r.span("SelectSeeds", |_| {});
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.spans()[0].name, "EstimateTheta");
        assert_eq!(r.spans()[0].children.len(), 2);
        assert_eq!(r.spans()[0].children[1].children[0].name, "sample");
        assert_eq!(r.spans()[1].name, "SelectSeeds");
    }

    #[test]
    fn span_returns_closure_value() {
        let mut r = RunReport::new("test");
        let v = r.span("outer", |r| r.span("inner", |_| 7));
        assert_eq!(v, 7);
    }

    #[test]
    fn stray_exit_is_noop() {
        let mut r = RunReport::new("test");
        r.exit();
        assert!(r.spans().is_empty());
    }

    #[test]
    fn phase_timers_derived_from_top_level_spans() {
        let mut r = RunReport::new("test");
        r.span("EstimateTheta", |_| {
            std::thread::sleep(Duration::from_millis(2))
        });
        r.span("Sample", |_| {});
        r.span("warmup", |_| {});
        let t = r.phase_timers();
        assert!(t.get(Phase::EstimateTheta) >= Duration::from_millis(2));
        assert_eq!(t.get(Phase::SelectSeeds), Duration::ZERO);
        assert!(t.total() >= Duration::from_millis(2));
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1049);
        assert_eq!(h.max(), 1024);
        let b = h.buckets();
        assert_eq!(b[0], 1); // value 0
        assert_eq!(b[1], 1); // [1, 2)
        assert_eq!(b[2], 2); // [2, 4): 2, 3
        assert_eq!(b[3], 2); // [4, 8): 4, 7
        assert_eq!(b[4], 1); // [8, 16)
        assert_eq!(b[11], 1); // [1024, 2048)
    }

    #[test]
    fn histogram_tail_bucket_absorbs_huge_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_quantile_walks_buckets() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 90 small values in [1,2), 10 large in [1024, 2048).
        h.record_n(1, 90);
        h.record_n(1500, 10);
        assert_eq!(h.quantile(0.5), 2); // bucket [1,2) upper bound
        assert_eq!(h.quantile(0.9), 2); // rank 90 still inside the small bucket
        assert_eq!(h.quantile(0.99), 1500); // rank 99 lands in [1024, 2048), clamped to max
        assert_eq!(h.quantile(1.0), 1500);
        // The open tail bucket reports the observed max, not infinity.
        let mut t = Histogram::new();
        t.record(u64::MAX - 5);
        assert_eq!(t.quantile(0.99), u64::MAX - 5);
    }

    #[test]
    fn histogram_quantile_never_exceeds_observed_max() {
        // Regression: the bucket upper bound is exclusive, so an unclamped
        // estimator reports values no observation ever had (a histogram
        // holding only 3 said its p50 was 4).
        let mut h = Histogram::new();
        h.record(3);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.99), 3);
        let mut h = Histogram::new();
        h.record_n(1000, 5);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert!(h.quantile(q) <= h.max(), "q={q}: {} > max", h.quantile(q));
        }
    }

    #[test]
    fn histogram_flat_round_trip() {
        let mut h = Histogram::new();
        for v in [3u64, 9, 0, 200] {
            h.record(v);
        }
        let flat = h.to_flat();
        let mut h2 = Histogram::new();
        h2.set_from_flat(&flat, h.max());
        assert_eq!(h, h2);
    }

    #[test]
    fn comm_counters_delta() {
        let before = CommStats {
            allreduce_calls: 2,
            barrier_calls: 1,
            broadcast_calls: 0,
            allgather_calls: 3,
            exchange_calls: 1,
            bytes_moved: 100,
        };
        let after = CommStats {
            allreduce_calls: 7,
            barrier_calls: 1,
            broadcast_calls: 2,
            allgather_calls: 4,
            exchange_calls: 9,
            bytes_moved: 450,
        };
        let d = CommCounters::delta(&before, &after);
        assert_eq!(d.allreduce_calls, 5);
        assert_eq!(d.barrier_calls, 0);
        assert_eq!(d.broadcast_calls, 2);
        assert_eq!(d.allgather_calls, 1);
        assert_eq!(d.exchange_calls, 8);
        assert_eq!(d.bytes_moved, 350);
    }

    fn assert_balanced_json(s: &str) {
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced JSON: {s}");
        }
        assert_eq!(depth, 0, "unbalanced JSON: {s}");
        assert!(!in_string, "unterminated string: {s}");
    }

    #[test]
    fn json_export_is_balanced_and_keyed() {
        let mut r = RunReport::new("mt \"quoted\"\n");
        r.span("EstimateTheta", |r| r.span("round-1", |_| {}));
        r.counters.samples_generated = 42;
        r.counters.round_budgets.push(10);
        r.counters.round_coverage.push(0.5);
        r.rrr_sizes.record(5);
        r.comm = Some(CommCounters {
            allreduce_calls: 1,
            ..CommCounters::default()
        });
        let j = r.to_json();
        assert_balanced_json(&j);
        for key in [
            "\"engine\"",
            "\"counters\"",
            "\"samples_generated\":42",
            "\"round_budgets\":[10]",
            "\"rrr_sizes\"",
            "\"thread_samples\"",
            "\"comm\"",
            "\"spans\"",
            "\"round-1\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // The escaped engine name survives.
        assert!(j.contains("mt \\\"quoted\\\"\\n"));
    }

    #[test]
    fn pretty_render_mentions_key_sections() {
        let mut r = RunReport::new("dist");
        r.span("SelectSeeds", |_| {});
        r.rrr_sizes.record(3);
        r.comm = Some(CommCounters::default());
        let p = r.render_pretty();
        assert!(p.contains("engine dist"));
        assert!(p.contains("SelectSeeds"));
        assert!(p.contains("rrr set sizes"));
        assert!(p.contains("comm:"));
    }
}
