//! Sequential IMM implementations: the Tang-style hypergraph baseline
//! ("IMM" in Table 2) and the paper's optimized serial version ("IMMOPT").
//!
//! Both follow Algorithm 1 exactly:
//!
//! ```text
//! ⟨R, θ⟩ ← EstimateTheta(G, k, ε)      // Algorithm 2, martingale rounds
//! R ← Sample(G, θ − |R|, R)            // top up to θ samples
//! S ← SelectSeeds(G, k, R)             // Algorithm 4 (greedy max cover)
//! ```
//!
//! They differ only in how `R` is stored and how `SelectSeeds` walks it —
//! which is exactly the delta Table 2 measures.

use crate::memory::MemoryStats;
use crate::obs::RunReport;
use crate::params::ImmParams;
use crate::result::ImmResult;
use crate::sample::{SampleEngine, SamplerDispatch};
use crate::select::{select_with_engine, SelectEngine, SelectStats, Selection};
use crate::theta::ThetaSchedule;
use ripples_diffusion::rrr::{generate_rrr, RrrScratch};
use ripples_diffusion::{BatchOutcome, RrrCollection, RrrStore};
use ripples_graph::{Graph, Vertex};
use ripples_rng::StreamFactory;

/// Trivial result for graphs too small for the estimation math (`n < 2`).
fn degenerate_result(engine: &str, graph: &Graph, params: &ImmParams) -> ImmResult {
    let n = graph.num_vertices();
    let k = params.effective_k(n);
    let report = RunReport::new(engine);
    ImmResult {
        seeds: (0..k).collect(),
        theta: 0,
        coverage_fraction: if n > 0 { 1.0 } else { 0.0 },
        opt_lower_bound: None,
        timers: report.phase_timers(),
        memory: MemoryStats {
            graph_bytes: graph.resident_bytes(),
            ..MemoryStats::default()
        },
        sample_work: Vec::new(),
        report,
    }
}

/// Records one sampling batch's outcome into `report`: sample/edge counters,
/// per-worker load-balance observations, and the sizes of the samples
/// appended to `collection` since `old_len`.
pub(crate) fn record_batch<S: RrrStore>(
    report: &mut RunReport,
    collection: &S,
    old_len: usize,
    outcome: &BatchOutcome,
) {
    report.counters.samples_generated += (collection.len() - old_len) as u64;
    report.counters.edges_examined += outcome.total_work();
    for &w in &outcome.per_worker_samples {
        report.thread_samples.record(w);
    }
    for j in old_len..collection.len() {
        report.rrr_sizes.record(collection.sample_len(j) as u64);
    }
    report.counters.arena_bytes_peak = report
        .counters
        .arena_bytes_peak
        .max(outcome.arena_bytes as u64);
    report.counters.fused_passes += outcome.fused_passes;
    report.counters.mask_bytes_peak = report
        .counters
        .mask_bytes_peak
        .max(outcome.mask_bytes as u64);
    for (lanes, &times) in outcome.lane_width_counts.iter().enumerate() {
        report.lanes_active.record_n(lanes as u64, times);
    }
    // The trace stream mirrors the *running peak*, not the last batch's
    // reservation, so a trace reader sees the same high-water mark the
    // counters report.
    if crate::obs::trace::enabled() {
        crate::obs::trace::counter(
            crate::obs::trace::TraceName::ArenaBytes,
            report.counters.arena_bytes_peak,
        );
        if report.counters.mask_bytes_peak > 0 {
            crate::obs::trace::counter(
                crate::obs::trace::TraceName::MaskBytes,
                report.counters.mask_bytes_peak,
            );
        }
    }
}

/// Shared Algorithm 1 skeleton over the compact one-direction storage.
///
/// `sampler(first_index, count, &mut R)` appends samples with global indices
/// `first_index..first_index+count`; `selector(&R, n, k)` runs a greedy
/// max-cover pass and reports the pass's [`SelectStats`] (index-free engines
/// return the zero default). The sequential and multithreaded entry points
/// supply different engines for the two hooks.
pub(crate) fn run_imm_compact(
    engine: &str,
    graph: &Graph,
    params: &ImmParams,
    sampler: impl FnMut(u64, usize, &mut RrrCollection) -> BatchOutcome,
    selector: impl FnMut(&RrrCollection, u32, u32) -> (Selection, SelectStats),
) -> ImmResult {
    run_imm_compact_store(
        engine,
        graph,
        params,
        RrrCollection::new(),
        sampler,
        selector,
    )
}

/// [`run_imm_compact`] generalized over the RRR storage backend: the caller
/// supplies the (empty) store, and the sampler/selector hooks operate on it
/// through the [`RrrStore`] trait. The flat store takes exactly the old
/// code paths; compressed stores additionally report their decode time and
/// spill traffic through the run counters.
pub(crate) fn run_imm_compact_store<S: RrrStore>(
    engine: &str,
    graph: &Graph,
    params: &ImmParams,
    store: S,
    sampler: impl FnMut(u64, usize, &mut S) -> BatchOutcome,
    selector: impl FnMut(&S, u32, u32) -> (Selection, SelectStats),
) -> ImmResult {
    run_imm_compact_store_keep(engine, graph, params, store, sampler, selector).0
}

/// [`run_imm_compact_store`] that hands the *filled, sealed* store back to
/// the caller instead of dropping it — the entry point of the resident
/// serve mode, which keeps the sketch alive to answer further top-k
/// queries. θ sizing uses [`ImmParams::sizing_k`] (`= effective_k` unless
/// `k_max` is set), so a sketch built here at `k_max` is the same
/// collection a fresh batch run with the same `k_max` would sample.
pub(crate) fn run_imm_compact_store_keep<S: RrrStore>(
    engine: &str,
    graph: &Graph,
    params: &ImmParams,
    store: S,
    mut sampler: impl FnMut(u64, usize, &mut S) -> BatchOutcome,
    mut selector: impl FnMut(&S, u32, u32) -> (Selection, SelectStats),
) -> (ImmResult, S) {
    let n = graph.num_vertices();
    if n < 2 {
        return (degenerate_result(engine, graph, params), store);
    }
    let k = params.effective_k(n);
    // The θ schedule and the estimation-round selections size the sketch;
    // only the final selection returns `k` seeds. `sizing_k == k` unless
    // the caller set `k_max` (serve mode).
    let sizing_k = params.sizing_k(n);
    let schedule = ThetaSchedule::new(
        u64::from(n),
        u64::from(sizing_k),
        params.epsilon,
        params.ell,
    );

    let mut report = RunReport::new(engine);
    let mut memory = MemoryStats {
        counter_bytes: n as usize * std::mem::size_of::<u64>(),
        graph_bytes: graph.resident_bytes(),
        ..MemoryStats::default()
    };
    let mut collection = store;
    let mut sample_work: Vec<u64> = Vec::new();
    let mut next_index: u64 = 0;
    let mut select_stats = SelectStats::default();

    // --- EstimateTheta (Algorithm 2) -----------------------------------
    let mut lb: Option<f64> = None;
    {
        let collection = &mut collection;
        let sample_work = &mut sample_work;
        let next_index = &mut next_index;
        let memory = &mut memory;
        let lb = &mut lb;
        let select_stats = &mut select_stats;
        report.span("EstimateTheta", |report| {
            for x in 1..=schedule.max_rounds() {
                let budget = schedule.round_budget(x);
                if crate::obs::metrics::enabled() {
                    crate::obs::metrics::set(
                        crate::obs::metrics::Metric::ThetaTarget,
                        budget as u64,
                    );
                }
                let stop = report.span(&format!("round-{x}"), |report| {
                    if budget > collection.len() {
                        let need = budget - collection.len();
                        let old_len = collection.len();
                        let outcome =
                            report.span("sample", |_| sampler(*next_index, need, collection));
                        *next_index += need as u64;
                        sample_work.extend_from_slice(&outcome.work_per_sample);
                        record_batch(report, collection, old_len, &outcome);
                    }
                    memory.observe_rrr(collection.resident_bytes());
                    let (sel, sstats) =
                        report.span("select", |_| selector(collection, n, sizing_k));
                    select_stats.absorb(sstats);
                    report.counters.theta_rounds += 1;
                    report.counters.select_iterations += sel.seeds.len() as u64;
                    report.counters.round_budgets.push(budget as u64);
                    report.counters.round_coverage.push(sel.fraction);
                    if schedule.round_succeeds(x, sel.fraction) {
                        *lb = Some(schedule.lower_bound(sel.fraction));
                        true
                    } else {
                        false
                    }
                });
                if stop {
                    break;
                }
            }
        });
    }
    let theta = match lb {
        Some(bound) => schedule.final_theta(bound),
        None => schedule.fallback_theta(u64::from(sizing_k)),
    };
    if crate::obs::metrics::enabled() {
        crate::obs::metrics::set(crate::obs::metrics::Metric::ThetaTarget, theta as u64);
    }

    // --- Sample top-up (Algorithm 3 from the skeleton) ------------------
    if theta > collection.len() {
        let need = theta - collection.len();
        let old_len = collection.len();
        let collection_ref = &mut collection;
        let next = next_index;
        let outcome = report.span("Sample", |_| sampler(next, need, collection_ref));
        sample_work.extend_from_slice(&outcome.work_per_sample);
        record_batch(&mut report, &collection, old_len, &outcome);
    }
    memory.observe_rrr(collection.resident_bytes());

    // --- SelectSeeds (Algorithm 4) ---------------------------------------
    let (final_sel, final_stats) = report.span("SelectSeeds", |_| selector(&collection, n, k));
    select_stats.absorb(final_stats);
    report.counters.select_iterations += final_sel.seeds.len() as u64;

    memory.observe_index(select_stats.index_bytes);
    report.counters.rrr_entries = collection.total_entries();
    report.counters.rrr_bytes_peak = memory.peak_rrr_bytes as u64;
    report.counters.theta_final = collection.len() as u64;
    report.counters.unsorted_pushes = collection.unsorted_pushes();
    report.counters.select_entries_touched = select_stats.entries_touched;
    report.counters.index_build_nanos = select_stats.index_build_nanos;
    report.counters.index_bytes_peak = select_stats.index_bytes as u64;
    report.counters.decode_nanos = select_stats.decode_nanos;
    report.counters.spill_bytes_written = collection.spill_bytes_written();
    if crate::obs::trace::enabled() {
        report.trace = Some(crate::obs::trace::collect_all());
    }
    let result = ImmResult {
        seeds: final_sel.seeds,
        theta: collection.len(),
        coverage_fraction: final_sel.fraction,
        opt_lower_bound: lb,
        timers: report.phase_timers(),
        memory,
        sample_work,
        report,
    };
    (result, collection)
}

/// Seed-set sizes from which [`immopt_sequential`] hands selection to the
/// cost-model dispatch ([`SelectEngine::Auto`]): with `k` this large, an
/// index-driven engine can repay its build cost, because each greedy round
/// after the first touches far fewer than θ samples. Below it, the single
/// sequential scan is already near-optimal and allocates nothing.
const SEQ_FUSED_K_THRESHOLD: u32 = 16;

/// The paper's optimized serial implementation (IMMOPT): compact sorted
/// one-direction storage + sequential Algorithm 4, auto-switching to the
/// cost-model selection dispatch for large `k` (see
/// [`SEQ_FUSED_K_THRESHOLD`]). The seed set is identical either way.
#[must_use]
pub fn immopt_sequential(graph: &Graph, params: &ImmParams) -> ImmResult {
    let engine = if params.effective_k(graph.num_vertices()) >= SEQ_FUSED_K_THRESHOLD {
        SelectEngine::Auto
    } else {
        SelectEngine::Sequential
    };
    immopt_sequential_with_select(graph, params, engine)
}

/// [`immopt_sequential`] with an explicit selection engine (CLI `--select`).
#[must_use]
pub fn immopt_sequential_with_select(
    graph: &Graph,
    params: &ImmParams,
    select: SelectEngine,
) -> ImmResult {
    immopt_sequential_with_engines(graph, params, select, SampleEngine::Reference)
}

/// [`immopt_sequential`] with explicit selection *and* sampling engines
/// (CLI `--select` / `--sample`). With [`SampleEngine::Reference`] this is
/// bitwise [`immopt_sequential_with_select`]; the fused sampler draws a
/// different RNG schedule, so its seed sets are statistically (not bitwise)
/// equivalent — see the `sampler-equivalence` oracle check.
#[must_use]
pub fn immopt_sequential_with_engines(
    graph: &Graph,
    params: &ImmParams,
    select: SelectEngine,
    sample: SampleEngine,
) -> ImmResult {
    let factory = StreamFactory::new(params.seed);
    let mut dispatch = SamplerDispatch::new(graph, params.model, &factory, sample, false);
    run_imm_compact(
        "immopt",
        graph,
        params,
        |first, count, out| dispatch.sample_batch(first, count, out),
        |collection, n, k| select_with_engine(select, collection, n, k, 1),
    )
}

/// [`immopt_sequential_with_engines`] over an explicit RRR storage backend
/// (CLI `--rrr-store` / `--rrr-budget`). The flat backend takes exactly the
/// [`immopt_sequential_with_engines`] code paths; compressed backends fill
/// through the same samplers and select through the decode-on-touch
/// engines, returning the same seeds for the same parameters.
#[must_use]
pub fn immopt_sequential_with_storage(
    graph: &Graph,
    params: &ImmParams,
    select: SelectEngine,
    sample: SampleEngine,
    storage: ripples_diffusion::StorageConfig,
) -> ImmResult {
    if storage.kind == ripples_diffusion::RrrStoreKind::Flat {
        return immopt_sequential_with_engines(graph, params, select, sample);
    }
    let factory = StreamFactory::new(params.seed);
    let mut dispatch = SamplerDispatch::new(graph, params.model, &factory, sample, false);
    let store = ripples_diffusion::DynRrrStore::new(storage, graph.num_vertices());
    run_imm_compact_store(
        "immopt",
        graph,
        params,
        store,
        |first, count, out| dispatch.sample_batch(first, count, out),
        |collection, n, k| crate::select::select_with_engine_store(select, collection, n, k, 1),
    )
}

// ---------------------------------------------------------------------------
// The Tang-style baseline ("IMM" rows of Tables 2 and 3)
// ---------------------------------------------------------------------------

/// Two-direction growable storage mirroring Tang et al.'s hypergraph
/// implementation: per-sample vertex vectors *and* a per-vertex vector of
/// sample ids, maintained incrementally during sampling.
///
/// This is deliberately the less cache- and memory-friendly layout the paper
/// replaces: every association is stored twice, and both directions live in
/// per-entity `Vec`s with their own capacity slack.
struct TangStorage {
    sets: Vec<Vec<Vertex>>,
    vertex_to_sets: Vec<Vec<u32>>,
}

impl TangStorage {
    fn new(n: u32) -> Self {
        Self {
            sets: Vec::new(),
            vertex_to_sets: vec![Vec::new(); n as usize],
        }
    }

    fn len(&self) -> usize {
        self.sets.len()
    }

    fn push(&mut self, vertices: Vec<Vertex>) {
        let sid = self.sets.len() as u32;
        for &v in &vertices {
            self.vertex_to_sets[v as usize].push(sid);
        }
        self.sets.push(vertices);
    }

    /// Actual resident bytes including per-`Vec` capacity slack and the
    /// 24-byte `Vec` headers — the realistic footprint of this layout.
    fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let vec_header = size_of::<Vec<u32>>();
        let sets: usize = self
            .sets
            .iter()
            .map(|s| vec_header + s.capacity() * size_of::<Vertex>())
            .sum();
        let index: usize = self
            .vertex_to_sets
            .iter()
            .map(|s| vec_header + s.capacity() * size_of::<u32>())
            .sum();
        sets + index + self.sets.capacity() * vec_header
    }

    /// Greedy max-cover driven by the inverted index (Tang's selection).
    fn select(&self, n: u32, k: u32) -> Selection {
        let k = k.min(n);
        let mut counters: Vec<u64> = (0..n as usize)
            .map(|v| self.vertex_to_sets[v].len() as u64)
            .collect();
        let mut covered = vec![false; self.sets.len()];
        let mut selected = vec![false; n as usize];
        let mut seeds = Vec::with_capacity(k as usize);
        let mut gains = Vec::with_capacity(k as usize);
        let mut covered_count = 0usize;
        for _ in 0..k {
            let mut best: Option<(u64, Vertex)> = None;
            for (v, (&c, &s)) in counters.iter().zip(&selected).enumerate() {
                if s {
                    continue;
                }
                match best {
                    Some((bc, _)) if bc >= c => {}
                    _ => best = Some((c, v as Vertex)),
                }
            }
            let Some((gain, v)) = best else { break };
            selected[v as usize] = true;
            seeds.push(v);
            gains.push(gain);
            for &sid in &self.vertex_to_sets[v as usize] {
                let j = sid as usize;
                if covered[j] {
                    continue;
                }
                covered[j] = true;
                covered_count += 1;
                for &u in &self.sets[j] {
                    counters[u as usize] -= 1;
                }
            }
        }
        Selection {
            seeds,
            covered: covered_count,
            fraction: if self.sets.is_empty() {
                0.0
            } else {
                covered_count as f64 / self.sets.len() as f64
            },
            marginal_gains: gains,
        }
    }
}

/// The sequential baseline mirroring Tang et al.'s implementation ("IMM"):
/// identical algorithm and RRR kernel, but samples stored in both directions
/// with per-entity vectors.
///
/// Produces the *same seed set* as [`immopt_sequential`] for the same
/// parameters (the greedy engines are deterministic and see the same
/// samples); differs in runtime and memory, which is what Table 2 measures.
#[must_use]
pub fn imm_baseline(graph: &Graph, params: &ImmParams) -> ImmResult {
    imm_baseline_with_options(graph, params, false)
}

/// [`imm_baseline`] with Tang's *fresh-resampling* behaviour switchable.
///
/// Tang et al.'s released code does **not** reuse the estimation-phase
/// samples: after θ is fixed, the hypergraph is discarded and θ fresh
/// samples are generated (also the statistically safest reading of the
/// martingale analysis — cf. Chen's 2018 note on IMM). The CLUSTER'19
/// paper's Algorithm 1 instead tops up (`Sample(G, θ − |R|, R)`), one of
/// IMMOPT's advertised savings. `resample_final = true` reproduces Tang's
/// behaviour for the Table 2/3 runtime comparison; the seed set then comes
/// from a different (equally valid) sample population than IMMOPT's.
#[must_use]
pub fn imm_baseline_with_options(
    graph: &Graph,
    params: &ImmParams,
    resample_final: bool,
) -> ImmResult {
    let n = graph.num_vertices();
    if n < 2 {
        return degenerate_result("baseline", graph, params);
    }
    let k = params.effective_k(n);
    let sizing_k = params.sizing_k(n);
    let schedule = ThetaSchedule::new(
        u64::from(n),
        u64::from(sizing_k),
        params.epsilon,
        params.ell,
    );
    let factory = StreamFactory::new(params.seed);
    let model = params.model;
    // This engine samples through `generate_rrr` directly, bypassing the
    // batch samplers' entry validation — re-assert the LT normalization
    // contract here so un-normalized input fails fast in every profile.
    if model == ripples_diffusion::DiffusionModel::LinearThreshold {
        ripples_diffusion::ensure_lt_normalized(graph);
    }

    let mut report = RunReport::new("baseline");
    let mut memory = MemoryStats {
        counter_bytes: n as usize * std::mem::size_of::<u64>(),
        graph_bytes: graph.resident_bytes(),
        ..MemoryStats::default()
    };
    let mut storage = TangStorage::new(n);
    let mut scratch = RrrScratch::new(n);
    let mut sample_work: Vec<u64> = Vec::new();
    let mut next_index: u64 = 0;

    let sample_into = |storage: &mut TangStorage,
                       scratch: &mut RrrScratch,
                       work: &mut Vec<u64>,
                       report: &mut RunReport,
                       first: u64,
                       count: usize| {
        for offset in 0..count as u64 {
            let index = first + offset;
            let mut rng = factory.sample_stream(index);
            let root = rng.bounded_u64(u64::from(n)) as Vertex;
            let s = generate_rrr(graph, model, root, &mut rng, scratch);
            work.push(s.edges_examined);
            report.counters.samples_generated += 1;
            report.counters.edges_examined += s.edges_examined;
            report.rrr_sizes.record(s.vertices.len() as u64);
            storage.push(s.vertices);
        }
        // Single-threaded engine: the whole batch lands on one worker.
        report.thread_samples.record(count as u64);
    };

    // EstimateTheta.
    let mut lb: Option<f64> = None;
    {
        let storage = &mut storage;
        let scratch = &mut scratch;
        let sample_work = &mut sample_work;
        let next_index = &mut next_index;
        let memory = &mut memory;
        let lb = &mut lb;
        report.span("EstimateTheta", |report| {
            for x in 1..=schedule.max_rounds() {
                let budget = schedule.round_budget(x);
                if crate::obs::metrics::enabled() {
                    crate::obs::metrics::set(
                        crate::obs::metrics::Metric::ThetaTarget,
                        budget as u64,
                    );
                }
                let stop = report.span(&format!("round-{x}"), |report| {
                    if budget > storage.len() {
                        let need = budget - storage.len();
                        report.span("sample", |report| {
                            sample_into(storage, scratch, sample_work, report, *next_index, need);
                        });
                        *next_index += need as u64;
                    }
                    memory.observe_rrr(storage.resident_bytes());
                    let sel = report.span("select", |_| storage.select(n, sizing_k));
                    report.counters.theta_rounds += 1;
                    report.counters.select_iterations += sel.seeds.len() as u64;
                    report.counters.round_budgets.push(budget as u64);
                    report.counters.round_coverage.push(sel.fraction);
                    if schedule.round_succeeds(x, sel.fraction) {
                        *lb = Some(schedule.lower_bound(sel.fraction));
                        true
                    } else {
                        false
                    }
                });
                if stop {
                    break;
                }
            }
        });
    }
    let theta = match lb {
        Some(bound) => schedule.final_theta(bound),
        None => schedule.fallback_theta(u64::from(sizing_k)),
    };
    if crate::obs::metrics::enabled() {
        crate::obs::metrics::set(crate::obs::metrics::Metric::ThetaTarget, theta as u64);
    }

    // Top-up — or, in Tang-faithful mode, full regeneration.
    if resample_final {
        storage = TangStorage::new(n);
        sample_work.clear();
        let storage_ref = &mut storage;
        let scratch_ref = &mut scratch;
        let work_ref = &mut sample_work;
        let next = next_index;
        report.span("Sample", |report| {
            sample_into(storage_ref, scratch_ref, work_ref, report, next, theta);
        });
    } else if theta > storage.len() {
        let need = theta - storage.len();
        let storage_ref = &mut storage;
        let scratch_ref = &mut scratch;
        let work_ref = &mut sample_work;
        let next = next_index;
        report.span("Sample", |report| {
            sample_into(storage_ref, scratch_ref, work_ref, report, next, need);
        });
    }
    memory.observe_rrr(storage.resident_bytes());

    // Final selection.
    let final_sel = report.span("SelectSeeds", |_| storage.select(n, k));
    report.counters.select_iterations += final_sel.seeds.len() as u64;

    report.counters.rrr_entries = storage.sets.iter().map(|s| s.len() as u64).sum();
    report.counters.rrr_bytes_peak = memory.peak_rrr_bytes as u64;
    report.counters.theta_final = storage.len() as u64;
    if crate::obs::trace::enabled() {
        report.trace = Some(crate::obs::trace::collect_all());
    }
    ImmResult {
        seeds: final_sel.seeds,
        theta: storage.len(),
        coverage_fraction: final_sel.fraction,
        opt_lower_bound: lb,
        timers: report.phase_timers(),
        memory,
        sample_work,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_diffusion::DiffusionModel;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    fn test_graph() -> Graph {
        erdos_renyi(400, 3000, WeightModel::UniformRandom { seed: 2 }, false, 11)
    }

    /// Per-model variant of [`test_graph`]: LT runs require the normalized
    /// in-weight contract the engines now enforce.
    fn graph_for(model: DiffusionModel) -> Graph {
        let lt = model == DiffusionModel::LinearThreshold;
        erdos_renyi(400, 3000, WeightModel::UniformRandom { seed: 2 }, lt, 11)
    }

    #[test]
    fn immopt_returns_k_seeds() {
        let g = test_graph();
        let p = ImmParams::new(8, 0.5, DiffusionModel::IndependentCascade, 1);
        let r = immopt_sequential(&g, &p);
        assert_eq!(r.seeds.len(), 8);
        assert!(r.theta > 0);
        assert!(r.coverage_fraction > 0.0 && r.coverage_fraction <= 1.0);
        // Seeds must be distinct.
        let mut s = r.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn baseline_and_immopt_agree_on_seeds() {
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            let g = graph_for(model);
            let p = ImmParams::new(5, 0.5, model, 33);
            let a = imm_baseline(&g, &p);
            let b = immopt_sequential(&g, &p);
            assert_eq!(a.seeds, b.seeds, "seed sets diverged under {model}");
            assert_eq!(a.theta, b.theta);
            assert!((a.coverage_fraction - b.coverage_fraction).abs() < 1e-12);
        }
    }

    #[test]
    fn baseline_uses_more_memory() {
        let g = test_graph();
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 33);
        let a = imm_baseline(&g, &p);
        let b = immopt_sequential(&g, &p);
        assert!(
            a.memory.peak_rrr_bytes > b.memory.peak_rrr_bytes,
            "hypergraph {} must exceed compact {}",
            a.memory.peak_rrr_bytes,
            b.memory.peak_rrr_bytes
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let g = test_graph();
        let p = ImmParams::new(6, 0.5, DiffusionModel::IndependentCascade, 7);
        let a = immopt_sequential(&g, &p);
        let b = immopt_sequential(&g, &p);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.theta, b.theta);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let g = test_graph();
        let p1 = ImmParams::new(6, 0.5, DiffusionModel::IndependentCascade, 1);
        let p2 = ImmParams::new(6, 0.5, DiffusionModel::IndependentCascade, 2);
        let a = immopt_sequential(&g, &p1);
        let b = immopt_sequential(&g, &p2);
        // θ at least will almost surely differ; allow seeds equality.
        assert!(a.theta != b.theta || a.seeds != b.seeds);
    }

    #[test]
    fn tighter_epsilon_needs_more_samples() {
        let g = test_graph();
        let loose = immopt_sequential(
            &g,
            &ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 3),
        );
        let tight = immopt_sequential(
            &g,
            &ImmParams::new(5, 0.3, DiffusionModel::IndependentCascade, 3),
        );
        assert!(
            tight.theta > loose.theta,
            "θ: tight {} vs loose {}",
            tight.theta,
            loose.theta
        );
    }

    #[test]
    fn degenerate_graphs() {
        let empty = ripples_graph::GraphBuilder::new(0).build().unwrap();
        let p = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade, 1);
        let r = immopt_sequential(&empty, &p);
        assert!(r.seeds.is_empty());

        let single = ripples_graph::GraphBuilder::new(1).build().unwrap();
        let r = immopt_sequential(&single, &p);
        assert_eq!(r.seeds, vec![0]);
    }

    #[test]
    fn k_clamped_to_n() {
        let g = erdos_renyi(5, 12, WeightModel::Constant(0.5), false, 4);
        let p = ImmParams::new(50, 0.5, DiffusionModel::IndependentCascade, 1);
        let r = immopt_sequential(&g, &p);
        assert_eq!(r.seeds.len(), 5);
    }

    #[test]
    fn tang_resample_mode_is_statistically_equivalent() {
        let g = test_graph();
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 9);
        let fresh = imm_baseline_with_options(&g, &p, true);
        let reuse = imm_baseline_with_options(&g, &p, false);
        assert_eq!(fresh.seeds.len(), reuse.seeds.len());
        assert_eq!(fresh.theta, reuse.theta, "θ depends only on estimation");
        // Both record exactly the θ samples that drive the final selection
        // (fresh mode discards the estimation batch before regenerating).
        assert_eq!(fresh.sample_work.len(), fresh.theta);
        assert_eq!(reuse.sample_work.len(), reuse.theta);
        // Coverage fractions agree statistically.
        assert!((fresh.coverage_fraction - reuse.coverage_fraction).abs() < 0.1);
    }

    #[test]
    fn work_trace_recorded() {
        let g = test_graph();
        let p = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 9);
        let r = immopt_sequential(&g, &p);
        assert_eq!(r.sample_work.len(), r.theta);
        assert!(r.total_sample_work() > 0);
    }

    /// Regression: `arena_bytes_peak` (and the fused `mask_bytes_peak`)
    /// must track the *maximum* across batches, not the last batch's
    /// reservation — a big batch followed by a small top-up must not lower
    /// the reported peak.
    #[test]
    fn byte_peaks_track_max_across_batches() {
        let mut report = RunReport::new("test");
        let mut collection = RrrCollection::new();
        collection.push(&[0]);
        let big = BatchOutcome {
            arena_bytes: 4096,
            mask_bytes: 1024,
            fused_passes: 3,
            lane_width_counts: vec![0, 2, 5],
            ..BatchOutcome::default()
        };
        record_batch(&mut report, &collection, 0, &big);
        collection.push(&[1]);
        let small = BatchOutcome {
            arena_bytes: 128,
            mask_bytes: 64,
            fused_passes: 2,
            lane_width_counts: vec![0, 1],
            ..BatchOutcome::default()
        };
        record_batch(&mut report, &collection, 1, &small);
        assert_eq!(report.counters.arena_bytes_peak, 4096);
        assert_eq!(report.counters.mask_bytes_peak, 1024);
        assert_eq!(report.counters.fused_passes, 5);
        // Lane-width tallies fold into the histogram: 3 expansions with one
        // lane active, 5 with two.
        assert_eq!(report.lanes_active.count(), 8);
        assert_eq!(report.lanes_active.sum(), 3 + 2 * 5);
        assert_eq!(report.lanes_active.max(), 2);
    }
}
