//! Algorithm parameters.

use ripples_diffusion::DiffusionModel;

/// Parameters of one influence-maximization run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImmParams {
    /// Seed-set size `k`.
    pub k: u32,
    /// Accuracy parameter `ε` of the `(1 − 1/e − ε)` guarantee. Smaller is
    /// more accurate and more expensive (Figure 2). Must be in `(0, 1)`.
    pub epsilon: f64,
    /// Failure-probability exponent `ℓ`: the guarantee holds with
    /// probability `1 − 1/n^ℓ`. The paper (following Tang et al.) uses 1.
    pub ell: f64,
    /// The diffusion model.
    pub model: DiffusionModel,
    /// Master seed for all randomness in the run.
    pub seed: u64,
}

impl ImmParams {
    /// Creates parameters with the paper's default `ℓ = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `ε ∉ (0, 1)`, or `ℓ ≤ 0`.
    #[must_use]
    pub fn new(k: u32, epsilon: f64, model: DiffusionModel, seed: u64) -> Self {
        let p = Self {
            k,
            epsilon,
            ell: 1.0,
            model,
            seed,
        };
        p.validate();
        p
    }

    /// Overrides `ℓ`.
    #[must_use]
    pub fn with_ell(mut self, ell: f64) -> Self {
        self.ell = ell;
        self.validate();
        self
    }

    fn validate(&self) {
        assert!(self.k > 0, "k must be positive");
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "epsilon must be in (0, 1), got {}",
            self.epsilon
        );
        assert!(self.ell > 0.0, "ell must be positive");
    }

    /// The effective `k` for a graph with `n` vertices: requests larger than
    /// the vertex count clamp to `n` (every vertex becomes a seed).
    #[must_use]
    pub fn effective_k(&self, n: u32) -> u32 {
        self.k.min(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_defaults() {
        let p = ImmParams::new(50, 0.5, DiffusionModel::IndependentCascade, 7);
        assert_eq!(p.ell, 1.0);
        assert_eq!(p.k, 50);
    }

    #[test]
    fn effective_k_clamps() {
        let p = ImmParams::new(50, 0.5, DiffusionModel::IndependentCascade, 7);
        assert_eq!(p.effective_k(10), 10);
        assert_eq!(p.effective_k(100), 50);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = ImmParams::new(0, 0.5, DiffusionModel::IndependentCascade, 7);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn bad_epsilon_panics() {
        let _ = ImmParams::new(5, 1.5, DiffusionModel::IndependentCascade, 7);
    }

    #[test]
    #[should_panic(expected = "ell must be positive")]
    fn bad_ell_panics() {
        let _ = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 7).with_ell(0.0);
    }
}
