//! Algorithm parameters.

use ripples_diffusion::DiffusionModel;

/// Parameters of one influence-maximization run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImmParams {
    /// Seed-set size `k`.
    pub k: u32,
    /// Accuracy parameter `ε` of the `(1 − 1/e − ε)` guarantee. Smaller is
    /// more accurate and more expensive (Figure 2). Must be in `(0, 1)`.
    pub epsilon: f64,
    /// Failure-probability exponent `ℓ`: the guarantee holds with
    /// probability `1 − 1/n^ℓ`. The paper (following Tang et al.) uses 1.
    pub ell: f64,
    /// The diffusion model.
    pub model: DiffusionModel,
    /// Master seed for all randomness in the run.
    pub seed: u64,
    /// Optional sketch-sizing override for serve mode: when set, θ estimation
    /// (and the estimation-round selections it runs) are sized for
    /// `max(k, k_max)` while the *final* selection still returns `k` seeds.
    /// A resident sketch built once at `k_max` can then answer any
    /// `topk(k ≤ k_max)` query bitwise-identically to a fresh batch run with
    /// the same `k_max`, because the sampled collection is identical.
    /// `None` (the default) preserves the historical behavior exactly.
    pub k_max: Option<u32>,
}

impl ImmParams {
    /// Creates parameters with the paper's default `ℓ = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `ε ∉ (0, 1)`, or `ℓ ≤ 0`.
    #[must_use]
    pub fn new(k: u32, epsilon: f64, model: DiffusionModel, seed: u64) -> Self {
        let p = Self {
            k,
            epsilon,
            ell: 1.0,
            model,
            seed,
            k_max: None,
        };
        p.validate();
        p
    }

    /// Overrides `ℓ`.
    #[must_use]
    pub fn with_ell(mut self, ell: f64) -> Self {
        self.ell = ell;
        self.validate();
        self
    }

    /// Sizes the sketch for `k_max` queries (serve mode). See
    /// [`ImmParams::k_max`].
    ///
    /// # Panics
    ///
    /// Panics if `k_max == 0`.
    #[must_use]
    pub fn with_k_max(mut self, k_max: u32) -> Self {
        assert!(k_max > 0, "k_max must be positive");
        self.k_max = Some(k_max);
        self
    }

    fn validate(&self) {
        assert!(self.k > 0, "k must be positive");
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "epsilon must be in (0, 1), got {}",
            self.epsilon
        );
        assert!(self.ell > 0.0, "ell must be positive");
    }

    /// The effective `k` for a graph with `n` vertices: requests larger than
    /// the vertex count clamp to `n` (every vertex becomes a seed).
    #[must_use]
    pub fn effective_k(&self, n: u32) -> u32 {
        self.k.min(n)
    }

    /// The `k` used to *size* the sketch (θ schedule and estimation-round
    /// selections): `max(k, k_max)` clamped to `n`. Equals
    /// [`ImmParams::effective_k`] whenever `k_max` is unset or `≤ k`, so
    /// batch runs are unaffected.
    #[must_use]
    pub fn sizing_k(&self, n: u32) -> u32 {
        self.k.max(self.k_max.unwrap_or(0)).min(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_defaults() {
        let p = ImmParams::new(50, 0.5, DiffusionModel::IndependentCascade, 7);
        assert_eq!(p.ell, 1.0);
        assert_eq!(p.k, 50);
    }

    #[test]
    fn effective_k_clamps() {
        let p = ImmParams::new(50, 0.5, DiffusionModel::IndependentCascade, 7);
        assert_eq!(p.effective_k(10), 10);
        assert_eq!(p.effective_k(100), 50);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = ImmParams::new(0, 0.5, DiffusionModel::IndependentCascade, 7);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn bad_epsilon_panics() {
        let _ = ImmParams::new(5, 1.5, DiffusionModel::IndependentCascade, 7);
    }

    #[test]
    #[should_panic(expected = "ell must be positive")]
    fn bad_ell_panics() {
        let _ = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 7).with_ell(0.0);
    }

    #[test]
    fn sizing_k_defaults_to_effective_k() {
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 7);
        assert_eq!(p.k_max, None);
        assert_eq!(p.sizing_k(100), p.effective_k(100));
        assert_eq!(p.sizing_k(3), 3);
    }

    #[test]
    fn sizing_k_takes_k_max() {
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 7).with_k_max(40);
        assert_eq!(p.sizing_k(100), 40);
        assert_eq!(p.effective_k(100), 5);
        assert_eq!(p.sizing_k(8), 8);
        // k_max smaller than k is inert.
        let q = ImmParams::new(50, 0.5, DiffusionModel::IndependentCascade, 7).with_k_max(10);
        assert_eq!(q.sizing_k(100), 50);
    }

    #[test]
    #[should_panic(expected = "k_max must be positive")]
    fn zero_k_max_panics() {
        let _ = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 7).with_k_max(0);
    }
}
