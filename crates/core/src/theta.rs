//! The martingale θ-estimation mathematics of Tang et al. (SIGMOD'15),
//! which the paper's Algorithm 2 wraps.
//!
//! All formulas use natural logarithms. With `ε′ = √2·ε` and `ℓ` inflated
//! by `(1 + ln 2 / ln n)` to absorb the extra union bound:
//!
//! ```text
//! λ′ = (2 + ⅔ε′) · (ln C(n,k) + ℓ·ln n + ln log₂ n) · n / ε′²
//! θₓ = λ′ / (n / 2ˣ)                                (round-x sample budget)
//! α  = √(ℓ·ln n + ln 2)
//! β  = √((1 − 1/e) · (ln C(n,k) + ℓ·ln n + ln 2))
//! λ* = 2n · ((1 − 1/e)·α + β)² / ε²
//! θ  = λ* / LB                                      (final sample count)
//! ```
//!
//! The estimation loop stops at round `x` once the greedy seed set covers
//! enough mass: `n·F_R(S) ≥ (1 + ε′)·(n/2ˣ)`, and then lower-bounds the
//! optimum with `LB = n·F_R(S) / (1 + ε′)`.

/// `ln C(n, k)` computed stably in O(min(k, n−k)).
///
/// # Panics
///
/// Panics if `k > n`.
#[must_use]
pub fn log_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "k ({k}) must not exceed n ({n})");
    let k = k.min(n - k);
    // ln C(n,k) = Σ_{i=1..k} ln(n − k + i) − ln(i)
    let mut acc = 0.0f64;
    for i in 1..=k {
        acc += ((n - k + i) as f64).ln() - (i as f64).ln();
    }
    acc
}

/// Precomputed θ-estimation schedule for one `(n, k, ε, ℓ)` tuple.
#[derive(Clone, Copy, Debug)]
pub struct ThetaSchedule {
    n: f64,
    epsilon: f64,
    eps_prime: f64,
    lambda_prime: f64,
    lambda_star: f64,
    max_rounds: u32,
}

impl ThetaSchedule {
    /// Builds the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `k == 0`, `k > n`, or `ε ∉ (0, 1)`.
    #[must_use]
    pub fn new(n: u64, k: u64, epsilon: f64, ell: f64) -> Self {
        assert!(n >= 2, "need at least two vertices, got {n}");
        assert!(k >= 1 && k <= n, "k ({k}) out of range for n ({n})");
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1), got {epsilon}"
        );
        let nf = n as f64;
        let ln_n = nf.ln();
        // ℓ ← ℓ·(1 + ln2/ln n) so the whole algorithm succeeds w.p. 1 − n^−ℓ.
        let ell = ell * (1.0 + std::f64::consts::LN_2 / ln_n);
        let logcnk = log_binomial(n, k);
        let eps_prime = std::f64::consts::SQRT_2 * epsilon;
        let log2_n = nf.log2();
        let lambda_prime = (2.0 + 2.0 / 3.0 * eps_prime) * (logcnk + ell * ln_n + log2_n.ln()) * nf
            / (eps_prime * eps_prime);
        let one_minus_inv_e = 1.0 - std::f64::consts::E.recip();
        let alpha = (ell * ln_n + std::f64::consts::LN_2).sqrt();
        let beta = (one_minus_inv_e * (logcnk + ell * ln_n + std::f64::consts::LN_2)).sqrt();
        let lambda_star = 2.0 * nf * (one_minus_inv_e * alpha + beta).powi(2) / (epsilon * epsilon);
        Self {
            n: nf,
            epsilon,
            eps_prime,
            lambda_prime,
            lambda_star,
            max_rounds: log2_n.floor().max(1.0) as u32,
        }
    }

    /// `ε′ = √2 ε`.
    #[must_use]
    pub fn eps_prime(&self) -> f64 {
        self.eps_prime
    }

    /// The `ε` this schedule was built with.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of estimation rounds (`x = 1 ..= max_rounds`, i.e. `log₂ n`).
    #[must_use]
    pub fn max_rounds(&self) -> u32 {
        self.max_rounds
    }

    /// Sample budget `θₓ` for estimation round `x` (1-based), the paper's
    /// `f(x, k, ε, |V|)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is 0 or exceeds [`ThetaSchedule::max_rounds`].
    #[must_use]
    pub fn round_budget(&self, x: u32) -> usize {
        assert!(x >= 1 && x <= self.max_rounds, "round {x} out of range");
        let x_i = self.n / 2f64.powi(x as i32);
        (self.lambda_prime / x_i).ceil() as usize
    }

    /// Whether round `x`'s coverage `fraction = F_R(S)` certifies the lower
    /// bound (the `n·F ≥ (1+ε′)·n/2ˣ` test).
    #[must_use]
    pub fn round_succeeds(&self, x: u32, fraction: f64) -> bool {
        self.n * fraction >= (1.0 + self.eps_prime) * (self.n / 2f64.powi(x as i32))
    }

    /// The lower bound on OPT derived from a successful round.
    #[must_use]
    pub fn lower_bound(&self, fraction: f64) -> f64 {
        self.n * fraction / (1.0 + self.eps_prime)
    }

    /// Final sample count `θ = λ*/LB`, the paper's `f′(k, ε, |V|, LB)`.
    ///
    /// # Panics
    ///
    /// Panics if `lb ≤ 0`.
    #[must_use]
    pub fn final_theta(&self, lb: f64) -> usize {
        assert!(lb > 0.0, "lower bound must be positive, got {lb}");
        (self.lambda_star / lb).ceil() as usize
    }

    /// Fallback θ when no estimation round certifies a bound: the paper and
    /// Tang's code fall back to `LB = 1`. The k-vertex seed set always has
    /// `OPT ≥ k`, so `LB = k` is a sound, tighter fallback; we keep `LB = k`
    /// and document the deviation (it only fires on degenerate inputs).
    #[must_use]
    pub fn fallback_theta(&self, k: u64) -> usize {
        self.final_theta(k as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_binomial_known_values() {
        assert!((log_binomial(5, 2) - 10f64.ln()).abs() < 1e-9);
        assert!((log_binomial(10, 0)).abs() < 1e-12);
        assert!((log_binomial(10, 10)).abs() < 1e-12);
        assert!((log_binomial(52, 5) - (2_598_960f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn log_binomial_symmetry() {
        assert!((log_binomial(100, 3) - log_binomial(100, 97)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn log_binomial_rejects_k_gt_n() {
        let _ = log_binomial(3, 4);
    }

    #[test]
    fn budgets_grow_per_round() {
        let s = ThetaSchedule::new(10_000, 50, 0.5, 1.0);
        let mut prev = 0;
        for x in 1..=s.max_rounds() {
            let b = s.round_budget(x);
            assert!(b > prev, "round {x} budget {b} not increasing");
            prev = b;
        }
    }

    #[test]
    fn theta_grows_as_epsilon_shrinks() {
        // The Figure 2 relationship.
        let tight = ThetaSchedule::new(27_770, 50, 0.2, 1.0);
        let loose = ThetaSchedule::new(27_770, 50, 0.5, 1.0);
        let lb = 1000.0;
        assert!(tight.final_theta(lb) > 4 * loose.final_theta(lb));
    }

    #[test]
    fn theta_grows_with_k() {
        let small_k = ThetaSchedule::new(27_770, 10, 0.5, 1.0);
        let large_k = ThetaSchedule::new(27_770, 100, 0.5, 1.0);
        let lb = 1000.0;
        assert!(large_k.final_theta(lb) > small_k.final_theta(lb));
    }

    #[test]
    fn theta_can_exceed_n() {
        // Figure 2's observation: θ quickly exceeds n at high precision.
        let s = ThetaSchedule::new(27_770, 100, 0.2, 1.0);
        // Even with a generous lower bound, θ > n.
        assert!(s.final_theta(2000.0) > 27_770);
    }

    #[test]
    fn round_success_threshold() {
        let s = ThetaSchedule::new(1024, 10, 0.5, 1.0);
        // Round 1: needs n·F ≥ (1+ε′)·n/2 → F ≥ (1+ε′)/2 ≈ 0.8536.
        assert!(!s.round_succeeds(1, 0.5));
        assert!(s.round_succeeds(1, 0.9));
        // Deeper rounds need less coverage.
        assert!(s.round_succeeds(5, 0.1));
    }

    #[test]
    fn lower_bound_and_final_theta_consistent() {
        let s = ThetaSchedule::new(4096, 20, 0.4, 1.0);
        let lb = s.lower_bound(0.5);
        assert!(lb > 0.0 && lb < 4096.0);
        let theta = s.final_theta(lb);
        assert!(theta > 0);
        // Larger LB → smaller θ.
        assert!(s.final_theta(lb * 2.0) < theta);
    }

    #[test]
    fn fallback_uses_k() {
        let s = ThetaSchedule::new(4096, 20, 0.4, 1.0);
        assert_eq!(s.fallback_theta(20), s.final_theta(20.0));
    }

    #[test]
    #[should_panic(expected = "round")]
    fn round_budget_bounds_checked() {
        let s = ThetaSchedule::new(1024, 10, 0.5, 1.0);
        let _ = s.round_budget(0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Budget monotonicity over the whole admissible parameter
            /// space, not just one tuple: θₓ = λ′·2ˣ/n doubles (before
            /// ceiling) every round, and since θ₁ ≥ 1 the ceiled budgets
            /// are *strictly* increasing — the estimation loop always makes
            /// progress and never re-runs selection on an unchanged
            /// collection.
            #[test]
            fn round_budgets_strictly_increase(
                n in 2u64..200_000,
                k_frac in 0.0f64..1.0,
                epsilon in 0.05f64..0.95,
                ell in 0.5f64..2.0,
            ) {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let k = (1 + ((n - 1) as f64 * k_frac) as u64).min(n);
                let s = ThetaSchedule::new(n, k, epsilon, ell);
                prop_assert!(s.max_rounds() >= 1);
                let mut prev = 0usize;
                for x in 1..=s.max_rounds() {
                    let b = s.round_budget(x);
                    prop_assert!(
                        b > prev,
                        "n={} k={} eps={} ell={}: round {} budget {} <= prev {}",
                        n, k, epsilon, ell, x, b, prev
                    );
                    prev = b;
                }
            }

            /// The success threshold loosens monotonically with depth: a
            /// coverage fraction that certifies round x also certifies any
            /// deeper round.
            #[test]
            fn success_threshold_monotone_in_round(
                n in 2u64..200_000,
                epsilon in 0.05f64..0.95,
                fraction in 0.0f64..1.0,
            ) {
                let s = ThetaSchedule::new(n, 1, epsilon, 1.0);
                let mut succeeded = false;
                for x in 1..=s.max_rounds() {
                    let now = s.round_succeeds(x, fraction);
                    prop_assert!(
                        now || !succeeded,
                        "round {} failed after a shallower round succeeded",
                        x
                    );
                    succeeded = succeeded || now;
                }
            }
        }
    }
}
