//! High-level one-call entry points.

use crate::params::ImmParams;
use crate::result::ImmResult;
use ripples_graph::Graph;

/// Runs influence maximization with the recommended engine (multithreaded
/// IMM on all available cores) and returns the seed set plus full
/// instrumentation.
///
/// Equivalent to `crate::mt::imm_multithreaded(graph, params, 0)`; prefer
/// the module-level entry points when you need a specific engine, thread
/// count, or communicator.
#[must_use]
pub fn maximize_influence(graph: &Graph, params: &ImmParams) -> ImmResult {
    crate::mt::imm_multithreaded(graph, params, 0)
}

/// Builder-style front end over [`ImmParams`] for ergonomic call sites.
///
/// ```
/// use ripples_core::api::ImmRunner;
/// use ripples_diffusion::DiffusionModel;
/// use ripples_graph::{generators::erdos_renyi, WeightModel};
///
/// // LT runs require in-weights summing to ≤ 1 per vertex — build the
/// // graph with the normalization pass (the `true` flag).
/// let graph = erdos_renyi(100, 500, WeightModel::Constant(0.1), true, 1);
/// let result = ImmRunner::new(&graph)
///     .seeds(5)
///     .epsilon(0.5)
///     .model(DiffusionModel::LinearThreshold)
///     .rng_seed(7)
///     .run();
/// assert_eq!(result.seeds.len(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct ImmRunner<'g> {
    graph: &'g Graph,
    k: u32,
    epsilon: f64,
    ell: f64,
    model: ripples_diffusion::DiffusionModel,
    seed: u64,
    threads: usize,
}

impl<'g> ImmRunner<'g> {
    /// Starts a runner with the paper's default parameters
    /// (`k = 50`, `ε = 0.5`, IC, ℓ = 1).
    #[must_use]
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            graph,
            k: 50,
            epsilon: 0.5,
            ell: 1.0,
            model: ripples_diffusion::DiffusionModel::IndependentCascade,
            seed: 0,
            threads: 0,
        }
    }

    /// Sets the seed-set size `k`.
    #[must_use]
    pub fn seeds(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Sets the accuracy parameter `ε`.
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the failure exponent `ℓ`.
    #[must_use]
    pub fn ell(mut self, ell: f64) -> Self {
        self.ell = ell;
        self
    }

    /// Sets the diffusion model.
    #[must_use]
    pub fn model(mut self, model: ripples_diffusion::DiffusionModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the master RNG seed.
    #[must_use]
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker thread count (0 = all cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Materializes the parameters.
    #[must_use]
    pub fn params(&self) -> ImmParams {
        ImmParams::new(self.k, self.epsilon, self.model, self.seed).with_ell(self.ell)
    }

    /// Runs the multithreaded engine.
    #[must_use]
    pub fn run(&self) -> ImmResult {
        crate::mt::imm_multithreaded(self.graph, &self.params(), self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    #[test]
    fn one_call_api() {
        let g = erdos_renyi(150, 900, WeightModel::Constant(0.1), false, 5);
        let p = ImmParams::new(
            3,
            0.5,
            ripples_diffusion::DiffusionModel::IndependentCascade,
            1,
        );
        let r = maximize_influence(&g, &p);
        assert_eq!(r.seeds.len(), 3);
    }

    #[test]
    fn builder_matches_direct_call() {
        let g = erdos_renyi(150, 900, WeightModel::Constant(0.1), false, 5);
        let via_builder = ImmRunner::new(&g)
            .seeds(4)
            .epsilon(0.5)
            .rng_seed(9)
            .threads(1)
            .run();
        let p = ImmParams::new(
            4,
            0.5,
            ripples_diffusion::DiffusionModel::IndependentCascade,
            9,
        );
        let direct = crate::mt::imm_multithreaded(&g, &p, 1);
        assert_eq!(via_builder.seeds, direct.seeds);
    }
}
