//! Distributed IMM over a **partitioned input graph** — the paper's future
//! work item (i), implemented: *"extension to settings where the input
//! graph is also partitioned (in addition to R)"*.
//!
//! The published system replicates `G` on every rank; memory per rank is
//! `O(m + θ/p · s̄)`, so the graph itself caps scalability (the paper's
//! OOM-killed Table 2 entries). Here rank `r` stores only the in-edges of
//! its owned vertex interval (`≈ m/p` edges, see
//! [`ripples_diffusion::GraphPartition`]) and RRR sets are generated
//! *cooperatively*:
//!
//! 1. Every sample's root is routed to its owner.
//! 2. Bulk-synchronous rounds: each rank expands the frontier vertices it
//!    owns (coin flips keyed by `(sample, vertex)`, so results are
//!    independent of the partitioning), then exchanges the discovered
//!    vertices with their owners.
//! 3. When the global frontier drains, each sample's fragments are gathered
//!    to its home rank (`sample mod p`), yielding exactly the layout the
//!    replicated distributed engine uses — so seed selection proceeds
//!    unchanged (dense or sparse aggregation).
//!
//! Correctness anchor: for any rank count, the generated collection is
//! **bitwise identical** to the sequential
//! [`ripples_diffusion::partitioned::vertex_keyed_rrr`] reference, and so is
//! the seed set (tested below).

use crate::memory::MemoryStats;
use crate::obs::{CommCounters, RunReport};
use crate::params::ImmParams;
use crate::result::ImmResult;
use crate::theta::ThetaSchedule;
use ripples_comm::{Communicator, RetryComm};
use ripples_diffusion::partitioned::{sample_root, sample_stream_seed};
use ripples_diffusion::{
    DiffusionModel, DynRrrStore, GraphPartition, RrrCollection, RrrStore, RrrStoreKind,
    StorageConfig,
};
use ripples_graph::{Graph, Vertex};
use ripples_rng::StreamFactory;
use std::collections::HashSet;

/// Encodes a `(sample offset, vertex)` routing pair.
#[inline]
fn encode(sample: usize, v: Vertex) -> u64 {
    ((sample as u64) << 32) | u64::from(v)
}

#[inline]
fn decode(x: u64) -> (usize, Vertex) {
    ((x >> 32) as usize, (x & 0xFFFF_FFFF) as Vertex)
}

/// Cooperatively generates samples `first .. first+count`, returning this
/// rank's *home* samples (those with `index % size == rank`) in index
/// order, plus the edges examined locally.
pub fn sample_batch_cooperative<C: Communicator, S: RrrStore>(
    comm: &C,
    partition: &GraphPartition,
    model: DiffusionModel,
    factory: &StreamFactory,
    first: u64,
    count: usize,
    out: &mut S,
) -> u64 {
    let size = comm.size();
    let rank = comm.rank();
    let n = partition.num_vertices;
    // Per-sample state on this rank: owned visited vertices.
    let mut visited: Vec<HashSet<Vertex>> = vec![HashSet::new(); count];
    let mut members: Vec<Vec<Vertex>> = vec![Vec::new(); count];
    let mut seeds: Vec<u64> = Vec::with_capacity(count);
    for offset in 0..count {
        seeds.push(sample_stream_seed(factory, first + offset as u64));
    }

    // Round 0: roots to their owners.
    let mut incoming: Vec<u64> = Vec::new();
    for offset in 0..count {
        let root = sample_root(factory, first + offset as u64, n);
        if partition.owns(root) {
            incoming.push(encode(offset, root));
        }
    }

    let mut local_work = 0u64;
    let mut outbox: Vec<u64> = Vec::new();
    let mut expansion: Vec<Vertex> = Vec::new();
    loop {
        outbox.clear();
        for &enc in &incoming {
            let (offset, v) = decode(enc);
            debug_assert!(partition.owns(v));
            if !visited[offset].insert(v) {
                continue; // already expanded for this sample
            }
            members[offset].push(v);
            expansion.clear();
            local_work += partition.expand(model, seeds[offset], v, &mut expansion);
            // Tag the newly discovered vertices with the sample offset.
            for &u in &expansion {
                outbox.push(encode(offset, u));
            }
        }
        // Global termination check + exchange in one collective.
        let gathered = comm.all_gather_u64_list(&outbox);
        let total: usize = gathered.iter().map(Vec::len).sum();
        if total == 0 {
            break;
        }
        incoming.clear();
        for list in gathered {
            for enc in list {
                let (_, v) = decode(enc);
                if partition.owns(v) {
                    incoming.push(enc);
                }
            }
        }
    }

    // Gather fragments to home ranks.
    let mut fragments: Vec<u64> = Vec::new();
    for (offset, mine) in members.iter().enumerate() {
        for &v in mine {
            fragments.push(encode(offset, v));
        }
    }
    let gathered = comm.all_gather_u64_list(&fragments);
    let mut home_samples: Vec<Vec<Vertex>> = vec![Vec::new(); count];
    for list in gathered {
        for enc in list {
            let (offset, v) = decode(enc);
            if (first + offset as u64) % u64::from(size) == u64::from(rank) {
                home_samples[offset].push(v);
            }
        }
    }
    for (offset, mut sample) in home_samples.into_iter().enumerate() {
        if (first + offset as u64) % u64::from(size) != u64::from(rank) {
            continue;
        }
        sample.sort_unstable();
        sample.dedup();
        if crate::obs::metrics::enabled() {
            // Home ranks count their samples once each, so the shared
            // registry sums to the world-total batch size; edge work is
            // charged where it was examined (below).
            crate::obs::metrics::add(crate::obs::metrics::Metric::SamplesGenerated, 1);
            crate::obs::metrics::observe_rrr_size(sample.len() as u64);
        }
        out.push(&sample);
    }
    if crate::obs::metrics::enabled() {
        crate::obs::metrics::add(crate::obs::metrics::Metric::EdgesExamined, local_work);
    }
    local_work
}

/// Full IMM over a partitioned graph: cooperative sampling + the standard
/// distributed (dense All-Reduce) seed selection over home samples.
///
/// Each rank needs only `graph`'s slice for sampling; the full `graph`
/// argument exists because the experiments hold it anyway (a production
/// deployment would construct [`GraphPartition`] from per-rank input
/// shards).
#[must_use]
pub fn imm_partitioned<C: Communicator>(comm: &C, graph: &Graph, params: &ImmParams) -> ImmResult {
    imm_partitioned_impl(comm, graph, params, RrrCollection::new())
}

/// [`imm_partitioned`] over an explicit RRR storage backend (CLI
/// `--rrr-store` / `--rrr-budget`). The flat backend takes exactly the
/// [`imm_partitioned`] code paths; compressed backends store each rank's
/// home samples gap-encoded (or spilled) and select through the
/// decode-on-touch distributed path, so the seed set is identical at every
/// rank count and for every backend.
#[must_use]
pub fn imm_partitioned_with_storage<C: Communicator>(
    comm: &C,
    graph: &Graph,
    params: &ImmParams,
    storage: StorageConfig,
) -> ImmResult {
    if storage.kind == RrrStoreKind::Flat {
        return imm_partitioned(comm, graph, params);
    }
    imm_partitioned_impl(
        comm,
        graph,
        params,
        DynRrrStore::new(storage, graph.num_vertices()),
    )
}

fn imm_partitioned_impl<C: Communicator, S: RrrStore>(
    comm: &C,
    graph: &Graph,
    params: &ImmParams,
    store: S,
) -> ImmResult {
    // Same retry/rank-death shield as `imm_distributed_full`; free on a
    // reliable backend.
    let comm = &RetryComm::with_defaults(comm);
    let n = graph.num_vertices();
    if n < 2 {
        comm.barrier();
        return crate::seq::immopt_sequential(graph, params);
    }
    let k = params.effective_k(n);
    let sizing_k = params.sizing_k(n);
    let schedule = ThetaSchedule::new(
        u64::from(n),
        u64::from(sizing_k),
        params.epsilon,
        params.ell,
    );
    let factory = StreamFactory::new(params.seed);
    let model = params.model;
    // The cooperative sampler expands through partition-local edge lists,
    // bypassing the batch samplers' entry validation — re-assert the LT
    // normalization contract on the full graph (every rank holds it here)
    // so un-normalized input fails fast in every profile.
    if model == DiffusionModel::LinearThreshold {
        ripples_diffusion::ensure_lt_normalized(graph);
    }
    let partition = GraphPartition::extract(graph, comm.rank(), comm.size());
    // Tag this rank thread's event ring so the merged trace shows one
    // process track per rank.
    crate::obs::trace::set_thread_rank(comm.rank());

    let mut report = RunReport::new("partitioned");
    let comm_before = comm.stats();
    let mut memory = MemoryStats {
        counter_bytes: 2 * n as usize * std::mem::size_of::<u64>(),
        // The honest headline: per-rank graph bytes are the partition's.
        graph_bytes: partition.resident_bytes(),
        ..MemoryStats::default()
    };
    let mut local = store;
    let mut sample_work: Vec<u64> = Vec::new();
    let mut theta_global: usize = 0;
    let mut select_stats = crate::select::SelectStats::default();

    // Records local counters for one cooperative batch: the home samples
    // this rank kept plus the expansion work it performed. Globalized once
    // at the end of the run.
    let record_batch = |report: &mut RunReport, local: &S, old_len: usize, local_work: u64| {
        let new_samples = (local.len() - old_len) as u64;
        report.counters.samples_generated += new_samples;
        report.counters.edges_examined += local_work;
        for slot in old_len..local.len() {
            report.rrr_sizes.record(local.sample_len(slot) as u64);
        }
        report.thread_samples.record(new_samples);
    };

    let mut lb: Option<f64> = None;
    {
        let local_ref = &mut local;
        let work_ref = &mut sample_work;
        let theta_ref = &mut theta_global;
        let memory = &mut memory;
        let lb = &mut lb;
        let select_stats = &mut select_stats;
        report.span("EstimateTheta", |report| {
            for x in 1..=schedule.max_rounds() {
                let budget = schedule.round_budget(x);
                if crate::obs::metrics::enabled() {
                    crate::obs::metrics::set(
                        crate::obs::metrics::Metric::ThetaTarget,
                        budget as u64,
                    );
                }
                let stop = report.span(&format!("round-{x}"), |report| {
                    if budget > *theta_ref {
                        let old_len = local_ref.len();
                        let work = report.span("sample", |_| {
                            sample_batch_cooperative(
                                comm,
                                &partition,
                                model,
                                &factory,
                                *theta_ref as u64,
                                budget - *theta_ref,
                                local_ref,
                            )
                        });
                        work_ref.push(work);
                        record_batch(report, local_ref, old_len, work);
                        *theta_ref = budget;
                    }
                    memory.observe_rrr(local_ref.resident_bytes());
                    let (sel_seeds, _, fraction, sstats) = report.span("select", |_| {
                        crate::dist::select_seeds_distributed_public(
                            comm, local_ref, *theta_ref, n, sizing_k,
                        )
                    });
                    select_stats.absorb(sstats);
                    report.counters.theta_rounds += 1;
                    report.counters.select_iterations += sel_seeds.len() as u64;
                    report.counters.round_budgets.push(budget as u64);
                    report.counters.round_coverage.push(fraction);
                    if schedule.round_succeeds(x, fraction) {
                        *lb = Some(schedule.lower_bound(fraction));
                        true
                    } else {
                        false
                    }
                });
                if stop {
                    break;
                }
            }
        });
    }
    let theta = match lb {
        Some(bound) => schedule.final_theta(bound),
        None => schedule.fallback_theta(u64::from(sizing_k)),
    };
    if crate::obs::metrics::enabled() {
        crate::obs::metrics::set(crate::obs::metrics::Metric::ThetaTarget, theta as u64);
    }
    if theta > theta_global {
        let local_ref = &mut local;
        let work_ref = &mut sample_work;
        let current = theta_global;
        report.span("Sample", |report| {
            let old_len = local_ref.len();
            let work = sample_batch_cooperative(
                comm,
                &partition,
                model,
                &factory,
                current as u64,
                theta - current,
                local_ref,
            );
            work_ref.push(work);
            record_batch(report, local_ref, old_len, work);
        });
        theta_global = theta;
    }
    memory.observe_rrr(local.resident_bytes());

    let (seeds, _, fraction, final_stats) = report.span("SelectSeeds", |_| {
        crate::dist::select_seeds_distributed_public(comm, &local, theta_global, n, k)
    });
    select_stats.absorb(final_stats);
    report.counters.select_iterations += seeds.len() as u64;

    memory.observe_index(select_stats.index_bytes);
    report.counters.rrr_entries = local.total_entries();
    report.counters.rrr_bytes_peak = memory.peak_rrr_bytes as u64;
    report.counters.theta_final = theta_global as u64;
    report.counters.unsorted_pushes = local.unsorted_pushes();
    report.counters.select_entries_touched = select_stats.entries_touched;
    report.counters.index_build_nanos = select_stats.index_build_nanos;
    report.counters.index_bytes_peak = select_stats.index_bytes as u64;
    report.counters.decode_nanos = select_stats.decode_nanos;
    report.counters.spill_bytes_written = local.spill_bytes_written();
    crate::dist::globalize_counters(comm, &mut report);
    crate::dist::globalize_health(comm, &mut report);
    report.comm = Some(CommCounters::delta(&comm_before, &comm.stats()));
    if crate::obs::trace::enabled() {
        // Collective: every rank contributes its timeline and every rank
        // receives the same rank-tagged merge.
        report.trace = Some(crate::obs::trace::gather_trace(comm));
    }

    ImmResult {
        seeds,
        theta: theta_global,
        coverage_fraction: fraction,
        opt_lower_bound: lb,
        timers: report.phase_timers(),
        memory,
        sample_work,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_comm::{SelfComm, ThreadWorld};
    use ripples_diffusion::partitioned::vertex_keyed_rrr;
    use ripples_diffusion::rrr::RrrScratch;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    fn graph() -> Graph {
        erdos_renyi(200, 1600, WeightModel::UniformRandom { seed: 7 }, false, 61)
    }

    #[test]
    fn cooperative_sampling_matches_reference_bitwise() {
        let g = graph();
        let factory = StreamFactory::new(404);
        let count = 60usize;
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            // Sequential reference.
            let mut scratch = RrrScratch::new(g.num_vertices());
            let reference: Vec<Vec<Vertex>> = (0..count as u64)
                .map(|i| vertex_keyed_rrr(&g, model, &factory, i, &mut scratch))
                .collect();
            for size in [1u32, 2, 3, 4] {
                let world = ThreadWorld::new(size);
                let per_rank = world.run(|comm| {
                    let partition = GraphPartition::extract(&g, comm.rank(), comm.size());
                    let mut out = RrrCollection::new();
                    sample_batch_cooperative(comm, &partition, model, &factory, 0, count, &mut out);
                    (comm.rank(), out)
                });
                // Reassemble by home-rank ownership (index % size == rank,
                // in index order per rank).
                for (rank, collection) in per_rank {
                    let mine: Vec<usize> = (0..count)
                        .filter(|i| i % size as usize == rank as usize)
                        .collect();
                    assert_eq!(collection.len(), mine.len());
                    for (slot, &index) in mine.iter().enumerate() {
                        assert_eq!(
                            collection.get(slot),
                            reference[index].as_slice(),
                            "{model}: size {size}, sample {index}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partitioned_imm_seed_set_independent_of_rank_count() {
        let g = graph();
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 23);
        let single = imm_partitioned(&SelfComm::new(), &g, &p);
        assert_eq!(single.seeds.len(), 5);
        for size in [2u32, 3] {
            let world = ThreadWorld::new(size);
            let results = world.run(|comm| imm_partitioned(comm, &g, &p));
            for r in &results {
                assert_eq!(r.seeds, single.seeds, "world {size}");
                assert_eq!(r.theta, single.theta);
            }
        }
    }

    #[test]
    fn storage_backends_match_flat_at_any_rank_count() {
        let g = graph();
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 23);
        let flat = imm_partitioned(&SelfComm::new(), &g, &p);
        for kind in [
            RrrStoreKind::Varint,
            RrrStoreKind::Bitpack,
            RrrStoreKind::Spill,
        ] {
            let budget = (kind == RrrStoreKind::Spill).then_some(4096);
            let storage = StorageConfig { kind, budget };
            let single = imm_partitioned_with_storage(&SelfComm::new(), &g, &p, storage);
            assert_eq!(single.seeds, flat.seeds, "{kind:?} single rank");
            assert_eq!(single.theta, flat.theta, "{kind:?} single rank");
            let world = ThreadWorld::new(2);
            let results = world.run(|comm| imm_partitioned_with_storage(comm, &g, &p, storage));
            for r in &results {
                assert_eq!(r.seeds, flat.seeds, "{kind:?} world 2");
                assert_eq!(r.theta, flat.theta, "{kind:?} world 2");
            }
        }
    }

    #[test]
    fn per_rank_graph_memory_shrinks_with_ranks() {
        let g = graph();
        let full = GraphPartition::extract(&g, 0, 1).resident_bytes();
        let world = ThreadWorld::new(4);
        let p = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade, 2);
        let results = world.run(|comm| imm_partitioned(comm, &g, &p));
        for r in results {
            assert!(
                r.memory.graph_bytes * 2 < full,
                "rank holds {} of full {}",
                r.memory.graph_bytes,
                full
            );
        }
    }

    #[test]
    fn quality_parity_with_replicated_engine() {
        use ripples_diffusion::estimate_spread;
        let g = graph();
        let model = DiffusionModel::IndependentCascade;
        let p = ImmParams::new(5, 0.5, model, 9);
        let world = ThreadWorld::new(2);
        let part = world
            .run(|comm| imm_partitioned(comm, &g, &p))
            .pop()
            .unwrap();
        let repl = crate::seq::immopt_sequential(&g, &p);
        let factory = StreamFactory::new(31337);
        let s_part = estimate_spread(&g, model, &part.seeds, 800, &factory);
        let s_repl = estimate_spread(&g, model, &repl.seeds, 800, &factory);
        let ratio = s_part / s_repl.max(1.0);
        assert!(
            (0.9..=1.1).contains(&ratio),
            "partitioned quality diverged: {s_part} vs {s_repl}"
        );
    }
}
