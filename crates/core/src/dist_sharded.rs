//! Distributed IMM over a **vertex-cut sharded graph** with batched
//! asynchronous frontier exchange.
//!
//! [`crate::dist_partitioned`] already stops replicating the graph, but its
//! interval partition keys ownership by *vertex*, so a single hub vertex
//! pins its whole in-list to one rank and every BFS round moves the entire
//! frontier through one `AllGather`. This engine shards by *edge* instead
//! ([`ripples_graph::partition::VertexCutShard`]): the global in-edge order
//! is split into `p` equal contiguous ranges, a vertex whose in-list
//! straddles a boundary is mirrored on the (contiguous) interval of ranks
//! holding its chunks, and the ghost table routes frontier crossings
//! without any lookup traffic.
//!
//! Sampling runs in **blocks** of [`BLOCK_SAMPLES`] cascades:
//!
//! 1. Within a block, RRR walks expand chunk-locally; vertices whose
//!    remaining in-edges live elsewhere are exchanged with their mirror
//!    ranks in one batched `alltoallv` per BFS round (a header element per
//!    sender carries the round's global discovery count, so termination
//!    needs no extra collective).
//! 2. Discovered members are *not* gathered synchronously: each block's
//!    member records are posted as a nonblocking exchange
//!    ([`Communicator::post_exchange_u64`]) routed to the sample's home
//!    rank, and the engine samples the **next** block while the previous
//!    block's records are in flight, draining them one block later. The
//!    hidden latency is surfaced as `overlap_nanos`.
//!
//! Coin flips are keyed by `(sample, vertex)` and chunk expansion replays
//! the exact per-edge draw sequence of the sequential reference
//! ([`ripples_diffusion::partitioned::expand_shard_chunk`]), so the
//! generated collection — and therefore the seed set — is **bitwise
//! identical** to [`crate::dist_partitioned::imm_partitioned`] and the
//! sequential vertex-keyed reference at every rank count (tested below).

use crate::memory::MemoryStats;
use crate::obs::{CommCounters, RunReport};
use crate::params::ImmParams;
use crate::result::ImmResult;
use crate::theta::ThetaSchedule;
use ripples_comm::{Communicator, RetryComm};
use ripples_diffusion::partitioned::{expand_shard_chunk, sample_root, sample_stream_seed};
use ripples_diffusion::{
    DiffusionModel, DynRrrStore, RrrCollection, RrrStore, RrrStoreKind, StorageConfig,
};
use ripples_graph::partition::VertexCutShard;
use ripples_graph::{Graph, Vertex};
use ripples_rng::StreamFactory;
use std::collections::HashSet;
use std::time::Instant;

/// Cascades sampled per pipeline block: large enough to amortize the
/// per-round collective, small enough that two blocks of member records
/// stay cheap to hold while one exchange is in flight.
pub const BLOCK_SAMPLES: usize = 256;

/// Per-rank tallies of the sharded engine's exchange machinery.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExchangeStats {
    /// Batched `alltoallv` exchanges issued (frontier rounds + posted
    /// member routings). Identical on every rank — the collective sequence
    /// is lockstep.
    pub frontier_exchanges: u64,
    /// Nanoseconds between posting a block's member exchange and waiting on
    /// it — latency hidden behind the next block's local sampling.
    pub overlap_nanos: u64,
}

/// Encodes a `(block-relative sample offset, vertex)` routing pair.
#[inline]
fn encode(offset: usize, v: Vertex) -> u64 {
    ((offset as u64) << 32) | u64::from(v)
}

#[inline]
fn decode(x: u64) -> (usize, Vertex) {
    ((x >> 32) as usize, (x & 0xFFFF_FFFF) as Vertex)
}

/// One block whose member-routing exchange has been posted but not drained.
struct PendingBlock {
    /// Offset of the block's first sample within the batch.
    block_first: usize,
    /// Per-sample member accumulators (pre-seeded with the root for samples
    /// homed on this rank; empty for the rest).
    buckets: Vec<Vec<Vertex>>,
    handle: ripples_comm::ExchangeHandle,
    posted: Instant,
}

/// Expands one block of cascades chunk-locally, exchanging frontier
/// crossings with mirror ranks each round. Returns the member records
/// routed per home rank, the home-sample accumulators, and the local edge
/// work.
#[allow(clippy::too_many_arguments)]
fn expand_block<C: Communicator>(
    comm: &C,
    shard: &VertexCutShard,
    model: DiffusionModel,
    factory: &StreamFactory,
    batch_first: u64,
    block_first: usize,
    block_len: usize,
    stats: &mut ExchangeStats,
) -> (Vec<Vec<u64>>, Vec<Vec<Vertex>>, u64) {
    let size = comm.size() as usize;
    let rank = u64::from(comm.rank());
    let n = shard.num_vertices();
    // Per-sample state on this rank: chunks already expanded, vertices
    // already routed (membership + frontier), and the home accumulators.
    let mut visited: Vec<HashSet<Vertex>> = vec![HashSet::new(); block_len];
    let mut announced: Vec<HashSet<Vertex>> = vec![HashSet::new(); block_len];
    let mut buckets: Vec<Vec<Vertex>> = vec![Vec::new(); block_len];
    let mut member_sends: Vec<Vec<u64>> = vec![Vec::new(); size];
    let mut seeds: Vec<u64> = Vec::with_capacity(block_len);

    // Round 0: roots are a pure function of the sample index, so every rank
    // derives them locally — the home rank records membership, the chunk
    // holders seed their frontier. No communication.
    let mut incoming: Vec<u64> = Vec::new();
    for offset in 0..block_len {
        let index = batch_first + (block_first + offset) as u64;
        seeds.push(sample_stream_seed(factory, index));
        let root = sample_root(factory, index, n);
        if index % size as u64 == rank {
            buckets[offset].push(root);
        }
        announced[offset].insert(root);
        if shard.chunk(root).is_some() {
            incoming.push(encode(offset, root));
        }
    }

    let mut work = 0u64;
    let mut expansion: Vec<Vertex> = Vec::new();
    loop {
        // Element 0 of every outgoing list is this rank's total frontier
        // entries this round (replicated per peer): receivers sum the
        // headers to agree on global termination without a second
        // collective.
        let mut sends: Vec<Vec<u64>> = vec![vec![0u64]; size];
        let mut outgoing = 0u64;
        for &enc in &incoming {
            let (offset, v) = decode(enc);
            if !visited[offset].insert(v) {
                continue; // chunk already expanded for this sample
            }
            expansion.clear();
            let chunk = shard
                .chunk(v)
                .expect("frontier routed to a rank holding no chunk");
            work += expand_shard_chunk(model, seeds[offset], v, chunk, &mut expansion);
            for &u in &expansion {
                if !announced[offset].insert(u) {
                    continue; // this rank already routed u for this sample
                }
                let enc_u = encode(offset, u);
                let index = batch_first + (block_first + offset) as u64;
                member_sends[(index % size as u64) as usize].push(enc_u);
                for r in shard.mirror_ranks(u) {
                    sends[r as usize].push(enc_u);
                    outgoing += 1;
                }
            }
        }
        for list in &mut sends {
            list[0] = outgoing;
        }
        let received = comm.alltoallv_u64(&sends);
        stats.frontier_exchanges += 1;
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::FrontierExchanges, 1);
        }
        // A rank declared dead is neutralized into empty send lists by the
        // fault layer — read its header as 0 so the survivors' sum still
        // terminates the round loop.
        let total: u64 = received
            .iter()
            .map(|list| list.first().copied().unwrap_or(0))
            .sum();
        if total == 0 {
            break;
        }
        incoming.clear();
        for list in &received {
            if let Some(entries) = list.get(1..) {
                incoming.extend_from_slice(entries);
            }
        }
    }
    (member_sends, buckets, work)
}

/// Drains a posted member exchange into its block's home accumulators and
/// pushes the finished samples (sorted, deduplicated) in index order.
fn drain_block<C: Communicator, S: RrrStore>(
    comm: &C,
    block: PendingBlock,
    batch_first: u64,
    stats: &mut ExchangeStats,
    out: &mut S,
) {
    let size = u64::from(comm.size());
    let rank = u64::from(comm.rank());
    stats.overlap_nanos += u64::try_from(block.posted.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let received = comm.wait_exchange(block.handle);
    let mut buckets = block.buckets;
    for list in received {
        for enc in list {
            let (offset, v) = decode(enc);
            buckets[offset].push(v);
        }
    }
    for (offset, mut members) in buckets.into_iter().enumerate() {
        let index = batch_first + (block.block_first + offset) as u64;
        if index % size != rank {
            continue;
        }
        members.sort_unstable();
        members.dedup();
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::SamplesGenerated, 1);
            crate::obs::metrics::observe_rrr_size(members.len() as u64);
        }
        out.push(&members);
    }
}

/// Generates samples `first .. first+count` over the sharded graph,
/// pipelining each block's member routing behind the next block's
/// sampling. This rank's *home* samples (`index % size == rank`) land in
/// `out` in index order — the exact layout the replicated and partitioned
/// engines produce — and the local edge work is returned.
#[allow(clippy::too_many_arguments)]
pub fn sample_batch_sharded<C: Communicator, S: RrrStore>(
    comm: &C,
    shard: &VertexCutShard,
    model: DiffusionModel,
    factory: &StreamFactory,
    first: u64,
    count: usize,
    out: &mut S,
    stats: &mut ExchangeStats,
) -> u64 {
    let mut inflight: Option<PendingBlock> = None;
    let mut work = 0u64;
    let mut block_first = 0usize;
    while block_first < count {
        let block_len = BLOCK_SAMPLES.min(count - block_first);
        let (member_sends, buckets, block_work) = expand_block(
            comm,
            shard,
            model,
            factory,
            first,
            block_first,
            block_len,
            stats,
        );
        work += block_work;
        // Post this block's member routing, then drain the previous
        // block's — which has been in flight for the whole expansion above.
        if let Some(prev) = inflight.take() {
            drain_block(comm, prev, first, stats, out);
        }
        let posted = Instant::now();
        let handle = comm.post_exchange_u64(&member_sends);
        stats.frontier_exchanges += 1;
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::FrontierExchanges, 1);
        }
        inflight = Some(PendingBlock {
            block_first,
            buckets,
            handle,
            posted,
        });
        block_first += block_len;
    }
    if let Some(last) = inflight {
        drain_block(comm, last, first, stats, out);
    }
    if crate::obs::metrics::enabled() {
        crate::obs::metrics::add(crate::obs::metrics::Metric::EdgesExamined, work);
    }
    work
}

/// Full IMM over a vertex-cut sharded graph: block-pipelined cooperative
/// sampling + the standard distributed (dense All-Reduce) seed selection
/// over home samples.
///
/// Each rank needs only its shard for sampling; the full `graph` argument
/// exists because the experiments hold it anyway (a production deployment
/// would load per-rank edge sub-lists directly).
#[must_use]
pub fn imm_sharded<C: Communicator>(comm: &C, graph: &Graph, params: &ImmParams) -> ImmResult {
    imm_sharded_impl(comm, graph, params, RrrCollection::new())
}

/// [`imm_sharded`] over an explicit RRR storage backend (CLI `--rrr-store`
/// / `--rrr-budget`); the seed set is identical at every rank count and for
/// every backend.
#[must_use]
pub fn imm_sharded_with_storage<C: Communicator>(
    comm: &C,
    graph: &Graph,
    params: &ImmParams,
    storage: StorageConfig,
) -> ImmResult {
    if storage.kind == RrrStoreKind::Flat {
        return imm_sharded(comm, graph, params);
    }
    imm_sharded_impl(
        comm,
        graph,
        params,
        DynRrrStore::new(storage, graph.num_vertices()),
    )
}

fn imm_sharded_impl<C: Communicator, S: RrrStore>(
    comm: &C,
    graph: &Graph,
    params: &ImmParams,
    store: S,
) -> ImmResult {
    // Same retry/rank-death shield as the other distributed engines; free
    // on a reliable backend.
    let comm = &RetryComm::with_defaults(comm);
    let n = graph.num_vertices();
    if n < 2 {
        comm.barrier();
        return crate::seq::immopt_sequential(graph, params);
    }
    let k = params.effective_k(n);
    let sizing_k = params.sizing_k(n);
    let schedule = ThetaSchedule::new(
        u64::from(n),
        u64::from(sizing_k),
        params.epsilon,
        params.ell,
    );
    let factory = StreamFactory::new(params.seed);
    let model = params.model;
    // Chunk expansion bypasses the batch samplers' entry validation —
    // re-assert the LT normalization contract on the full graph (every rank
    // holds it here) so un-normalized input fails fast in every profile.
    if model == DiffusionModel::LinearThreshold {
        ripples_diffusion::ensure_lt_normalized(graph);
    }
    let shard = VertexCutShard::extract(graph, comm.rank(), comm.size());
    crate::obs::trace::set_thread_rank(comm.rank());
    if crate::obs::metrics::enabled() {
        crate::obs::metrics::set(
            crate::obs::metrics::Metric::GraphBytes,
            shard.resident_bytes() as u64,
        );
    }

    let mut report = RunReport::new("sharded");
    let comm_before = comm.stats();
    let mut memory = MemoryStats {
        counter_bytes: 2 * n as usize * std::mem::size_of::<u64>(),
        // The honest headline: per-rank graph bytes are the shard's.
        graph_bytes: shard.resident_bytes(),
        ..MemoryStats::default()
    };
    let mut local = store;
    let mut exchange_stats = ExchangeStats::default();
    let mut sample_work: Vec<u64> = Vec::new();
    let mut theta_global: usize = 0;
    let mut select_stats = crate::select::SelectStats::default();

    // Records local counters for one batch: the home samples this rank kept
    // plus the expansion work it performed. Globalized once at the end.
    let record_batch = |report: &mut RunReport, local: &S, old_len: usize, local_work: u64| {
        let new_samples = (local.len() - old_len) as u64;
        report.counters.samples_generated += new_samples;
        report.counters.edges_examined += local_work;
        for slot in old_len..local.len() {
            report.rrr_sizes.record(local.sample_len(slot) as u64);
        }
        report.thread_samples.record(new_samples);
    };

    let mut lb: Option<f64> = None;
    {
        let local_ref = &mut local;
        let work_ref = &mut sample_work;
        let theta_ref = &mut theta_global;
        let memory = &mut memory;
        let lb = &mut lb;
        let select_stats = &mut select_stats;
        let exchange_stats = &mut exchange_stats;
        report.span("EstimateTheta", |report| {
            for x in 1..=schedule.max_rounds() {
                let budget = schedule.round_budget(x);
                if crate::obs::metrics::enabled() {
                    crate::obs::metrics::set(
                        crate::obs::metrics::Metric::ThetaTarget,
                        budget as u64,
                    );
                }
                let stop = report.span(&format!("round-{x}"), |report| {
                    if budget > *theta_ref {
                        let old_len = local_ref.len();
                        let work = report.span("sample", |_| {
                            sample_batch_sharded(
                                comm,
                                &shard,
                                model,
                                &factory,
                                *theta_ref as u64,
                                budget - *theta_ref,
                                local_ref,
                                exchange_stats,
                            )
                        });
                        work_ref.push(work);
                        record_batch(report, local_ref, old_len, work);
                        *theta_ref = budget;
                    }
                    memory.observe_rrr(local_ref.resident_bytes());
                    let (sel_seeds, _, fraction, sstats) = report.span("select", |_| {
                        crate::dist::select_seeds_distributed_public(
                            comm, local_ref, *theta_ref, n, sizing_k,
                        )
                    });
                    select_stats.absorb(sstats);
                    report.counters.theta_rounds += 1;
                    report.counters.select_iterations += sel_seeds.len() as u64;
                    report.counters.round_budgets.push(budget as u64);
                    report.counters.round_coverage.push(fraction);
                    if schedule.round_succeeds(x, fraction) {
                        *lb = Some(schedule.lower_bound(fraction));
                        true
                    } else {
                        false
                    }
                });
                if stop {
                    break;
                }
            }
        });
    }
    let theta = match lb {
        Some(bound) => schedule.final_theta(bound),
        None => schedule.fallback_theta(u64::from(sizing_k)),
    };
    if crate::obs::metrics::enabled() {
        crate::obs::metrics::set(crate::obs::metrics::Metric::ThetaTarget, theta as u64);
    }
    if theta > theta_global {
        let local_ref = &mut local;
        let work_ref = &mut sample_work;
        let exchange_stats = &mut exchange_stats;
        let current = theta_global;
        report.span("Sample", |report| {
            let old_len = local_ref.len();
            let work = sample_batch_sharded(
                comm,
                &shard,
                model,
                &factory,
                current as u64,
                theta - current,
                local_ref,
                exchange_stats,
            );
            work_ref.push(work);
            record_batch(report, local_ref, old_len, work);
        });
        theta_global = theta;
    }
    memory.observe_rrr(local.resident_bytes());

    let (seeds, _, fraction, final_stats) = report.span("SelectSeeds", |_| {
        crate::dist::select_seeds_distributed_public(comm, &local, theta_global, n, k)
    });
    select_stats.absorb(final_stats);
    report.counters.select_iterations += seeds.len() as u64;

    memory.observe_index(select_stats.index_bytes);
    report.counters.rrr_entries = local.total_entries();
    report.counters.rrr_bytes_peak = memory.peak_rrr_bytes as u64;
    report.counters.theta_final = theta_global as u64;
    report.counters.unsorted_pushes = local.unsorted_pushes();
    report.counters.select_entries_touched = select_stats.entries_touched;
    report.counters.index_build_nanos = select_stats.index_build_nanos;
    report.counters.index_bytes_peak = select_stats.index_bytes as u64;
    report.counters.decode_nanos = select_stats.decode_nanos;
    report.counters.spill_bytes_written = local.spill_bytes_written();
    crate::dist::globalize_counters(comm, &mut report);
    crate::dist::globalize_health(comm, &mut report);
    // Sharding headline counters: max-reduce both agrees across ranks
    // (the exchange sequence is lockstep) and neutralizes zombie ranks.
    report.counters.graph_bytes_peak = comm
        .all_reduce_max_f64(shard.resident_bytes() as f64)
        .max(0.0) as u64;
    report.counters.frontier_exchanges = comm
        .all_reduce_max_f64(exchange_stats.frontier_exchanges as f64)
        .max(0.0) as u64;
    report.counters.overlap_nanos = comm
        .all_reduce_max_f64(exchange_stats.overlap_nanos as f64)
        .max(0.0) as u64;
    report.comm = Some(CommCounters::delta(&comm_before, &comm.stats()));
    if crate::obs::trace::enabled() {
        report.trace = Some(crate::obs::trace::gather_trace(comm));
    }

    ImmResult {
        seeds,
        theta: theta_global,
        coverage_fraction: fraction,
        opt_lower_bound: lb,
        timers: report.phase_timers(),
        memory,
        sample_work,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_partitioned::imm_partitioned;
    use ripples_comm::{SelfComm, ThreadWorld};
    use ripples_diffusion::partitioned::vertex_keyed_rrr;
    use ripples_diffusion::rrr::RrrScratch;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    fn graph() -> Graph {
        erdos_renyi(200, 1600, WeightModel::UniformRandom { seed: 7 }, false, 61)
    }

    #[test]
    fn sharded_sampling_matches_reference_bitwise() {
        let g = graph();
        let factory = StreamFactory::new(404);
        let count = 60usize;
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            let mut scratch = RrrScratch::new(g.num_vertices());
            let reference: Vec<Vec<Vertex>> = (0..count as u64)
                .map(|i| vertex_keyed_rrr(&g, model, &factory, i, &mut scratch))
                .collect();
            for size in [1u32, 2, 3, 4] {
                let world = ThreadWorld::new(size);
                let per_rank = world.run(|comm| {
                    let shard = VertexCutShard::extract(&g, comm.rank(), comm.size());
                    let mut out = RrrCollection::new();
                    let mut stats = ExchangeStats::default();
                    sample_batch_sharded(
                        comm, &shard, model, &factory, 0, count, &mut out, &mut stats,
                    );
                    (comm.rank(), out)
                });
                for (rank, collection) in per_rank {
                    let mine: Vec<usize> = (0..count)
                        .filter(|i| i % size as usize == rank as usize)
                        .collect();
                    assert_eq!(collection.len(), mine.len());
                    for (slot, &index) in mine.iter().enumerate() {
                        assert_eq!(
                            collection.get(slot),
                            reference[index].as_slice(),
                            "{model}: size {size}, sample {index}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_pipelines_across_blocks() {
        // More samples than one block forces the post → sample-next →
        // drain pipeline through its steady state.
        let g = graph();
        let factory = StreamFactory::new(11);
        let count = BLOCK_SAMPLES * 2 + 17;
        let model = DiffusionModel::IndependentCascade;
        let mut scratch = RrrScratch::new(g.num_vertices());
        let reference: Vec<Vec<Vertex>> = (0..count as u64)
            .map(|i| vertex_keyed_rrr(&g, model, &factory, i, &mut scratch))
            .collect();
        let world = ThreadWorld::new(2);
        let per_rank = world.run(|comm| {
            let shard = VertexCutShard::extract(&g, comm.rank(), comm.size());
            let mut out = RrrCollection::new();
            let mut stats = ExchangeStats::default();
            sample_batch_sharded(
                comm, &shard, model, &factory, 0, count, &mut out, &mut stats,
            );
            assert!(stats.frontier_exchanges > 3, "pipeline never exchanged");
            (comm.rank(), out)
        });
        for (rank, collection) in per_rank {
            let mine: Vec<usize> = (0..count).filter(|i| i % 2 == rank as usize).collect();
            assert_eq!(collection.len(), mine.len());
            for (slot, &index) in mine.iter().enumerate() {
                assert_eq!(collection.get(slot), reference[index].as_slice());
            }
        }
    }

    #[test]
    fn sharded_imm_matches_partitioned_bitwise() {
        // The two graph-distributed engines flip identical (sample, vertex)
        // coins, so seeds and θ agree exactly at every rank count.
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            let lt = model == DiffusionModel::LinearThreshold;
            let g = erdos_renyi(200, 1600, WeightModel::UniformRandom { seed: 7 }, lt, 61);
            let p = ImmParams::new(5, 0.5, model, 23);
            let anchor = imm_partitioned(&SelfComm::new(), &g, &p);
            let single = imm_sharded(&SelfComm::new(), &g, &p);
            assert_eq!(single.seeds, anchor.seeds, "{model} single rank");
            assert_eq!(single.theta, anchor.theta, "{model} single rank");
            for size in [2u32, 3] {
                let world = ThreadWorld::new(size);
                let results = world.run(|comm| imm_sharded(comm, &g, &p));
                for r in &results {
                    assert_eq!(r.seeds, anchor.seeds, "{model} world {size}");
                    assert_eq!(r.theta, anchor.theta, "{model} world {size}");
                }
            }
        }
    }

    #[test]
    fn storage_backends_match_flat_at_any_rank_count() {
        let g = graph();
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 23);
        let flat = imm_sharded(&SelfComm::new(), &g, &p);
        for kind in [RrrStoreKind::Varint, RrrStoreKind::Spill] {
            let budget = (kind == RrrStoreKind::Spill).then_some(4096);
            let storage = StorageConfig { kind, budget };
            let single = imm_sharded_with_storage(&SelfComm::new(), &g, &p, storage);
            assert_eq!(single.seeds, flat.seeds, "{kind:?} single rank");
            let world = ThreadWorld::new(2);
            let results = world.run(|comm| imm_sharded_with_storage(comm, &g, &p, storage));
            for r in &results {
                assert_eq!(r.seeds, flat.seeds, "{kind:?} world 2");
                assert_eq!(r.theta, flat.theta, "{kind:?} world 2");
            }
        }
    }

    #[test]
    fn per_rank_graph_memory_shrinks_with_ranks() {
        let g = erdos_renyi(200, 4000, WeightModel::UniformRandom { seed: 2 }, false, 8);
        let full = VertexCutShard::extract(&g, 0, 1).resident_bytes();
        let world = ThreadWorld::new(4);
        let p = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade, 2);
        let results = world.run(|comm| imm_sharded(comm, &g, &p));
        for r in results {
            assert!(
                r.memory.graph_bytes * 2 < full,
                "rank holds {} of full {}",
                r.memory.graph_bytes,
                full
            );
            assert!(
                (r.report.counters.graph_bytes_peak as usize) * 2 < full,
                "reported peak {} vs full {}",
                r.report.counters.graph_bytes_peak,
                full
            );
        }
    }

    #[test]
    fn exchange_counters_are_published() {
        let g = graph();
        let p = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade, 5);
        let world = ThreadWorld::new(2);
        let results = world.run(|comm| imm_sharded(comm, &g, &p));
        let first = &results[0];
        assert!(first.report.counters.frontier_exchanges > 0);
        assert!(first.report.counters.graph_bytes_peak > 0);
        let comm = first.report.comm.as_ref().unwrap();
        assert!(comm.exchange_calls > 0, "no exchanges recorded in comm");
        for r in &results {
            assert_eq!(
                r.report.counters.frontier_exchanges, first.report.counters.frontier_exchanges,
                "exchange count diverged across ranks"
            );
        }
    }
}
