//! Parallel IMM influence maximization — the core library of the CLUSTER'19
//! reproduction.
//!
//! Given a directed probabilistic graph `G`, a diffusion model `M ∈ {IC,
//! LT}`, a seed-set size `k`, and an accuracy parameter `ε`, the IMM
//! algorithm of Tang et al. (SIGMOD'15) returns a seed set whose expected
//! influence is a `(1 − 1/e − ε)`-approximation of the optimum with
//! probability ≥ `1 − 1/n^ℓ`. This crate implements the paper's four
//! implementations of it:
//!
//! | Entry point | Paper name | Description |
//! |---|---|---|
//! | [`seq::imm_baseline`] | IMM | Sequential, Tang-style two-direction hypergraph storage |
//! | [`seq::immopt_sequential`] | IMMOPT | Sequential, compact one-direction sorted-list storage (§3.1) |
//! | [`mt::imm_multithreaded`] | IMMmt | Shared-memory parallel: parallel sampling + interval-partitioned seed selection (Algorithm 4) |
//! | [`dist::imm_distributed`] | IMMdist | Distributed: θ partitioned across ranks, All-Reduce counter aggregation (§3.2) |
//!
//! plus the predecessor and comparator algorithms the paper discusses —
//! TIM⁺ ([`tim`]), the Monte-Carlo greedy with CELF lazy evaluation
//! ([`celf`]), degree-discount and other heuristics ([`heuristics`]), and
//! the community-based heuristic of reference \[14\] ([`community`]) — the
//! paper's future-work extension of running IMM over a *partitioned* input
//! graph ([`dist_partitioned`]) and its vertex-cut sharded successor with
//! batched asynchronous frontier exchange ([`dist_sharded`]),
//! instrumentation matching the paper's phase
//! breakdown ([`phases`]), RRR-storage memory accounting ([`memory`]), and
//! the strong-scaling replay model ([`scaling`]) that substitutes for the
//! clusters this reproduction does not have (see DESIGN.md).
//!
//! # Quickstart
//!
//! ```
//! use ripples_core::{ImmParams, maximize_influence};
//! use ripples_graph::{generators::erdos_renyi, WeightModel};
//! use ripples_diffusion::DiffusionModel;
//!
//! let graph = erdos_renyi(200, 1200, WeightModel::Constant(0.1), false, 42);
//! let params = ImmParams::new(10, 0.5, DiffusionModel::IndependentCascade, 1);
//! let result = maximize_influence(&graph, &params);
//! assert_eq!(result.seeds.len(), 10);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod celf;
pub mod community;
pub mod dist;
pub mod dist_partitioned;
pub mod dist_sharded;
pub mod heuristics;
pub mod memory;
pub mod mt;
pub mod obs;
pub mod params;
pub mod phases;
pub mod result;
pub mod sample;
pub mod scaling;
pub mod select;
pub mod seq;
pub mod sketch;
pub mod theta;
pub mod tim;

pub use api::maximize_influence;
pub use memory::MemoryStats;
pub use obs::RunReport;
pub use params::ImmParams;
pub use phases::{Phase, PhaseTimers};
pub use result::ImmResult;
pub use sample::{fused_sampling_is_profitable, SampleEngine, SamplerDispatch};
pub use select::{
    coverage_of, fused_is_profitable, fused_is_profitable_store, select_seeds_store_banned,
    select_with_engine_store, SelectEngine, SelectStats,
};
pub use sketch::{build_resident_sketch, coverage_of_store, ResidentSketchBuild};
