//! Seed selection (Algorithm 4): greedy maximum coverage over the RRR
//! collection, in five interchangeable engines.
//!
//! * [`select_seeds_sequential`] — reference implementation.
//! * [`select_seeds_partitioned`] — the paper's multithreaded engine:
//!   vertex-interval-partitioned counters so no thread ever needs an atomic
//!   update, with binary-searched partition navigation inside each sorted
//!   sample.
//! * [`select_seeds_lazy`] — CELF-style lazy greedy over the counters
//!   (ablation: the paper's related-work trades; coverage is submodular so
//!   stale upper bounds are valid).
//! * [`select_seeds_hypergraph`] — inverted-index-driven selection, the
//!   strategy of Tang et al.'s original code (fast selection, 2× memory).
//! * [`select_seeds_fused`] — the default engine: a borrowed u32-CSR
//!   inverted index fuses the hypergraph engine's O(touched entries) cover
//!   step with the partitioned engine's synchronization-free interval
//!   counters, plus an incrementally maintained per-interval argmax so each
//!   round's winner is a p-way reduction rather than an O(n) scan.
//!
//! All engines use the same deterministic tie-break (highest count, then
//! lowest vertex id), so the greedy engines return *identical* seed sets on
//! identical collections — a property the cross-implementation tests rely
//! on.

use ripples_diffusion::{HyperGraph, RrrCollection, RrrStore, SampleIndex};
use ripples_graph::Vertex;

/// Result of a seed-selection pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// The chosen seeds, in selection order.
    pub seeds: Vec<Vertex>,
    /// Number of RRR sets covered by the seeds.
    pub covered: usize,
    /// `F_R(S)`: fraction of RRR sets covered.
    pub fraction: f64,
    /// Marginal cover counts, aligned with `seeds` (seed `i` covered this
    /// many previously-uncovered sets when chosen).
    pub marginal_gains: Vec<u64>,
}

impl Selection {
    fn finish(seeds: Vec<Vertex>, marginal_gains: Vec<u64>, covered: usize, total: usize) -> Self {
        Selection {
            seeds,
            covered,
            fraction: if total == 0 {
                0.0
            } else {
                covered as f64 / total as f64
            },
            marginal_gains,
        }
    }
}

/// Picks the argmax with deterministic tie-breaking (lowest id wins ties),
/// skipping already-selected vertices. Returns `None` when every vertex is
/// selected.
fn argmax(counters: &[u64], selected: &[bool]) -> Option<Vertex> {
    let mut best: Option<(u64, Vertex)> = None;
    for (v, (&c, &s)) in counters.iter().zip(selected).enumerate() {
        if s {
            continue;
        }
        match best {
            Some((bc, _)) if bc >= c => {}
            _ => best = Some((c, v as Vertex)),
        }
    }
    best.map(|(_, v)| v)
}

/// Reference sequential greedy max-cover.
#[must_use]
pub fn select_seeds_sequential(collection: &RrrCollection, n: u32, k: u32) -> Selection {
    let n_us = n as usize;
    let k = k.min(n);
    let mut counters = vec![0u64; n_us];
    for set in collection.iter() {
        for &v in set {
            counters[v as usize] += 1;
        }
    }
    let mut covered = vec![false; collection.len()];
    let mut selected = vec![false; n_us];
    let mut seeds = Vec::with_capacity(k as usize);
    let mut gains = Vec::with_capacity(k as usize);
    let mut covered_count = 0usize;
    for _ in 0..k {
        let Some(v) = argmax(&counters, &selected) else {
            break;
        };
        selected[v as usize] = true;
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(
                crate::obs::trace::TraceName::SelectStep,
                u64::from(v),
                counters[v as usize],
            );
        }
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::SelectSteps, 1);
            crate::obs::metrics::add(crate::obs::metrics::Metric::SeedsSelected, 1);
        }
        gains.push(counters[v as usize]);
        seeds.push(v);
        for (j, cov) in covered.iter_mut().enumerate() {
            if *cov {
                continue;
            }
            let set = collection.get(j);
            if set.binary_search(&v).is_ok() {
                *cov = true;
                covered_count += 1;
                for &u in set {
                    counters[u as usize] -= 1;
                }
            }
        }
    }
    Selection::finish(seeds, gains, covered_count, collection.len())
}

/// The multithreaded engine of Algorithm 4.
///
/// The vertex space is split into `p` intervals `[vl, vh)`; each interval is
/// owned by exactly one rayon task, which updates only its own counter
/// slice — the paper's synchronization-free design ("the alternative would
/// have necessitated atomic updates"). Within each sample, a task locates
/// its interval with binary search instead of scanning the whole sorted
/// list.
#[must_use]
pub fn select_seeds_partitioned(
    collection: &RrrCollection,
    n: u32,
    k: u32,
    partitions: usize,
) -> Selection {
    let n_us = n as usize;
    let k = k.min(n);
    let p = partitions.clamp(1, n_us.max(1));
    // Interval bounds: vl = n·t/p, vh = n·(t+1)/p (Algorithm 4).
    let bounds: Vec<(Vertex, Vertex)> = (0..p)
        .map(|t| (((n_us * t) / p) as Vertex, ((n_us * (t + 1)) / p) as Vertex))
        .collect();

    let mut counters = vec![0u64; n_us];
    // Disjoint mutable counter slices, one per interval owner.
    let mut slices: Vec<&mut [u64]> = Vec::with_capacity(p);
    {
        let mut rest: &mut [u64] = &mut counters;
        for (t, &(vl, vh)) in bounds.iter().enumerate() {
            let len = (vh - vl) as usize;
            let (head, tail) = rest.split_at_mut(len);
            slices.push(head);
            rest = tail;
            let _ = t;
        }
    }

    // Counting pass: each owner counts its interval across all samples,
    // walking only the binary-searched sub-range of each sorted sample.
    rayon::scope(|s| {
        for (slice, &(vl, vh)) in slices.iter_mut().zip(&bounds) {
            let collection = &collection;
            s.spawn(move |_| {
                for j in 0..collection.len() {
                    for &u in collection.partition_slice(j, vl, vh) {
                        slice[(u - vl) as usize] += 1;
                    }
                }
            });
        }
    });

    let mut covered = vec![false; collection.len()];
    let mut selected = vec![false; n_us];
    let mut seeds = Vec::with_capacity(k as usize);
    let mut gains = Vec::with_capacity(k as usize);
    let mut covered_count = 0usize;

    for _ in 0..k {
        let Some(v) = argmax(&counters, &selected) else {
            break;
        };
        selected[v as usize] = true;
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(
                crate::obs::trace::TraceName::SelectStep,
                u64::from(v),
                counters[v as usize],
            );
        }
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::SelectSteps, 1);
            crate::obs::metrics::add(crate::obs::metrics::Metric::SeedsSelected, 1);
        }
        gains.push(counters[v as usize]);
        seeds.push(v);

        // Re-derive the disjoint slices for the decrement pass.
        let mut slices: Vec<&mut [u64]> = Vec::with_capacity(p);
        {
            let mut rest: &mut [u64] = &mut counters;
            for &(vl, vh) in &bounds {
                let len = (vh - vl) as usize;
                let (head, tail) = rest.split_at_mut(len);
                slices.push(head);
                rest = tail;
            }
        }
        // Each owner independently identifies the samples containing v
        // (binary search per alive sample) and decrements its interval.
        // Owner 0 additionally reports which samples became covered.
        let covered_ref = &covered;
        let newly: Vec<usize> = rayon::scope(|s| {
            let (first_slice, rest_slices) = slices.split_first_mut().expect("p >= 1");
            for (slice, &(vl, vh)) in rest_slices.iter_mut().zip(&bounds[1..]) {
                let collection = &collection;
                s.spawn(move |_| {
                    for (j, &cov) in covered_ref.iter().enumerate() {
                        if cov {
                            continue;
                        }
                        if collection.get(j).binary_search(&v).is_ok() {
                            for &u in collection.partition_slice(j, vl, vh) {
                                slice[(u - vl) as usize] -= 1;
                            }
                        }
                    }
                });
            }
            let (vl, vh) = bounds[0];
            let mut newly = Vec::new();
            for (j, &cov) in covered_ref.iter().enumerate() {
                if cov {
                    continue;
                }
                if collection.get(j).binary_search(&v).is_ok() {
                    newly.push(j);
                    for &u in collection.partition_slice(j, vl, vh) {
                        first_slice[(u - vl) as usize] -= 1;
                    }
                }
            }
            newly
        });
        covered_count += newly.len();
        for j in newly {
            covered[j] = true;
        }
    }
    Selection::finish(seeds, gains, covered_count, collection.len())
}

/// CELF-style lazy greedy on the cover counters.
///
/// Coverage is submodular, so a vertex's stale counter is an upper bound on
/// its current marginal gain; the lazy queue only recomputes the head.
/// Returns the same *coverage quality* as the eager engines (exact greedy),
/// though tie order may differ.
#[must_use]
pub fn select_seeds_lazy(collection: &RrrCollection, n: u32, k: u32) -> Selection {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n_us = n as usize;
    let k = k.min(n);
    let mut counters = vec![0u64; n_us];
    for set in collection.iter() {
        for &v in set {
            counters[v as usize] += 1;
        }
    }
    let mut covered = vec![false; collection.len()];
    // Heap of (count, Reverse(id), round_validated).
    let mut heap: BinaryHeap<(u64, Reverse<Vertex>, u32)> = (0..n)
        .map(|v| (counters[v as usize], Reverse(v), 0u32))
        .collect();
    let mut seeds = Vec::with_capacity(k as usize);
    let mut gains = Vec::with_capacity(k as usize);
    let mut covered_count = 0usize;
    let mut round = 0u32;
    while seeds.len() < k as usize {
        let Some((count, Reverse(v), validated)) = heap.pop() else {
            break;
        };
        if validated < round {
            // Stale: recompute v's true marginal gain and reinsert.
            let fresh = collection
                .iter()
                .enumerate()
                .filter(|(j, set)| !covered[*j] && set.binary_search(&v).is_ok())
                .count() as u64;
            heap.push((fresh, Reverse(v), round));
            continue;
        }
        // Fresh entry at the top: greedy-optimal pick.
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(
                crate::obs::trace::TraceName::SelectStep,
                u64::from(v),
                count,
            );
        }
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::SelectSteps, 1);
            crate::obs::metrics::add(crate::obs::metrics::Metric::SeedsSelected, 1);
        }
        seeds.push(v);
        gains.push(count);
        round += 1;
        for (j, set) in collection.iter().enumerate() {
            if !covered[j] && set.binary_search(&v).is_ok() {
                covered[j] = true;
                covered_count += 1;
            }
        }
    }
    Selection::finish(seeds, gains, covered_count, collection.len())
}

/// Inverted-index selection over the two-direction hypergraph layout (the
/// Tang-style baseline): covering a seed's samples and decrementing their
/// member counters costs O(touched entries) instead of a scan over all
/// samples.
#[must_use]
pub fn select_seeds_hypergraph(hyper: &HyperGraph, n: u32, k: u32) -> Selection {
    let n_us = n as usize;
    let k = k.min(n);
    let mut counters: Vec<u64> = (0..n).map(|v| hyper.degree(v) as u64).collect();
    let mut covered = vec![false; hyper.len()];
    let mut selected = vec![false; n_us];
    let mut seeds = Vec::with_capacity(k as usize);
    let mut gains = Vec::with_capacity(k as usize);
    let mut covered_count = 0usize;
    for _ in 0..k {
        let Some(v) = argmax(&counters, &selected) else {
            break;
        };
        selected[v as usize] = true;
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(
                crate::obs::trace::TraceName::SelectStep,
                u64::from(v),
                counters[v as usize],
            );
        }
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::SelectSteps, 1);
            crate::obs::metrics::add(crate::obs::metrics::Metric::SeedsSelected, 1);
        }
        gains.push(counters[v as usize]);
        seeds.push(v);
        for &sid in hyper.samples_containing(v) {
            let j = sid as usize;
            if covered[j] {
                continue;
            }
            covered[j] = true;
            covered_count += 1;
            for &u in hyper.sets().get(j) {
                counters[u as usize] -= 1;
            }
        }
    }
    Selection::finish(seeds, gains, covered_count, hyper.len())
}

/// Per-pass statistics of an index-driven selection engine, reported
/// separately from [`Selection`] so the cross-engine equality tests keep
/// comparing pure selection results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectStats {
    /// Wall time spent building the inverted index, nanoseconds.
    pub index_build_nanos: u64,
    /// Reserved bytes of the inverted index.
    pub index_bytes: usize,
    /// Index/collection entries touched across all cover+decrement steps.
    pub entries_touched: u64,
    /// Wall time spent decoding compressed RRR blocks during selection,
    /// nanoseconds (0 on the flat store, whose slices need no decoding).
    pub decode_nanos: u64,
}

impl SelectStats {
    /// Accumulates another pass's statistics (peak for bytes, sums for the
    /// monotonic quantities).
    pub fn absorb(&mut self, other: SelectStats) {
        self.index_build_nanos += other.index_build_nanos;
        self.index_bytes = self.index_bytes.max(other.index_bytes);
        self.entries_touched += other.entries_touched;
        self.decode_nanos += other.decode_nanos;
    }
}

/// Rescans one interval's counter slice for its champion: the unselected
/// vertex with the highest count, lowest id on ties (`selected` is indexed
/// absolutely; the slice covers vertices `vl..vl + slice.len()`).
fn slice_champion(slice: &[u64], selected: &[bool], vl: Vertex) -> Option<(u64, Vertex)> {
    let mut best: Option<(u64, Vertex)> = None;
    for (i, &c) in slice.iter().enumerate() {
        if selected[vl as usize + i] {
            continue;
        }
        match best {
            Some((bc, _)) if bc >= c => {}
            _ => best = Some((c, vl + i as Vertex)),
        }
    }
    best
}

/// The fused selection engine — the crate's default for shared-memory runs.
///
/// Fuses the two fast strategies that were previously mutually exclusive:
///
/// * **O(touched entries) cover step** from the hypergraph engine, driven
///   by a borrowed [`SampleIndex`] (u32-CSR, built here by a parallel
///   counting sort) instead of the 2×-memory [`HyperGraph`] copy;
/// * **interval-partitioned counter ownership** from the partitioned
///   engine — each of `partitions` owners decrements only its own slice,
///   so there are no atomics;
///
/// and adds an incrementally maintained per-interval argmax: an owner
/// rescans its interval only when its champion was selected or decremented
/// (counters never increase, so an untouched champion stays optimal), which
/// makes each round's winner a p-way reduction instead of an O(n) scan.
///
/// Returns bitwise the same [`Selection`] as [`select_seeds_sequential`].
#[must_use]
pub fn select_seeds_fused(
    collection: &RrrCollection,
    n: u32,
    k: u32,
    partitions: usize,
) -> Selection {
    select_seeds_fused_with_stats(collection, n, k, partitions).0
}

/// [`select_seeds_fused`] plus its [`SelectStats`].
#[must_use]
pub fn select_seeds_fused_with_stats(
    collection: &RrrCollection,
    n: u32,
    k: u32,
    partitions: usize,
) -> (Selection, SelectStats) {
    let n_us = n as usize;
    let k = k.min(n);
    let p = partitions.clamp(1, n_us.max(1));

    let t0 = std::time::Instant::now();
    let index = SampleIndex::build(collection, n, p);
    let mut stats = SelectStats {
        index_build_nanos: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        index_bytes: index.resident_bytes(),
        ..SelectStats::default()
    };
    if crate::obs::trace::enabled() {
        crate::obs::trace::complete(
            crate::obs::trace::TraceName::IndexBuild,
            t0,
            index.total_entries() as u64,
            p as u64,
        );
    }

    let bounds: Vec<(Vertex, Vertex)> = (0..p)
        .map(|t| (((n_us * t) / p) as Vertex, ((n_us * (t + 1)) / p) as Vertex))
        .collect();
    let mut counters: Vec<u64> = (0..n).map(|v| index.degree(v)).collect();
    let mut selected = vec![false; n_us];
    let mut covered = vec![false; collection.len()];
    // Invariant: each interval's champion carries its *current* count and
    // beats every other unselected vertex of the interval on
    // (count, lowest id).
    let mut champions: Vec<Option<(u64, Vertex)>> = {
        let mut rest: &[u64] = &counters;
        bounds
            .iter()
            .map(|&(vl, vh)| {
                let (slice, tail) = rest.split_at((vh - vl) as usize);
                rest = tail;
                slice_champion(slice, &selected, vl)
            })
            .collect()
    };

    let mut seeds = Vec::with_capacity(k as usize);
    let mut gains = Vec::with_capacity(k as usize);
    let mut covered_count = 0usize;
    for _ in 0..k {
        // p-way reduction over interval champions; ascending interval order
        // plus the strict comparison reproduces argmax's lowest-id
        // tie-break globally.
        let mut best: Option<(u64, Vertex)> = None;
        for &ch in &champions {
            let Some((c, v)) = ch else { continue };
            match best {
                Some((bc, bv)) if bc > c || (bc == c && bv < v) => {}
                _ => best = Some((c, v)),
            }
        }
        let Some((gain, v)) = best else {
            break;
        };
        selected[v as usize] = true;
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(crate::obs::trace::TraceName::SelectStep, u64::from(v), gain);
        }
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::SelectSteps, 1);
            crate::obs::metrics::add(crate::obs::metrics::Metric::SeedsSelected, 1);
        }
        seeds.push(v);
        gains.push(gain);

        // Cover step: walk only the samples containing v.
        let mut newly: Vec<u32> = Vec::new();
        let mut touched = 0u64;
        for &sid in index.samples_containing(v) {
            let j = sid as usize;
            if covered[j] {
                continue;
            }
            covered[j] = true;
            newly.push(sid);
            touched += collection.get(j).len() as u64;
        }
        debug_assert_eq!(gain as usize, newly.len(), "stale champion count");
        covered_count += newly.len();
        stats.entries_touched += touched;
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::SelectEntriesTouched, touched);
        }
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(
                crate::obs::trace::TraceName::SelectTouched,
                touched,
                u64::from(v),
            );
        }

        // Decrement step: each owner updates its interval over the newly
        // covered samples and rescans its champion only when invalidated
        // (champion selected or decremented). Counters never increase, so
        // an untouched champion cannot be overtaken.
        let decrement_one =
            |champ: &mut Option<(u64, Vertex)>, slice: &mut [u64], vl: Vertex, vh: Vertex| {
                let mut dirty = matches!(*champ, Some((_, cv)) if cv == v);
                for &sid in &newly {
                    for &u in collection.partition_slice(sid as usize, vl, vh) {
                        slice[(u - vl) as usize] -= 1;
                        if matches!(*champ, Some((_, cv)) if cv == u) {
                            dirty = true;
                        }
                    }
                }
                if dirty {
                    *champ = slice_champion(slice, &selected, vl);
                }
            };
        if p == 1 {
            let (vl, vh) = bounds[0];
            decrement_one(&mut champions[0], &mut counters, vl, vh);
        } else {
            let mut rest: &mut [u64] = &mut counters;
            rayon::scope(|s| {
                for (champ, &(vl, vh)) in champions.iter_mut().zip(&bounds) {
                    let (slice, tail) = rest.split_at_mut((vh - vl) as usize);
                    rest = tail;
                    let decrement_one = &decrement_one;
                    s.spawn(move |_| decrement_one(champ, slice, vl, vh));
                }
            });
        }
    }
    (
        Selection::finish(seeds, gains, covered_count, collection.len()),
        stats,
    )
}

/// Number of RRR sets in `collection` covered by `seeds` (sets containing at
/// least one seed). Engine-independent by construction, so the correctness
/// oracle uses it to score any engine's seed set on any (possibly relabeled)
/// collection without trusting that engine's own bookkeeping.
#[must_use]
pub fn coverage_of(collection: &RrrCollection, seeds: &[Vertex]) -> usize {
    collection
        .iter()
        .filter(|set| seeds.iter().any(|s| set.binary_search(s).is_ok()))
        .count()
}

/// Cost-model check for the fused engine: building and walking the u32-CSR
/// index costs O(E) (E = total RRR entries), while the partitioned engine's
/// per-seed purge scans cost O(k·θ·(log₂s̄+1)) binary-search steps
/// (s̄ = E/θ, the mean set size). Dividing both by θ, the index pays for
/// itself when `k·(log₂s̄+1) ≥ 2·s̄`: always for the small sets realistic
/// cascades produce (s̄ ≲ 50), only at very large `k` for dense synthetic
/// graphs whose samples span a large fraction of the vertex set.
#[must_use]
pub fn fused_is_profitable(collection: &RrrCollection, k: u32) -> bool {
    let theta = collection.len() as u64;
    if theta == 0 {
        return false;
    }
    let sbar = (collection.total_entries() as u64 / theta).max(1);
    u64::from(k) * u64::from(sbar.ilog2() + 1) >= 2 * sbar
}

/// Which greedy max-cover engine a run uses for its selection passes.
/// All variants except `Lazy` return identical [`Selection`]s; `Lazy` may
/// reorder tied seeds but preserves coverage and marginal gains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectEngine {
    /// Cost-model dispatch (the default): [`SelectEngine::Fused`] when
    /// [`fused_is_profitable`], else [`SelectEngine::Partitioned`].
    Auto,
    /// [`select_seeds_sequential`] — the O(k·θ) reference scan.
    Sequential,
    /// [`select_seeds_partitioned`] — interval counters, full purge scans.
    Partitioned,
    /// [`select_seeds_lazy`] — CELF lazy greedy.
    Lazy,
    /// [`select_seeds_hypergraph`] — Tang-style two-direction layout
    /// (copies the collection to build the [`HyperGraph`]).
    Hypergraph,
    /// [`select_seeds_fused`] — u32-CSR index + interval counters +
    /// incremental argmax.
    Fused,
}

impl SelectEngine {
    /// Parses a CLI tag (`--select ENGINE`).
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "auto" => Some(SelectEngine::Auto),
            "sequential" | "seq" => Some(SelectEngine::Sequential),
            "partitioned" | "part" => Some(SelectEngine::Partitioned),
            "lazy" | "celf" => Some(SelectEngine::Lazy),
            "hypergraph" | "hyper" => Some(SelectEngine::Hypergraph),
            "fused" => Some(SelectEngine::Fused),
            _ => None,
        }
    }

    /// Canonical tag, the inverse of [`SelectEngine::from_tag`].
    #[must_use]
    pub const fn tag(self) -> &'static str {
        match self {
            SelectEngine::Auto => "auto",
            SelectEngine::Sequential => "sequential",
            SelectEngine::Partitioned => "partitioned",
            SelectEngine::Lazy => "lazy",
            SelectEngine::Hypergraph => "hypergraph",
            SelectEngine::Fused => "fused",
        }
    }
}

/// Runs one selection pass with `engine`. `partitions` is consumed by the
/// partitioned and fused engines and ignored by the serial ones. Engines
/// without an index report default (zero) [`SelectStats`]; the hypergraph
/// engine charges its two-direction build to the stats so CLI comparisons
/// see its true cost.
#[must_use]
pub fn select_with_engine(
    engine: SelectEngine,
    collection: &RrrCollection,
    n: u32,
    k: u32,
    partitions: usize,
) -> (Selection, SelectStats) {
    match engine {
        SelectEngine::Auto => {
            let resolved = if fused_is_profitable(collection, k) {
                SelectEngine::Fused
            } else {
                SelectEngine::Partitioned
            };
            select_with_engine(resolved, collection, n, k, partitions)
        }
        SelectEngine::Sequential => (
            select_seeds_sequential(collection, n, k),
            SelectStats::default(),
        ),
        SelectEngine::Partitioned => (
            select_seeds_partitioned(collection, n, k, partitions),
            SelectStats::default(),
        ),
        SelectEngine::Lazy => (select_seeds_lazy(collection, n, k), SelectStats::default()),
        SelectEngine::Hypergraph => {
            let t0 = std::time::Instant::now();
            let hyper = HyperGraph::build(collection.clone(), n);
            let stats = SelectStats {
                index_build_nanos: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                index_bytes: hyper
                    .resident_bytes()
                    .saturating_sub(collection.resident_bytes()),
                ..SelectStats::default()
            };
            (select_seeds_hypergraph(&hyper, n, k), stats)
        }
        SelectEngine::Fused => select_seeds_fused_with_stats(collection, n, k, partitions),
    }
}

/// Cost model of [`fused_is_profitable`] evaluated on any [`RrrStore`]
/// (the store exposes `len` and `total_entries` without decoding).
#[must_use]
pub fn fused_is_profitable_store<S: RrrStore>(store: &S, k: u32) -> bool {
    let theta = store.len() as u64;
    if theta == 0 {
        return false;
    }
    let sbar = (store.total_entries() / theta).max(1);
    u64::from(k) * u64::from(sbar.ilog2() + 1) >= 2 * sbar
}

/// Greedy max-cover directly over a compressed [`RrrStore`]: a streaming
/// counting pass, then per-seed sweeps that probe each alive sample with
/// [`RrrStore::contains`] (early-exit on the sorted order) and decode only
/// the samples the seed actually covers. The strategy of
/// [`select_seeds_sequential`] with decode-on-touch instead of slices —
/// the same counters and the same `(count, lowest id)` tie-break, so the
/// returned [`Selection`] is bitwise identical to the flat reference.
#[must_use]
pub fn select_seeds_store_direct<S: RrrStore>(
    store: &S,
    n: u32,
    k: u32,
) -> (Selection, SelectStats) {
    let n_us = n as usize;
    let k = k.min(n);
    let mut stats = SelectStats::default();
    let mut counters = vec![0u64; n_us];
    let t0 = std::time::Instant::now();
    for j in 0..store.len() {
        store.for_each_vertex(j, |v| counters[v as usize] += 1);
    }
    stats.decode_nanos += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let mut covered = vec![false; store.len()];
    let mut selected = vec![false; n_us];
    let mut seeds = Vec::with_capacity(k as usize);
    let mut gains = Vec::with_capacity(k as usize);
    let mut covered_count = 0usize;
    for _ in 0..k {
        let Some(v) = argmax(&counters, &selected) else {
            break;
        };
        selected[v as usize] = true;
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(
                crate::obs::trace::TraceName::SelectStep,
                u64::from(v),
                counters[v as usize],
            );
        }
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::SelectSteps, 1);
            crate::obs::metrics::add(crate::obs::metrics::Metric::SeedsSelected, 1);
        }
        gains.push(counters[v as usize]);
        seeds.push(v);
        let t0 = std::time::Instant::now();
        let mut touched = 0u64;
        for (j, cov) in covered.iter_mut().enumerate() {
            if *cov {
                continue;
            }
            if store.contains(j, v) {
                *cov = true;
                covered_count += 1;
                touched += store.sample_len(j) as u64;
                store.for_each_vertex(j, |u| counters[u as usize] -= 1);
            }
        }
        stats.decode_nanos += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        stats.entries_touched += touched;
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::SelectEntriesTouched, touched);
        }
    }
    (
        Selection::finish(seeds, gains, covered_count, store.len()),
        stats,
    )
}

/// [`select_seeds_store_direct`] with a pre-banned vertex set: banned
/// vertices are marked selected before the first greedy round, so they are
/// never candidates and never cover a sample. Because banned vertices also
/// never have their samples purged *through them* (only a chosen seed
/// covers samples), the greedy trajectory over the non-banned vertices is
/// exactly the trajectory of a plain selection on the vertex-filtered
/// sketch (every banned id deleted from every RRR set) — the
/// `topk_excluding` query primitive of the resident serve mode. Returned
/// `seeds` never contain a banned vertex, so fewer than `k` seeds come
/// back when bans exhaust the vertex set.
///
/// # Panics
///
/// Panics if `banned.len() != n as usize`.
#[must_use]
pub fn select_seeds_store_banned<S: RrrStore>(
    store: &S,
    n: u32,
    k: u32,
    banned: &[bool],
) -> (Selection, SelectStats) {
    let n_us = n as usize;
    assert_eq!(banned.len(), n_us, "banned mask must cover all vertices");
    let k = k.min(n);
    let mut stats = SelectStats::default();
    let mut counters = vec![0u64; n_us];
    let t0 = std::time::Instant::now();
    for j in 0..store.len() {
        store.for_each_vertex(j, |v| counters[v as usize] += 1);
    }
    stats.decode_nanos += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let mut covered = vec![false; store.len()];
    let mut selected = banned.to_vec();
    let mut seeds = Vec::with_capacity(k as usize);
    let mut gains = Vec::with_capacity(k as usize);
    let mut covered_count = 0usize;
    for _ in 0..k {
        let Some(v) = argmax(&counters, &selected) else {
            break;
        };
        selected[v as usize] = true;
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(
                crate::obs::trace::TraceName::SelectStep,
                u64::from(v),
                counters[v as usize],
            );
        }
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::SelectSteps, 1);
            crate::obs::metrics::add(crate::obs::metrics::Metric::SeedsSelected, 1);
        }
        gains.push(counters[v as usize]);
        seeds.push(v);
        let t0 = std::time::Instant::now();
        let mut touched = 0u64;
        for (j, cov) in covered.iter_mut().enumerate() {
            if *cov {
                continue;
            }
            if store.contains(j, v) {
                *cov = true;
                covered_count += 1;
                touched += store.sample_len(j) as u64;
                store.for_each_vertex(j, |u| counters[u as usize] -= 1);
            }
        }
        stats.decode_nanos += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        stats.entries_touched += touched;
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::add(crate::obs::metrics::Metric::SelectEntriesTouched, touched);
        }
    }
    (
        Selection::finish(seeds, gains, covered_count, store.len()),
        stats,
    )
}

/// Index-driven greedy max-cover over a compressed [`RrrStore`]: streams
/// the store through [`RrrStore::with_sample_index`] (a gap-varint
/// inverted index; [`DynRrrStore`] caches it across rounds so only samples
/// new since the last selection are absorbed), takes initial counters from
/// its degrees, covers each seed's samples by streaming the index list,
/// and decodes each newly covered sample exactly once for the counter
/// decrements — the hypergraph/fused engines' O(touched entries) strategy
/// without ever materializing the flat collection. Same tie-break,
/// bitwise-identical [`Selection`].
///
/// [`DynRrrStore`]: ripples_diffusion::DynRrrStore
#[must_use]
pub fn select_seeds_store_indexed<S: RrrStore>(
    store: &S,
    n: u32,
    k: u32,
) -> (Selection, SelectStats) {
    let n_us = n as usize;
    let k = k.min(n);
    let t0 = std::time::Instant::now();
    store.with_sample_index(n, |index| {
        let mut stats = SelectStats {
            index_build_nanos: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            index_bytes: index.resident_bytes(),
            ..SelectStats::default()
        };
        if crate::obs::trace::enabled() {
            crate::obs::trace::complete(
                crate::obs::trace::TraceName::IndexBuild,
                t0,
                store.total_entries(),
                1,
            );
        }
        let mut counters: Vec<u64> = (0..n).map(|v| u64::from(index.degree(v))).collect();
        let mut covered = vec![false; store.len()];
        let mut selected = vec![false; n_us];
        let mut seeds = Vec::with_capacity(k as usize);
        let mut gains = Vec::with_capacity(k as usize);
        let mut covered_count = 0usize;
        for _ in 0..k {
            let Some(v) = argmax(&counters, &selected) else {
                break;
            };
            selected[v as usize] = true;
            if crate::obs::trace::enabled() {
                crate::obs::trace::mark(
                    crate::obs::trace::TraceName::SelectStep,
                    u64::from(v),
                    counters[v as usize],
                );
            }
            if crate::obs::metrics::enabled() {
                crate::obs::metrics::add(crate::obs::metrics::Metric::SelectSteps, 1);
                crate::obs::metrics::add(crate::obs::metrics::Metric::SeedsSelected, 1);
            }
            gains.push(counters[v as usize]);
            seeds.push(v);
            // Cover step over the seed's index list; decode-on-touch decrement.
            let t0 = std::time::Instant::now();
            let mut newly: Vec<usize> = Vec::new();
            index.for_each_sample(v, |j| {
                if !covered[j] {
                    covered[j] = true;
                    newly.push(j);
                }
            });
            let mut touched = 0u64;
            for &j in &newly {
                touched += store.sample_len(j) as u64;
                store.for_each_vertex(j, |u| counters[u as usize] -= 1);
            }
            stats.decode_nanos += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            covered_count += newly.len();
            stats.entries_touched += touched;
            if crate::obs::metrics::enabled() {
                crate::obs::metrics::add(
                    crate::obs::metrics::Metric::SelectEntriesTouched,
                    touched,
                );
            }
            if crate::obs::trace::enabled() {
                crate::obs::trace::mark(
                    crate::obs::trace::TraceName::SelectTouched,
                    touched,
                    u64::from(v),
                );
            }
        }
        (
            Selection::finish(seeds, gains, covered_count, store.len()),
            stats,
        )
    })
}

/// Storage-aware engine dispatch. A flat store takes the exact
/// [`select_with_engine`] path (same code, same bitwise guarantees); a
/// compressed store maps each engine onto its decode-on-touch equivalent —
/// index-driven for the index engines (`fused`/`hypergraph`, and `auto`
/// when the [`fused_is_profitable_store`] cost model says the index pays
/// for itself), direct sweeps otherwise. Every eager engine returns the
/// same [`Selection`] for the same samples regardless of the backend; the
/// lazy engine maps to the direct strategy on compressed stores (eager
/// greedy — same seeds as the other eager engines, which on ties may
/// differ from flat `lazy`'s reordering).
#[must_use]
pub fn select_with_engine_store<S: RrrStore>(
    engine: SelectEngine,
    store: &S,
    n: u32,
    k: u32,
    partitions: usize,
) -> (Selection, SelectStats) {
    if let Some(flat) = store.as_flat() {
        return select_with_engine(engine, flat, n, k, partitions);
    }
    match engine {
        SelectEngine::Fused | SelectEngine::Hypergraph => select_seeds_store_indexed(store, n, k),
        SelectEngine::Auto => {
            if fused_is_profitable_store(store, k) {
                select_seeds_store_indexed(store, n, k)
            } else {
                select_seeds_store_direct(store, n, k)
            }
        }
        SelectEngine::Sequential | SelectEngine::Partitioned | SelectEngine::Lazy => {
            select_seeds_store_direct(store, n, k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection(sets: &[&[Vertex]]) -> RrrCollection {
        let mut c = RrrCollection::new();
        for s in sets {
            c.push(s);
        }
        c
    }

    #[test]
    fn picks_the_obvious_cover() {
        // Vertex 2 covers 3 sets; nothing else covers more than 1.
        let c = collection(&[&[0, 2], &[2, 5], &[2], &[7]]);
        let sel = select_seeds_sequential(&c, 8, 1);
        assert_eq!(sel.seeds, vec![2]);
        assert_eq!(sel.covered, 3);
        assert!((sel.fraction - 0.75).abs() < 1e-12);
        assert_eq!(sel.marginal_gains, vec![3]);
    }

    #[test]
    fn second_seed_accounts_for_purged_sets() {
        // After choosing 2, the set {2,5} is covered: 5's residual gain is 0
        // while 7 still covers one.
        let c = collection(&[&[0, 2], &[2, 5], &[2], &[7]]);
        let sel = select_seeds_sequential(&c, 8, 2);
        assert_eq!(sel.seeds, vec![2, 7]);
        assert_eq!(sel.covered, 4);
        assert_eq!(sel.marginal_gains, vec![3, 1]);
    }

    #[test]
    fn ties_break_to_lowest_id() {
        let c = collection(&[&[3], &[5]]);
        let sel = select_seeds_sequential(&c, 8, 1);
        assert_eq!(sel.seeds, vec![3]);
    }

    #[test]
    fn all_engines_agree() {
        // A messier instance exercising purge bookkeeping.
        let c = collection(&[
            &[0, 1, 2],
            &[1, 2, 3],
            &[2, 3, 4],
            &[4, 5],
            &[0, 5],
            &[6],
            &[1, 6],
            &[2],
        ]);
        let n = 8;
        let k = 4;
        let seq = select_seeds_sequential(&c, n, k);
        for p in [1, 2, 3, 5, 8] {
            let par = select_seeds_partitioned(&c, n, k, p);
            assert_eq!(par, seq, "partitioned(p={p}) diverged");
        }
        let hyper = HyperGraph::build(c.clone(), n);
        let hg = select_seeds_hypergraph(&hyper, n, k);
        assert_eq!(hg, seq, "hypergraph engine diverged");
        for p in [1, 2, 3, 5, 8] {
            let (fused, stats) = select_seeds_fused_with_stats(&c, n, k, p);
            assert_eq!(fused, seq, "fused(p={p}) diverged");
            assert!(stats.index_bytes > 0);
            assert!(stats.entries_touched > 0);
        }
        let lazy = select_seeds_lazy(&c, n, k);
        assert_eq!(lazy.covered, seq.covered, "lazy engine lost coverage");
        assert_eq!(lazy.marginal_gains, seq.marginal_gains);
    }

    #[test]
    fn fused_on_empty_collection_matches_sequential() {
        let c = RrrCollection::new();
        let seq = select_seeds_sequential(&c, 5, 2);
        for p in [1, 3] {
            assert_eq!(select_seeds_fused(&c, 5, 2, p), seq);
        }
    }

    #[test]
    fn fused_with_more_partitions_than_vertices() {
        let c = collection(&[&[0], &[1], &[0, 1]]);
        assert_eq!(
            select_seeds_fused(&c, 2, 2, 64),
            select_seeds_sequential(&c, 2, 2)
        );
    }

    #[test]
    fn engine_dispatch_is_consistent() {
        let c = collection(&[&[0, 1, 2], &[1, 2, 3], &[2, 3, 4], &[4, 5], &[0, 5]]);
        let (seq, seq_stats) = select_with_engine(SelectEngine::Sequential, &c, 6, 3, 4);
        for engine in [
            SelectEngine::Auto,
            SelectEngine::Partitioned,
            SelectEngine::Hypergraph,
            SelectEngine::Fused,
        ] {
            let (sel, _) = select_with_engine(engine, &c, 6, 3, 4);
            assert_eq!(sel, seq, "{} diverged", engine.tag());
        }
        assert_eq!(seq_stats, SelectStats::default());
        let (lazy, _) = select_with_engine(SelectEngine::Lazy, &c, 6, 3, 4);
        assert_eq!(lazy.marginal_gains, seq.marginal_gains);
    }

    #[test]
    fn cost_model_prefers_fused_for_sparse_sets() {
        // Empty collection: nothing to index, never profitable.
        assert!(!fused_is_profitable(&RrrCollection::new(), 100));
        // s̄ = 2: k·(log₂2+1) = 2k ≥ 4 already at k = 2.
        let sparse = collection(&[&[0, 1], &[2, 3], &[4, 5]]);
        assert!(fused_is_profitable(&sparse, 2));
        assert!(!fused_is_profitable(&sparse, 1));
        // s̄ = 1024: needs k·11 ≥ 2048, i.e. k ≥ 187.
        let mut dense = RrrCollection::new();
        let big: Vec<Vertex> = (0..1024).collect();
        dense.push(&big);
        assert!(!fused_is_profitable(&dense, 100));
        assert!(fused_is_profitable(&dense, 200));
    }

    #[test]
    fn engine_tags_round_trip() {
        for engine in [
            SelectEngine::Auto,
            SelectEngine::Sequential,
            SelectEngine::Partitioned,
            SelectEngine::Lazy,
            SelectEngine::Hypergraph,
            SelectEngine::Fused,
        ] {
            assert_eq!(SelectEngine::from_tag(engine.tag()), Some(engine));
        }
        assert_eq!(SelectEngine::from_tag("celf"), Some(SelectEngine::Lazy));
        assert!(SelectEngine::from_tag("bogus").is_none());
    }

    #[test]
    fn select_stats_absorb_peaks_and_sums() {
        let mut a = SelectStats {
            index_build_nanos: 5,
            index_bytes: 100,
            entries_touched: 7,
            decode_nanos: 11,
        };
        a.absorb(SelectStats {
            index_build_nanos: 3,
            index_bytes: 40,
            entries_touched: 2,
            decode_nanos: 4,
        });
        assert_eq!(a.index_build_nanos, 8);
        assert_eq!(a.index_bytes, 100);
        assert_eq!(a.entries_touched, 9);
        assert_eq!(a.decode_nanos, 15);
    }

    #[test]
    fn coverage_of_matches_selection_bookkeeping() {
        let c = collection(&[&[0, 1, 2], &[1, 2, 3], &[2, 3, 4], &[4, 5], &[0, 5]]);
        let sel = select_seeds_sequential(&c, 6, 3);
        assert_eq!(coverage_of(&c, &sel.seeds), sel.covered);
        assert_eq!(coverage_of(&c, &[]), 0);
        assert_eq!(coverage_of(&RrrCollection::new(), &[1, 2]), 0);
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let c = collection(&[&[0], &[1]]);
        let sel = select_seeds_sequential(&c, 2, 100);
        assert_eq!(sel.seeds.len(), 2);
        assert_eq!(sel.covered, 2);
    }

    #[test]
    fn empty_collection_selects_arbitrary_vertices() {
        let c = RrrCollection::new();
        let sel = select_seeds_sequential(&c, 5, 2);
        // No coverage signal: greedy falls back to lowest ids.
        assert_eq!(sel.seeds, vec![0, 1]);
        assert_eq!(sel.covered, 0);
        assert_eq!(sel.fraction, 0.0);
    }

    #[test]
    fn greedy_matches_brute_force_on_small_instance() {
        // Exhaustively verify the (1−1/e) greedy against optimal cover for
        // k=2 on a small universe.
        let c = collection(&[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[0, 4], &[1], &[3]]);
        let n = 5u32;
        let greedy = select_seeds_sequential(&c, n, 2);
        // Brute-force optimum.
        let mut best = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                let covered = c
                    .iter()
                    .filter(|s| s.binary_search(&a).is_ok() || s.binary_search(&b).is_ok())
                    .count();
                best = best.max(covered);
            }
        }
        assert!(
            greedy.covered as f64 >= (1.0 - 1.0 / std::f64::consts::E) * best as f64,
            "greedy {} below guarantee vs optimal {best}",
            greedy.covered
        );
    }

    #[test]
    fn partitioned_with_more_partitions_than_vertices() {
        let c = collection(&[&[0], &[1], &[0, 1]]);
        let sel = select_seeds_partitioned(&c, 2, 2, 64);
        let seq = select_seeds_sequential(&c, 2, 2);
        assert_eq!(sel, seq);
    }

    #[test]
    fn store_engines_match_flat_reference() {
        use ripples_diffusion::{DynRrrStore, RrrStoreKind, StorageConfig};
        let sets: Vec<Vec<Vertex>> = vec![
            vec![0, 1, 2],
            vec![1, 2, 3],
            vec![2, 3, 4],
            vec![4, 5],
            vec![0, 5],
            vec![6],
            vec![1, 6],
            vec![2],
            vec![],
            vec![7],
        ];
        let n = 8u32;
        let k = 4u32;
        let mut flat = RrrCollection::new();
        for s in &sets {
            flat.push(s);
        }
        let seq = select_seeds_sequential(&flat, n, k);
        for kind in [
            RrrStoreKind::Flat,
            RrrStoreKind::Varint,
            RrrStoreKind::Bitpack,
            RrrStoreKind::Spill,
        ] {
            let mut store = DynRrrStore::new(
                StorageConfig {
                    kind,
                    budget: Some(16),
                },
                n,
            );
            for s in &sets {
                store.push(s);
            }
            for engine in [
                SelectEngine::Auto,
                SelectEngine::Sequential,
                SelectEngine::Partitioned,
                SelectEngine::Hypergraph,
                SelectEngine::Fused,
            ] {
                let (sel, _) = select_with_engine_store(engine, &store, n, k, 3);
                assert_eq!(sel, seq, "{:?}/{} diverged", kind, engine.tag());
            }
        }
    }

    #[test]
    fn store_direct_and_indexed_agree_and_report_stats() {
        use ripples_diffusion::CompressedRrrCollection;
        let mut c = CompressedRrrCollection::new();
        for base in 0..50u32 {
            let mut s: Vec<Vertex> = (0..6).map(|i| (base * 13 + i * 7) % 40).collect();
            s.sort_unstable();
            s.dedup();
            c.push(&s);
        }
        let (direct, dstats) = select_seeds_store_direct(&c, 40, 5);
        let (indexed, istats) = select_seeds_store_indexed(&c, 40, 5);
        assert_eq!(direct, indexed);
        assert_eq!(dstats.index_bytes, 0);
        assert!(istats.index_bytes > 0);
        assert_eq!(dstats.entries_touched, istats.entries_touched);
    }

    #[test]
    fn banned_selection_equals_selection_on_filtered_sketch() {
        let sets: Vec<Vec<Vertex>> = vec![
            vec![0, 1, 2],
            vec![1, 2, 3],
            vec![2, 3, 4],
            vec![4, 5],
            vec![0, 5],
            vec![1, 6],
            vec![2],
        ];
        let n = 7u32;
        let k = 3u32;
        let mut full = RrrCollection::new();
        for s in &sets {
            full.push(s);
        }
        let mut banned = vec![false; n as usize];
        banned[2] = true;
        banned[5] = true;
        let (masked, _) = select_seeds_store_banned(&full, n, k, &banned);
        // Reference: delete banned ids from every set, select normally.
        let mut filtered = RrrCollection::new();
        for s in &sets {
            let kept: Vec<Vertex> = s.iter().copied().filter(|&v| !banned[v as usize]).collect();
            filtered.push(&kept);
        }
        let plain = select_seeds_sequential(&filtered, n, k);
        assert_eq!(masked.seeds, plain.seeds);
        assert_eq!(masked.marginal_gains, plain.marginal_gains);
        assert_eq!(masked.covered, plain.covered);
        assert!(masked.seeds.iter().all(|&v| !banned[v as usize]));
    }

    #[test]
    fn banned_everything_returns_no_seeds() {
        let c = collection(&[&[0, 1], &[1, 2]]);
        let (sel, _) = select_seeds_store_banned(&c, 3, 2, &[true, true, true]);
        assert!(sel.seeds.is_empty());
        assert_eq!(sel.covered, 0);
    }

    #[test]
    fn lazy_on_empty_heap() {
        let c = RrrCollection::new();
        let sel = select_seeds_lazy(&c, 3, 2);
        assert_eq!(sel.seeds.len(), 2);
        assert_eq!(sel.covered, 0);
    }
}
