//! Seed selection (Algorithm 4): greedy maximum coverage over the RRR
//! collection, in four interchangeable engines.
//!
//! * [`select_seeds_sequential`] — reference implementation.
//! * [`select_seeds_partitioned`] — the paper's multithreaded engine:
//!   vertex-interval-partitioned counters so no thread ever needs an atomic
//!   update, with binary-searched partition navigation inside each sorted
//!   sample.
//! * [`select_seeds_lazy`] — CELF-style lazy greedy over the counters
//!   (ablation: the paper's related-work trades; coverage is submodular so
//!   stale upper bounds are valid).
//! * [`select_seeds_hypergraph`] — inverted-index-driven selection, the
//!   strategy of Tang et al.'s original code (fast selection, 2× memory).
//!
//! All engines use the same deterministic tie-break (highest count, then
//! lowest vertex id), so the greedy engines return *identical* seed sets on
//! identical collections — a property the cross-implementation tests rely
//! on.

use ripples_diffusion::{HyperGraph, RrrCollection};
use ripples_graph::Vertex;

/// Result of a seed-selection pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// The chosen seeds, in selection order.
    pub seeds: Vec<Vertex>,
    /// Number of RRR sets covered by the seeds.
    pub covered: usize,
    /// `F_R(S)`: fraction of RRR sets covered.
    pub fraction: f64,
    /// Marginal cover counts, aligned with `seeds` (seed `i` covered this
    /// many previously-uncovered sets when chosen).
    pub marginal_gains: Vec<u64>,
}

impl Selection {
    fn finish(seeds: Vec<Vertex>, marginal_gains: Vec<u64>, covered: usize, total: usize) -> Self {
        Selection {
            seeds,
            covered,
            fraction: if total == 0 {
                0.0
            } else {
                covered as f64 / total as f64
            },
            marginal_gains,
        }
    }
}

/// Picks the argmax with deterministic tie-breaking (lowest id wins ties),
/// skipping already-selected vertices. Returns `None` when every vertex is
/// selected.
fn argmax(counters: &[u64], selected: &[bool]) -> Option<Vertex> {
    let mut best: Option<(u64, Vertex)> = None;
    for (v, (&c, &s)) in counters.iter().zip(selected).enumerate() {
        if s {
            continue;
        }
        match best {
            Some((bc, _)) if bc >= c => {}
            _ => best = Some((c, v as Vertex)),
        }
    }
    best.map(|(_, v)| v)
}

/// Reference sequential greedy max-cover.
#[must_use]
pub fn select_seeds_sequential(collection: &RrrCollection, n: u32, k: u32) -> Selection {
    let n_us = n as usize;
    let k = k.min(n);
    let mut counters = vec![0u64; n_us];
    for set in collection.iter() {
        for &v in set {
            counters[v as usize] += 1;
        }
    }
    let mut covered = vec![false; collection.len()];
    let mut selected = vec![false; n_us];
    let mut seeds = Vec::with_capacity(k as usize);
    let mut gains = Vec::with_capacity(k as usize);
    let mut covered_count = 0usize;
    for _ in 0..k {
        let Some(v) = argmax(&counters, &selected) else {
            break;
        };
        selected[v as usize] = true;
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(
                crate::obs::trace::TraceName::SelectStep,
                u64::from(v),
                counters[v as usize],
            );
        }
        gains.push(counters[v as usize]);
        seeds.push(v);
        for (j, cov) in covered.iter_mut().enumerate() {
            if *cov {
                continue;
            }
            let set = collection.get(j);
            if set.binary_search(&v).is_ok() {
                *cov = true;
                covered_count += 1;
                for &u in set {
                    counters[u as usize] -= 1;
                }
            }
        }
    }
    Selection::finish(seeds, gains, covered_count, collection.len())
}

/// The multithreaded engine of Algorithm 4.
///
/// The vertex space is split into `p` intervals `[vl, vh)`; each interval is
/// owned by exactly one rayon task, which updates only its own counter
/// slice — the paper's synchronization-free design ("the alternative would
/// have necessitated atomic updates"). Within each sample, a task locates
/// its interval with binary search instead of scanning the whole sorted
/// list.
#[must_use]
pub fn select_seeds_partitioned(
    collection: &RrrCollection,
    n: u32,
    k: u32,
    partitions: usize,
) -> Selection {
    let n_us = n as usize;
    let k = k.min(n);
    let p = partitions.clamp(1, n_us.max(1));
    // Interval bounds: vl = n·t/p, vh = n·(t+1)/p (Algorithm 4).
    let bounds: Vec<(Vertex, Vertex)> = (0..p)
        .map(|t| (((n_us * t) / p) as Vertex, ((n_us * (t + 1)) / p) as Vertex))
        .collect();

    let mut counters = vec![0u64; n_us];
    // Disjoint mutable counter slices, one per interval owner.
    let mut slices: Vec<&mut [u64]> = Vec::with_capacity(p);
    {
        let mut rest: &mut [u64] = &mut counters;
        for (t, &(vl, vh)) in bounds.iter().enumerate() {
            let len = (vh - vl) as usize;
            let (head, tail) = rest.split_at_mut(len);
            slices.push(head);
            rest = tail;
            let _ = t;
        }
    }

    // Counting pass: each owner counts its interval across all samples,
    // walking only the binary-searched sub-range of each sorted sample.
    rayon::scope(|s| {
        for (slice, &(vl, vh)) in slices.iter_mut().zip(&bounds) {
            let collection = &collection;
            s.spawn(move |_| {
                for j in 0..collection.len() {
                    for &u in collection.partition_slice(j, vl, vh) {
                        slice[(u - vl) as usize] += 1;
                    }
                }
            });
        }
    });

    let mut covered = vec![false; collection.len()];
    let mut selected = vec![false; n_us];
    let mut seeds = Vec::with_capacity(k as usize);
    let mut gains = Vec::with_capacity(k as usize);
    let mut covered_count = 0usize;

    for _ in 0..k {
        let Some(v) = argmax(&counters, &selected) else {
            break;
        };
        selected[v as usize] = true;
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(
                crate::obs::trace::TraceName::SelectStep,
                u64::from(v),
                counters[v as usize],
            );
        }
        gains.push(counters[v as usize]);
        seeds.push(v);

        // Re-derive the disjoint slices for the decrement pass.
        let mut slices: Vec<&mut [u64]> = Vec::with_capacity(p);
        {
            let mut rest: &mut [u64] = &mut counters;
            for &(vl, vh) in &bounds {
                let len = (vh - vl) as usize;
                let (head, tail) = rest.split_at_mut(len);
                slices.push(head);
                rest = tail;
            }
        }
        // Each owner independently identifies the samples containing v
        // (binary search per alive sample) and decrements its interval.
        // Owner 0 additionally reports which samples became covered.
        let covered_ref = &covered;
        let newly: Vec<usize> = rayon::scope(|s| {
            let (first_slice, rest_slices) = slices.split_first_mut().expect("p >= 1");
            for (slice, &(vl, vh)) in rest_slices.iter_mut().zip(&bounds[1..]) {
                let collection = &collection;
                s.spawn(move |_| {
                    for (j, &cov) in covered_ref.iter().enumerate() {
                        if cov {
                            continue;
                        }
                        if collection.get(j).binary_search(&v).is_ok() {
                            for &u in collection.partition_slice(j, vl, vh) {
                                slice[(u - vl) as usize] -= 1;
                            }
                        }
                    }
                });
            }
            let (vl, vh) = bounds[0];
            let mut newly = Vec::new();
            for (j, &cov) in covered_ref.iter().enumerate() {
                if cov {
                    continue;
                }
                if collection.get(j).binary_search(&v).is_ok() {
                    newly.push(j);
                    for &u in collection.partition_slice(j, vl, vh) {
                        first_slice[(u - vl) as usize] -= 1;
                    }
                }
            }
            newly
        });
        covered_count += newly.len();
        for j in newly {
            covered[j] = true;
        }
    }
    Selection::finish(seeds, gains, covered_count, collection.len())
}

/// CELF-style lazy greedy on the cover counters.
///
/// Coverage is submodular, so a vertex's stale counter is an upper bound on
/// its current marginal gain; the lazy queue only recomputes the head.
/// Returns the same *coverage quality* as the eager engines (exact greedy),
/// though tie order may differ.
#[must_use]
pub fn select_seeds_lazy(collection: &RrrCollection, n: u32, k: u32) -> Selection {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n_us = n as usize;
    let k = k.min(n);
    let mut counters = vec![0u64; n_us];
    for set in collection.iter() {
        for &v in set {
            counters[v as usize] += 1;
        }
    }
    let mut covered = vec![false; collection.len()];
    // Heap of (count, Reverse(id), round_validated).
    let mut heap: BinaryHeap<(u64, Reverse<Vertex>, u32)> = (0..n)
        .map(|v| (counters[v as usize], Reverse(v), 0u32))
        .collect();
    let mut seeds = Vec::with_capacity(k as usize);
    let mut gains = Vec::with_capacity(k as usize);
    let mut covered_count = 0usize;
    let mut round = 0u32;
    while seeds.len() < k as usize {
        let Some((count, Reverse(v), validated)) = heap.pop() else {
            break;
        };
        if validated < round {
            // Stale: recompute v's true marginal gain and reinsert.
            let fresh = collection
                .iter()
                .enumerate()
                .filter(|(j, set)| !covered[*j] && set.binary_search(&v).is_ok())
                .count() as u64;
            heap.push((fresh, Reverse(v), round));
            continue;
        }
        // Fresh entry at the top: greedy-optimal pick.
        seeds.push(v);
        gains.push(count);
        round += 1;
        for (j, set) in collection.iter().enumerate() {
            if !covered[j] && set.binary_search(&v).is_ok() {
                covered[j] = true;
                covered_count += 1;
            }
        }
    }
    Selection::finish(seeds, gains, covered_count, collection.len())
}

/// Inverted-index selection over the two-direction hypergraph layout (the
/// Tang-style baseline): covering a seed's samples and decrementing their
/// member counters costs O(touched entries) instead of a scan over all
/// samples.
#[must_use]
pub fn select_seeds_hypergraph(hyper: &HyperGraph, n: u32, k: u32) -> Selection {
    let n_us = n as usize;
    let k = k.min(n);
    let mut counters: Vec<u64> = (0..n).map(|v| hyper.degree(v) as u64).collect();
    let mut covered = vec![false; hyper.len()];
    let mut selected = vec![false; n_us];
    let mut seeds = Vec::with_capacity(k as usize);
    let mut gains = Vec::with_capacity(k as usize);
    let mut covered_count = 0usize;
    for _ in 0..k {
        let Some(v) = argmax(&counters, &selected) else {
            break;
        };
        selected[v as usize] = true;
        gains.push(counters[v as usize]);
        seeds.push(v);
        for &sid in hyper.samples_containing(v) {
            let j = sid as usize;
            if covered[j] {
                continue;
            }
            covered[j] = true;
            covered_count += 1;
            for &u in hyper.sets().get(j) {
                counters[u as usize] -= 1;
            }
        }
    }
    Selection::finish(seeds, gains, covered_count, hyper.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection(sets: &[&[Vertex]]) -> RrrCollection {
        let mut c = RrrCollection::new();
        for s in sets {
            c.push(s);
        }
        c
    }

    #[test]
    fn picks_the_obvious_cover() {
        // Vertex 2 covers 3 sets; nothing else covers more than 1.
        let c = collection(&[&[0, 2], &[2, 5], &[2], &[7]]);
        let sel = select_seeds_sequential(&c, 8, 1);
        assert_eq!(sel.seeds, vec![2]);
        assert_eq!(sel.covered, 3);
        assert!((sel.fraction - 0.75).abs() < 1e-12);
        assert_eq!(sel.marginal_gains, vec![3]);
    }

    #[test]
    fn second_seed_accounts_for_purged_sets() {
        // After choosing 2, the set {2,5} is covered: 5's residual gain is 0
        // while 7 still covers one.
        let c = collection(&[&[0, 2], &[2, 5], &[2], &[7]]);
        let sel = select_seeds_sequential(&c, 8, 2);
        assert_eq!(sel.seeds, vec![2, 7]);
        assert_eq!(sel.covered, 4);
        assert_eq!(sel.marginal_gains, vec![3, 1]);
    }

    #[test]
    fn ties_break_to_lowest_id() {
        let c = collection(&[&[3], &[5]]);
        let sel = select_seeds_sequential(&c, 8, 1);
        assert_eq!(sel.seeds, vec![3]);
    }

    #[test]
    fn all_engines_agree() {
        // A messier instance exercising purge bookkeeping.
        let c = collection(&[
            &[0, 1, 2],
            &[1, 2, 3],
            &[2, 3, 4],
            &[4, 5],
            &[0, 5],
            &[6],
            &[1, 6],
            &[2],
        ]);
        let n = 8;
        let k = 4;
        let seq = select_seeds_sequential(&c, n, k);
        for p in [1, 2, 3, 5, 8] {
            let par = select_seeds_partitioned(&c, n, k, p);
            assert_eq!(par, seq, "partitioned(p={p}) diverged");
        }
        let hyper = HyperGraph::build(c.clone(), n);
        let hg = select_seeds_hypergraph(&hyper, n, k);
        assert_eq!(hg, seq, "hypergraph engine diverged");
        let lazy = select_seeds_lazy(&c, n, k);
        assert_eq!(lazy.covered, seq.covered, "lazy engine lost coverage");
        assert_eq!(lazy.marginal_gains, seq.marginal_gains);
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let c = collection(&[&[0], &[1]]);
        let sel = select_seeds_sequential(&c, 2, 100);
        assert_eq!(sel.seeds.len(), 2);
        assert_eq!(sel.covered, 2);
    }

    #[test]
    fn empty_collection_selects_arbitrary_vertices() {
        let c = RrrCollection::new();
        let sel = select_seeds_sequential(&c, 5, 2);
        // No coverage signal: greedy falls back to lowest ids.
        assert_eq!(sel.seeds, vec![0, 1]);
        assert_eq!(sel.covered, 0);
        assert_eq!(sel.fraction, 0.0);
    }

    #[test]
    fn greedy_matches_brute_force_on_small_instance() {
        // Exhaustively verify the (1−1/e) greedy against optimal cover for
        // k=2 on a small universe.
        let c = collection(&[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[0, 4], &[1], &[3]]);
        let n = 5u32;
        let greedy = select_seeds_sequential(&c, n, 2);
        // Brute-force optimum.
        let mut best = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                let covered = c
                    .iter()
                    .filter(|s| s.binary_search(&a).is_ok() || s.binary_search(&b).is_ok())
                    .count();
                best = best.max(covered);
            }
        }
        assert!(
            greedy.covered as f64 >= (1.0 - 1.0 / std::f64::consts::E) * best as f64,
            "greedy {} below guarantee vs optimal {best}",
            greedy.covered
        );
    }

    #[test]
    fn partitioned_with_more_partitions_than_vertices() {
        let c = collection(&[&[0], &[1], &[0, 1]]);
        let sel = select_seeds_partitioned(&c, 2, 2, 64);
        let seq = select_seeds_sequential(&c, 2, 2);
        assert_eq!(sel, seq);
    }

    #[test]
    fn lazy_on_empty_heap() {
        let c = RrrCollection::new();
        let sel = select_seeds_lazy(&c, 3, 2);
        assert_eq!(sel.seeds.len(), 2);
        assert_eq!(sel.covered, 0);
    }
}
