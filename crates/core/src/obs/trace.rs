//! Structured event tracing for IMM runs.
//!
//! This module re-exports the [`ripples_trace`] tracer (see that crate for
//! the ring-buffer design and the Chrome Trace Event export) and adds the
//! one piece that needs the communicator: gathering per-rank timelines into
//! a single rank-tagged [`Trace`].
//!
//! # Lifecycle
//!
//! 1. The harness (CLI `--trace`, or a test) calls [`start`] before the run.
//! 2. The engines, the sampler, and the communicator backends record events
//!    whenever [`enabled`] — every [`super::RunReport`] span exit becomes a
//!    Chrome `X` event, every parallel sampling block a `sample-chunk`
//!    span, every greedy selection step a `select-step` mark, and every
//!    collective a span carrying its payload bytes.
//! 3. At run end the engine attaches the merged timeline to
//!    `RunReport::trace`: shared-memory engines via [`collect_all`] (one
//!    track per worker thread), distributed engines via [`gather_trace`]
//!    (one process per rank, gathered over the communicator).
//! 4. The harness calls [`stop`] and exports with [`Trace::to_chrome_json`].

pub use ripples_trace::{
    collect_all, complete, counter, enabled, encode_thread_events, mark, ns_since_epoch,
    set_thread_rank, start, stop, validate_json, EventKind, Trace, TraceEvent, TraceName,
    TraceRecord, CAPACITY_ENV, DEFAULT_CAPACITY,
};

use ripples_comm::Communicator;

/// Gathers every rank's main-thread events over `comm` into one merged,
/// rank-tagged trace. A collective: every rank of the world must call it,
/// and every rank returns the same merged trace.
///
/// Each rank contributes the events recorded on its calling (rank) thread —
/// engine spans, selection marks, collectives, and the sampling chunk it
/// executed itself. Sampling chunks executed on short-lived worker threads
/// stay in the process-local ring pool (visible to [`collect_all`], used by
/// the shared-memory engines) rather than being attributed to a rank.
pub fn gather_trace<C: Communicator + ?Sized>(comm: &C) -> Trace {
    let mine = encode_thread_events();
    let buffers = comm.all_gather_u64_list(&mine);
    Trace::from_rank_buffers(&buffers)
}

/// Maps a [`super::RunReport`] span label to its trace catalog entry plus a
/// numeric argument (the round index for `round-N` spans, else 0).
#[must_use]
pub fn span_trace_name(label: &str) -> (TraceName, u64) {
    if let Some(idx) = label.strip_prefix("round-") {
        return (TraceName::Round, idx.parse().unwrap_or(0));
    }
    let name = match label {
        "EstimateTheta" => TraceName::EstimateTheta,
        "Sample" | "sample" => TraceName::SampleBatch,
        "SelectSeeds" => TraceName::SelectSeeds,
        "select" => TraceName::Select,
        _ => TraceName::Generic,
    };
    (name, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_labels_map_to_catalog() {
        assert_eq!(
            span_trace_name("EstimateTheta"),
            (TraceName::EstimateTheta, 0)
        );
        assert_eq!(span_trace_name("round-7"), (TraceName::Round, 7));
        assert_eq!(span_trace_name("round-x"), (TraceName::Round, 0));
        assert_eq!(span_trace_name("sample"), (TraceName::SampleBatch, 0));
        assert_eq!(span_trace_name("Sample"), (TraceName::SampleBatch, 0));
        assert_eq!(span_trace_name("select"), (TraceName::Select, 0));
        assert_eq!(span_trace_name("SelectSeeds"), (TraceName::SelectSeeds, 0));
        assert_eq!(span_trace_name("warmup"), (TraceName::Generic, 0));
    }
}
