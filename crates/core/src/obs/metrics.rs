//! Live metrics for IMM runs.
//!
//! Re-exports the [`ripples_metrics`] registry (see that crate for the
//! lock-free cell design, the background sampler, and the JSON/Prometheus
//! exports) and adds the engine-side glue: mapping [`super::RunReport`]
//! span labels to the [`Metric::Phase`] / [`Metric::Round`] gauges, so
//! every engine that narrates itself through the span tree gets live
//! phase telemetry for free — the same single-hook-point trick
//! `obs::trace` uses for span events.

pub use ripples_metrics::{
    add, disable, enable, enabled, get, observe_rrr_size, phase, prometheus_text, pulse, set,
    set_max, snapshot, start_sampler, start_sampler_with_cap, Kind, Metric, ProgressFn, Sample,
    SamplerHandle, TimeSeries, HIST_BUCKETS, SCHEMA,
};

/// The phase gauge value a span label implies, if any (`round-N` spans
/// imply none — they refine [`phase::ESTIMATE_THETA`] via the round
/// gauge instead).
#[must_use]
pub fn phase_of_label(label: &str) -> Option<u64> {
    match label {
        "EstimateTheta" => Some(phase::ESTIMATE_THETA),
        "Sample" | "sample" => Some(phase::SAMPLE),
        "SelectSeeds" | "select" => Some(phase::SELECT),
        "Simulate" | "simulate" => Some(phase::SIMULATE),
        _ => None,
    }
}

/// The martingale round a `round-N` span label names, if any.
#[must_use]
pub fn round_of_label(label: &str) -> Option<u64> {
    label
        .strip_prefix("round-")
        .map(|idx| idx.parse().unwrap_or(0))
}

/// Updates the phase/round gauges on span entry and pulses the sampler
/// so the boundary lands a snapshot even at coarse cadences.
pub fn on_enter(label: &str) {
    let mut changed = false;
    if let Some(p) = phase_of_label(label) {
        set(Metric::Phase, p);
        changed = true;
    }
    if let Some(r) = round_of_label(label) {
        set(Metric::Round, r);
        changed = true;
    }
    if changed {
        pulse();
    }
}

/// Re-derives the phase/round gauges from the still-open span labels
/// after an exit, innermost first — the innermost phase-mapped span wins,
/// and leaving the last one resets the gauges to idle.
pub fn on_exit<'a>(open_innermost_first: impl Iterator<Item = &'a str> + Clone) {
    let phase_now = open_innermost_first
        .clone()
        .find_map(phase_of_label)
        .unwrap_or(phase::IDLE);
    let round_now = open_innermost_first
        .into_iter()
        .find_map(round_of_label)
        .unwrap_or(0);
    set(Metric::Phase, phase_now);
    set(Metric::Round, round_now);
    pulse();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_map_to_phases() {
        assert_eq!(phase_of_label("EstimateTheta"), Some(phase::ESTIMATE_THETA));
        assert_eq!(phase_of_label("sample"), Some(phase::SAMPLE));
        assert_eq!(phase_of_label("Sample"), Some(phase::SAMPLE));
        assert_eq!(phase_of_label("select"), Some(phase::SELECT));
        assert_eq!(phase_of_label("SelectSeeds"), Some(phase::SELECT));
        assert_eq!(phase_of_label("round-3"), None);
        assert_eq!(round_of_label("round-3"), Some(3));
        assert_eq!(round_of_label("sample"), None);
    }
}
