//! RRR-storage memory accounting.
//!
//! The paper instruments peak memory with Valgrind's Massif; the quantity
//! Table 2 actually compares is the footprint of the RRR-set storage, which
//! differs between the two layouts (hypergraph vs compact). We count those
//! bytes exactly from inside the library, which isolates the layout effect
//! from allocator and instrumentation noise (see DESIGN.md §1).

/// Byte counts of the data structures an IMM run keeps alive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Peak bytes of RRR-set storage (both directions for the hypergraph
    /// baseline, one direction for IMMOPT and the parallel versions).
    pub peak_rrr_bytes: usize,
    /// Peak bytes of the selection inverted index (the fused engine's
    /// u32-CSR [`ripples_diffusion::SampleIndex`], or the hypergraph
    /// engine's second direction); 0 for scan-based selection.
    pub peak_index_bytes: usize,
    /// Bytes of the per-vertex counter array used in seed selection.
    pub counter_bytes: usize,
    /// Bytes of the input graph CSR (context; identical across variants).
    pub graph_bytes: usize,
}

impl MemoryStats {
    /// Total of all tracked byte counts.
    #[must_use]
    pub fn total(&self) -> usize {
        self.peak_rrr_bytes + self.peak_index_bytes + self.counter_bytes + self.graph_bytes
    }

    /// Records a new RRR-storage observation, keeping the peak. When
    /// tracing is enabled, the sample also lands on the event timeline as
    /// an `rrr-bytes` counter track.
    pub fn observe_rrr(&mut self, bytes: usize) {
        self.peak_rrr_bytes = self.peak_rrr_bytes.max(bytes);
        if crate::obs::trace::enabled() {
            crate::obs::trace::counter(crate::obs::trace::TraceName::RrrBytes, bytes as u64);
        }
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::set_max(crate::obs::metrics::Metric::RrrBytes, bytes as u64);
        }
    }

    /// Records a selection-index observation, keeping the peak.
    pub fn observe_index(&mut self, bytes: usize) {
        self.peak_index_bytes = self.peak_index_bytes.max(bytes);
        if crate::obs::metrics::enabled() {
            crate::obs::metrics::set_max(crate::obs::metrics::Metric::IndexBytes, bytes as u64);
        }
    }

    /// Formats a byte count as mebibytes (the paper's Table 2 unit).
    #[must_use]
    pub fn mib(bytes: usize) -> f64 {
        bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_keeps_peak() {
        let mut m = MemoryStats::default();
        m.observe_rrr(100);
        m.observe_rrr(50);
        m.observe_rrr(200);
        m.observe_rrr(10);
        assert_eq!(m.peak_rrr_bytes, 200);
    }

    #[test]
    fn totals() {
        let m = MemoryStats {
            peak_rrr_bytes: 10,
            peak_index_bytes: 5,
            counter_bytes: 20,
            graph_bytes: 30,
        };
        assert_eq!(m.total(), 65);
    }

    #[test]
    fn observe_index_keeps_peak() {
        let mut m = MemoryStats::default();
        m.observe_index(40);
        m.observe_index(25);
        assert_eq!(m.peak_index_bytes, 40);
    }

    #[test]
    fn mib_conversion() {
        assert!((MemoryStats::mib(1024 * 1024) - 1.0).abs() < 1e-12);
        assert!((MemoryStats::mib(0)).abs() < 1e-12);
    }
}
