//! The multithreaded (shared-memory) IMM implementation — "IMMmt" in
//! Table 3, the subject of Figures 5 and 6.
//!
//! Parallelism enters in the two places §3.1 identifies:
//!
//! * **Sampling**: each RRR set is generated independently
//!   (`ripples_diffusion::sample_batch`, a rayon parallel map with
//!   per-thread scratch reuse).
//! * **Seed selection**: the vertex space is partitioned into per-thread
//!   intervals so counter updates need no synchronization, and sorted
//!   samples are navigated by binary search
//!   (`crate::select::select_seeds_partitioned`).
//!
//! The thread count is explicit so the strong-scaling sweep (Figures 5–6)
//! can pin it; pass 0 to use all available parallelism.

use crate::params::ImmParams;
use crate::result::ImmResult;
use crate::sample::{SampleEngine, SamplerDispatch};
use crate::select::{select_with_engine, SelectEngine};
use crate::seq::run_imm_compact;
use ripples_graph::Graph;
use ripples_rng::StreamFactory;

/// Runs IMM with `threads` worker threads (0 = rayon default), selecting
/// seeds with the cost-model dispatch ([`SelectEngine::Auto`]): the fused
/// index-driven engine when its O(E) build amortizes over the greedy
/// passes, the interval-partitioned engine otherwise — partitioned one
/// interval per worker either way.
///
/// Given identical `params`, returns the *same seed set* as
/// [`crate::seq::immopt_sequential`] at any thread count: sample content is
/// keyed by global sample index and the greedy engines share a
/// deterministic tie-break.
#[must_use]
pub fn imm_multithreaded(graph: &Graph, params: &ImmParams, threads: usize) -> ImmResult {
    imm_multithreaded_with_select(graph, params, threads, SelectEngine::Auto)
}

/// [`imm_multithreaded`] with an explicit selection engine (CLI
/// `--select`); `Partitioned` recovers the previous default.
#[must_use]
pub fn imm_multithreaded_with_select(
    graph: &Graph,
    params: &ImmParams,
    threads: usize,
    select: SelectEngine,
) -> ImmResult {
    imm_multithreaded_with_engines(graph, params, threads, select, SampleEngine::Reference)
}

/// [`imm_multithreaded`] with explicit selection *and* sampling engines
/// (CLI `--select` / `--sample`). With [`SampleEngine::Reference`] this is
/// bitwise [`imm_multithreaded_with_select`]; the fused sampler draws a
/// different RNG schedule, so its output is statistically (not bitwise)
/// equivalent — see the `sampler-equivalence` oracle check. Every sampling
/// kernel's layout stays deterministic across thread counts.
#[must_use]
pub fn imm_multithreaded_with_engines(
    graph: &Graph,
    params: &ImmParams,
    threads: usize,
    select: SelectEngine,
    sample: SampleEngine,
) -> ImmResult {
    let factory = StreamFactory::new(params.seed);
    let run = || {
        let effective_threads = rayon::current_num_threads();
        let mut dispatch = SamplerDispatch::new(graph, params.model, &factory, sample, true);
        run_imm_compact(
            "mt",
            graph,
            params,
            |first, count, out| dispatch.sample_batch(first, count, out),
            |collection, n, k| select_with_engine(select, collection, n, k, effective_threads),
        )
    };
    if threads == 0 {
        run()
    } else {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build rayon pool");
        pool.install(run)
    }
}

/// [`imm_multithreaded_with_engines`] over an explicit RRR storage backend
/// (CLI `--rrr-store` / `--rrr-budget`). The flat backend takes exactly the
/// [`imm_multithreaded_with_engines`] code paths; compressed backends fill
/// through the same arena-merge samplers and select through the
/// decode-on-touch engines, so the seed set is identical at every thread
/// count and for every backend.
#[must_use]
pub fn imm_multithreaded_with_storage(
    graph: &Graph,
    params: &ImmParams,
    threads: usize,
    select: SelectEngine,
    sample: SampleEngine,
    storage: ripples_diffusion::StorageConfig,
) -> ImmResult {
    if storage.kind == ripples_diffusion::RrrStoreKind::Flat {
        return imm_multithreaded_with_engines(graph, params, threads, select, sample);
    }
    let factory = StreamFactory::new(params.seed);
    let run = || {
        let effective_threads = rayon::current_num_threads();
        let mut dispatch = SamplerDispatch::new(graph, params.model, &factory, sample, true);
        let store = ripples_diffusion::DynRrrStore::new(storage, graph.num_vertices());
        crate::seq::run_imm_compact_store(
            "mt",
            graph,
            params,
            store,
            |first, count, out| dispatch.sample_batch(first, count, out),
            |collection, n, k| {
                crate::select::select_with_engine_store(select, collection, n, k, effective_threads)
            },
        )
    };
    if threads == 0 {
        run()
    } else {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build rayon pool");
        pool.install(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::immopt_sequential;
    use ripples_diffusion::DiffusionModel;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    fn test_graph() -> Graph {
        erdos_renyi(300, 2400, WeightModel::UniformRandom { seed: 8 }, false, 21)
    }

    /// Per-model variant of [`test_graph`]: LT runs require the normalized
    /// in-weight contract the engines now enforce.
    fn graph_for(model: DiffusionModel) -> Graph {
        let lt = model == DiffusionModel::LinearThreshold;
        erdos_renyi(300, 2400, WeightModel::UniformRandom { seed: 8 }, lt, 21)
    }

    #[test]
    fn matches_sequential_at_any_thread_count() {
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            let g = graph_for(model);
            let p = ImmParams::new(6, 0.5, model, 5);
            let seq = immopt_sequential(&g, &p);
            for threads in [1, 2, 4] {
                let mt = imm_multithreaded(&g, &p, threads);
                assert_eq!(mt.seeds, seq.seeds, "{model} at {threads} threads");
                assert_eq!(mt.theta, seq.theta);
                assert!((mt.coverage_fraction - seq.coverage_fraction).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn default_thread_count_works() {
        let g = test_graph();
        let p = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 2);
        let r = imm_multithreaded(&g, &p, 0);
        assert_eq!(r.seeds.len(), 4);
    }

    #[test]
    fn memory_accounting_populated() {
        let g = test_graph();
        let p = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 2);
        let r = imm_multithreaded(&g, &p, 2);
        assert!(r.memory.peak_rrr_bytes > 0);
        assert!(r.memory.graph_bytes > 0);
        assert!(r.timers.total().as_nanos() > 0);
    }

    #[test]
    fn explicit_engines_all_match_default() {
        let g = test_graph();
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 7);
        let default = imm_multithreaded(&g, &p, 2);
        for engine in [
            SelectEngine::Auto,
            SelectEngine::Sequential,
            SelectEngine::Partitioned,
            SelectEngine::Hypergraph,
            SelectEngine::Fused,
        ] {
            let r = imm_multithreaded_with_select(&g, &p, 2, engine);
            assert_eq!(r.seeds, default.seeds, "{engine:?}");
            assert_eq!(r.theta, default.theta, "{engine:?}");
        }
    }

    #[test]
    fn storage_backends_match_flat_seeds() {
        use ripples_diffusion::{RrrStoreKind, StorageConfig};
        let g = test_graph();
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 7);
        let flat = imm_multithreaded(&g, &p, 2);
        for kind in [
            RrrStoreKind::Varint,
            RrrStoreKind::Bitpack,
            RrrStoreKind::Spill,
        ] {
            let budget = (kind == RrrStoreKind::Spill).then_some(4096);
            let r = imm_multithreaded_with_storage(
                &g,
                &p,
                2,
                SelectEngine::Auto,
                SampleEngine::Reference,
                StorageConfig { kind, budget },
            );
            assert_eq!(r.seeds, flat.seeds, "{kind:?}");
            assert_eq!(r.theta, flat.theta, "{kind:?}");
            assert!(
                (r.coverage_fraction - flat.coverage_fraction).abs() < 1e-12,
                "{kind:?}"
            );
            if kind == RrrStoreKind::Spill {
                assert!(
                    r.report.counters.spill_bytes_written > 0,
                    "tiny budget must spill"
                );
                assert!(
                    r.report.counters.rrr_bytes_peak < flat.report.counters.rrr_bytes_peak,
                    "spill peak {} not below flat peak {}",
                    r.report.counters.rrr_bytes_peak,
                    flat.report.counters.rrr_bytes_peak
                );
            } else {
                assert!(
                    r.report.counters.rrr_bytes_peak < flat.report.counters.rrr_bytes_peak,
                    "{kind:?} peak {} not below flat peak {}",
                    r.report.counters.rrr_bytes_peak,
                    flat.report.counters.rrr_bytes_peak
                );
            }
        }
    }

    #[test]
    fn fused_engine_populates_index_stats() {
        let g = test_graph();
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 7);
        let r = imm_multithreaded_with_select(&g, &p, 2, SelectEngine::Fused);
        let c = &r.report.counters;
        assert!(c.select_entries_touched > 0, "no touched entries recorded");
        assert!(c.index_bytes_peak > 0, "no index bytes recorded");
        assert!(c.index_build_nanos > 0, "no index build time recorded");
        assert!(c.arena_bytes_peak > 0, "no arena bytes recorded");
        assert_eq!(r.memory.peak_index_bytes as u64, c.index_bytes_peak);
        assert!(r.memory.total() > r.memory.peak_rrr_bytes);
    }

    #[test]
    fn run_report_populated_and_thread_invariant() {
        let g = test_graph();
        let p = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 2);
        let seq = immopt_sequential(&g, &p);
        for threads in [1usize, 2, 4] {
            let r = imm_multithreaded(&g, &p, threads);
            assert_eq!(r.report.engine, "mt");
            assert_eq!(
                r.report.counters.samples_generated, seq.report.counters.samples_generated,
                "{threads} threads"
            );
            assert_eq!(
                r.report.counters.edges_examined,
                seq.report.counters.edges_examined
            );
            assert_eq!(
                r.report.counters.rrr_entries,
                seq.report.counters.rrr_entries
            );
            assert_eq!(
                r.report.counters.theta_rounds,
                seq.report.counters.theta_rounds
            );
            assert_eq!(r.report.counters.theta_final, r.theta as u64);
            assert_eq!(r.report.rrr_sizes.count(), r.theta as u64);
            // The flat timer view is the span tree's top level.
            assert!(!r.report.spans().is_empty());
            assert_eq!(r.timers.total(), r.report.phase_timers().total());
        }
    }
}
