//! Resident-sketch support for the serve mode (`ripples-serve`).
//!
//! A batch run samples an RRR collection, selects seeds, and drops the
//! collection. The serve mode instead builds the sketch **once** — sized
//! via [`ImmParams::with_k_max`] so θ covers the largest query it will ever
//! answer — and keeps the sealed store resident to answer any number of
//! top-k queries by re-running selection only. This module provides the
//! build entry point that hands the filled store back instead of dropping
//! it, plus the store-generic coverage scorer the `spread_estimate` query
//! uses.
//!
//! Bitwise equivalence contract: a sketch built here with `k_max = K` holds
//! exactly the samples a fresh batch run with the same master seed and the
//! same `k_max = K` would draw (the θ schedule and estimation-round
//! selections are both driven by [`ImmParams::sizing_k`]), so re-running
//! selection at any `k ≤ K` reproduces that batch run's seed set bit for
//! bit. `tests/serve.rs` asserts this across engine × store combinations.

use crate::params::ImmParams;
use crate::result::ImmResult;
use crate::sample::{SampleEngine, SamplerDispatch};
use crate::select::SelectEngine;
use ripples_diffusion::{DynRrrStore, RrrStore, StorageConfig};
use ripples_graph::{Graph, Vertex};
use ripples_rng::StreamFactory;

/// A freshly built resident sketch: the sealed store plus the build run's
/// full [`ImmResult`] (θ, seeds at the build `k`, report, memory).
pub struct ResidentSketchBuild {
    /// The sealed RRR store, holding exactly θ samples.
    pub store: DynRrrStore,
    /// The build run's result; `result.theta` is the sample count the
    /// store holds, `result.seeds` the selection at the build `k`.
    pub result: ImmResult,
}

/// Runs IMM's estimation + sampling phases and returns the sealed store
/// alongside the run result, instead of dropping the collection the way the
/// batch entry points do. Semantically
/// [`immopt_sequential_with_storage`](crate::seq::immopt_sequential_with_storage)
/// with the store kept alive: same samples, same θ, same final selection,
/// for every `--select`/`--sample`/`--rrr-store` backend.
#[must_use]
pub fn build_resident_sketch(
    graph: &Graph,
    params: &ImmParams,
    select: SelectEngine,
    sample: SampleEngine,
    storage: StorageConfig,
) -> ResidentSketchBuild {
    let factory = StreamFactory::new(params.seed);
    let mut dispatch = SamplerDispatch::new(graph, params.model, &factory, sample, false);
    let store = DynRrrStore::new(storage, graph.num_vertices());
    let (result, store) = crate::seq::run_imm_compact_store_keep(
        "sketch",
        graph,
        params,
        store,
        |first, count, out| dispatch.sample_batch(first, count, out),
        |collection, n, k| crate::select::select_with_engine_store(select, collection, n, k, 1),
    );
    ResidentSketchBuild { store, result }
}

/// Number of samples in `store` covered by `seeds` (samples containing at
/// least one seed) — [`coverage_of`](crate::select::coverage_of) over any
/// [`RrrStore`]. `n · covered / len` is the standard RRR estimate of the
/// seed set's expected influence, which the serve mode's `spread_estimate`
/// query returns without touching the graph.
#[must_use]
pub fn coverage_of_store<S: RrrStore>(store: &S, seeds: &[Vertex]) -> usize {
    let mut covered = 0usize;
    for j in 0..store.len() {
        if seeds.iter().any(|&s| store.contains(j, s)) {
            covered += 1;
        }
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::immopt_sequential_with_storage;
    use ripples_diffusion::{DiffusionModel, RrrStoreKind};
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    fn test_graph() -> Graph {
        erdos_renyi(300, 2400, WeightModel::UniformRandom { seed: 2 }, false, 11)
    }

    #[test]
    fn build_matches_batch_run_and_keeps_theta_samples() {
        let g = test_graph();
        let p = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 5).with_k_max(16);
        let storage = StorageConfig::of(RrrStoreKind::Flat);
        let built = build_resident_sketch(
            &g,
            &p,
            SelectEngine::Sequential,
            SampleEngine::Reference,
            storage,
        );
        assert_eq!(built.store.len(), built.result.theta);
        let batch = immopt_sequential_with_storage(
            &g,
            &p,
            SelectEngine::Sequential,
            SampleEngine::Reference,
            storage,
        );
        assert_eq!(built.result.seeds, batch.seeds);
        assert_eq!(built.result.theta, batch.theta);
    }

    #[test]
    fn coverage_of_store_matches_flat_coverage() {
        use ripples_diffusion::RrrCollection;
        let mut c = RrrCollection::new();
        c.push(&[0, 1, 2]);
        c.push(&[2, 3]);
        c.push(&[4]);
        assert_eq!(coverage_of_store(&c, &[2]), 2);
        assert_eq!(coverage_of_store(&c, &[4, 0]), 2);
        assert_eq!(coverage_of_store(&c, &[]), 0);
        assert_eq!(
            coverage_of_store(&c, &[2]),
            crate::select::coverage_of(&c, &[2])
        );
    }
}
