//! Community-based influence maximization (the CIM heuristic family).
//!
//! The paper's related work (§2) covers approaches that accelerate
//! influence maximization by mining communities independently — including
//! the authors' own prior system (Halappanavar et al., reference \[14\]:
//! community detection + proportional seed allocation) — and names their
//! "major shortcoming …: the inability to include the effects of
//! inter-community edges since the subgraphs are disjoint."
//!
//! This module implements that heuristic so the claim is *measurable*: on
//! modular graphs the heuristic is competitive and cheap; as inter-community
//! coupling grows, exact IMM pulls ahead (see
//! `examples`/`tests/quality.rs` and the `community` rows of
//! `benches/end_to_end_imm.rs`).

use crate::params::ImmParams;
use crate::phases::PhaseTimers;
use crate::seq::immopt_sequential;
use ripples_centrality::community::label_propagation;
use ripples_graph::{split_by_labels, Graph, Vertex};

/// Result of the community-based heuristic.
#[derive(Clone, Debug)]
pub struct CommunityImmResult {
    /// The combined seed set (parent-graph vertex ids).
    pub seeds: Vec<Vertex>,
    /// Number of communities detected.
    pub communities: u32,
    /// Seeds allocated per community (aligned with community labels).
    pub allocation: Vec<u32>,
    /// Wall-clock timers (detection charged to `Other`).
    pub timers: PhaseTimers,
}

/// Proportional seat allocation: community `c` gets
/// `round(k · size_c / n)` seeds, with largest-remainder correction so the
/// total is exactly `min(k, n)` and no community exceeds its size.
fn allocate_seats(sizes: &[usize], k: u32) -> Vec<u32> {
    let n: usize = sizes.iter().sum();
    if n == 0 {
        return vec![0; sizes.len()];
    }
    let k = (k as usize).min(n);
    // Floor allocation + fractional remainders.
    let mut seats: Vec<u32> = Vec::with_capacity(sizes.len());
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(sizes.len());
    let mut assigned = 0usize;
    for (c, &s) in sizes.iter().enumerate() {
        let exact = k as f64 * s as f64 / n as f64;
        let floor = (exact.floor() as usize).min(s);
        seats.push(floor as u32);
        assigned += floor;
        remainders.push((exact - floor as f64, c));
    }
    // Largest remainders get the leftover seats (ties by community id for
    // determinism), skipping communities already at capacity. `total_cmp`
    // is a total order over every f64 bit pattern, so degenerate
    // remainders (−0.0, values that round-trip to NaN under future
    // arithmetic changes) can never panic the sort the way
    // `partial_cmp(..).unwrap()` could.
    remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = k - assigned;
    let mut idx = 0usize;
    while leftover > 0 {
        let (_, c) = remainders[idx % remainders.len()];
        if (seats[c] as usize) < sizes[c] {
            seats[c] += 1;
            leftover -= 1;
        }
        idx += 1;
        // Safety: k ≤ n guarantees capacity exists somewhere.
    }
    seats
}

/// Runs the community-based heuristic: label-propagation communities,
/// proportional seat allocation, independent IMM per community subgraph.
///
/// Same parameter semantics as the exact algorithms; `params.k` is the
/// *total* budget. Communities allocated zero seats are skipped entirely —
/// the source of both the speed advantage and the quality gap.
#[must_use]
pub fn community_imm(graph: &Graph, params: &ImmParams) -> CommunityImmResult {
    let mut timers = PhaseTimers::new();
    let communities = timers.record(crate::phases::Phase::Other, || {
        label_propagation(graph, 32, params.seed ^ 0xC1A)
    });
    if communities.count == 0 {
        return CommunityImmResult {
            seeds: Vec::new(),
            communities: 0,
            allocation: Vec::new(),
            timers,
        };
    }
    let sizes = communities.sizes();
    let allocation = allocate_seats(&sizes, params.effective_k(graph.num_vertices()));
    let parts = split_by_labels(graph, &communities.labels, communities.count);

    let mut seeds: Vec<Vertex> = Vec::with_capacity(params.k as usize);
    for (c, part) in parts.iter().enumerate() {
        let k_c = allocation[c];
        if k_c == 0 {
            continue;
        }
        let sub_params =
            ImmParams::new(k_c, params.epsilon, params.model, params.seed ^ (c as u64))
                .with_ell(params.ell);
        let sub_result = immopt_sequential(&part.graph, &sub_params);
        timers.merge(&sub_result.timers);
        seeds.extend(sub_result.seeds.iter().map(|&v| part.to_parent(v)));
    }
    CommunityImmResult {
        seeds,
        communities: communities.count,
        allocation,
        timers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_diffusion::{estimate_spread, DiffusionModel};
    use ripples_graph::generators::{coexpression, CoexpressionConfig};
    use ripples_graph::{GraphBuilder, WeightModel};
    use ripples_rng::StreamFactory;

    #[test]
    fn seats_proportional_and_exact() {
        assert_eq!(allocate_seats(&[50, 30, 20], 10), vec![5, 3, 2]);
        let seats = allocate_seats(&[10, 10, 10], 10);
        assert_eq!(seats.iter().sum::<u32>(), 10);
        // Rounding remainder lands deterministically.
        let seats = allocate_seats(&[7, 5, 3], 4);
        assert_eq!(seats.iter().sum::<u32>(), 4);
    }

    #[test]
    fn seats_capped_by_community_size() {
        let seats = allocate_seats(&[2, 98], 50);
        assert!(seats[0] <= 2);
        assert_eq!(seats.iter().sum::<u32>(), 50);
    }

    #[test]
    fn seats_handle_k_exceeding_n() {
        let seats = allocate_seats(&[3, 2], 100);
        assert_eq!(seats, vec![3, 2]);
    }

    #[test]
    fn seats_survive_degenerate_remainders() {
        // Exact divisions give every community remainder 0.0 (some
        // computed as `exact - floor` where the subtraction can produce
        // -0.0): the tie-break must stay total and deterministic.
        let seats = allocate_seats(&[25, 25, 25, 25], 8);
        assert_eq!(seats, vec![2, 2, 2, 2]);
        // A single-vertex sea of communities: all remainders equal, the
        // id tie-break hands leftovers to the lowest ids.
        let sizes = vec![1usize; 7];
        let seats = allocate_seats(&sizes, 3);
        assert_eq!(seats, vec![1, 1, 1, 0, 0, 0, 0]);
        // Mix of zero-size (remainder exactly 0.0, capacity 0) and tiny
        // communities: zero-size entries sort without panicking and never
        // receive a seat.
        let seats = allocate_seats(&[0, 4, 0, 4], 5);
        assert_eq!(seats[0], 0);
        assert_eq!(seats[2], 0);
        assert_eq!(seats.iter().sum::<u32>(), 5);
        // Large counts whose f64 products are inexact still allocate the
        // full budget.
        let sizes = vec![3usize; 333];
        let seats = allocate_seats(&sizes, 100);
        assert_eq!(seats.iter().sum::<u32>(), 100);
        assert!(seats.iter().all(|&s| s <= 3));
    }

    #[test]
    fn returns_full_budget_on_modular_graph() {
        let cfg = CoexpressionConfig {
            modules: 6,
            module_size: 30,
            hubs: 0,
            intra_density: 0.3,
            inter_edges_per_pair: 0.2,
            hub_coverage: 0.0,
            seed: 5,
        };
        let g = coexpression(&cfg, WeightModel::WeightedCascade, false);
        let p = ImmParams::new(12, 0.5, DiffusionModel::IndependentCascade, 3);
        let r = community_imm(&g, &p);
        assert_eq!(r.seeds.len(), 12);
        assert!(r.communities >= 2, "found {} communities", r.communities);
        let mut sorted = r.seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12, "duplicate seeds across communities");
        assert_eq!(r.allocation.iter().sum::<u32>(), 12);
    }

    #[test]
    fn competitive_on_modular_weak_on_coupled() {
        // The paper's stated shortcoming, measured: the heuristic tracks
        // exact IMM on a strongly modular graph, and exact IMM stays at
        // least as good everywhere.
        let modular_cfg = CoexpressionConfig {
            modules: 8,
            module_size: 40,
            hubs: 0,
            intra_density: 0.25,
            inter_edges_per_pair: 0.2,
            hub_coverage: 0.0,
            seed: 8,
        };
        let g = coexpression(&modular_cfg, WeightModel::WeightedCascade, false);
        let model = DiffusionModel::IndependentCascade;
        let p = ImmParams::new(8, 0.5, model, 9);
        let exact = immopt_sequential(&g, &p);
        let heur = community_imm(&g, &p);
        let factory = StreamFactory::new(71);
        let exact_spread = estimate_spread(&g, model, &exact.seeds, 600, &factory);
        let heur_spread = estimate_spread(&g, model, &heur.seeds, 600, &factory);
        assert!(
            heur_spread >= 0.75 * exact_spread,
            "heuristic collapsed on modular input: {heur_spread} vs {exact_spread}"
        );
        assert!(
            exact_spread >= 0.95 * heur_spread,
            "exact IMM lost to the heuristic: {exact_spread} vs {heur_spread}"
        );
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        let p = ImmParams::new(3, 0.5, DiffusionModel::IndependentCascade, 1);
        let r = community_imm(&g, &p);
        assert!(r.seeds.is_empty());
        assert_eq!(r.communities, 0);
    }
}
