//! The distributed-memory IMM implementation — "IMMdist" in Table 3, the
//! subject of Figures 7 and 8 — written against the
//! [`ripples_comm::Communicator`] abstraction (§3.2 of the paper).
//!
//! Design, following the paper exactly:
//!
//! * Every rank holds the **entire input graph** and generates a distinct
//!   batch of `θ/p` samples ("evenly partitioning the samples to be
//!   generated among the p ranks").
//! * Seed selection keeps an `n`-counter array per rank: local counts are
//!   aggregated with **All-Reduce**; each greedy iteration then identifies
//!   the next seed locally (every rank has the global counts), purges its
//!   local samples, and All-Reduces the decrements — `O(k · n · lg p)`
//!   communication.
//! * Sample indices are global, so the union of all ranks' samples is
//!   *identical* to a sequential run's collection, and therefore so is the
//!   seed set — the cross-implementation equivalence the test suite checks.

use crate::memory::MemoryStats;
use crate::obs::{CommCounters, Histogram, RunReport};
use crate::params::ImmParams;
use crate::result::ImmResult;
use crate::select::{fused_is_profitable, fused_is_profitable_store, SelectStats};
use crate::theta::ThetaSchedule;
use ripples_comm::{Communicator, RetryComm};
use ripples_diffusion::rrr::{generate_rrr, RrrScratch};
use ripples_diffusion::{
    DiffusionModel, DynRrrStore, IncrementalSampleIndex, RrrCollection, RrrStore, SampleIndex,
    StorageConfig,
};
use ripples_graph::{Graph, Vertex};
use ripples_rng::{RankStream, StreamFactory};

/// Global sample indices owned by `rank` within `[0, total)`: the strided
/// (round-robin) partition `{ i : i ≡ rank (mod size) }`.
///
/// Strided ownership is *append-only under growth*: when θ grows from `t` to
/// `t′`, a rank's new indices are exactly its stride within `[t, t′)`, so
/// the estimation loop's repeated top-ups never invalidate earlier local
/// samples — the same reason the paper leap-frogs its RNG streams.
fn strided_indices(total: usize, rank: u32, size: u32) -> impl Iterator<Item = u64> {
    let size = u64::from(size);
    let rank = u64::from(rank);
    (0..total as u64).filter(move |i| i % size == rank)
}

/// How per-round counter updates travel between ranks during distributed
/// seed selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DistSelectMode {
    /// The paper's §3.2 design: one dense All-Reduce of all `n` counters
    /// per greedy iteration — `O(k·n·lg p)` communication regardless of how
    /// few counters actually changed.
    #[default]
    DenseAllReduce,
    /// Sparse aggregation (an "optimizing communication" extension, §6):
    /// each rank gathers only its nonzero `(vertex, decrement)` pairs via
    /// `MPI_Allgatherv`. Volume is proportional to the vertices actually
    /// touched by the purged samples, which collapses for the late greedy
    /// rounds where few samples remain uncovered.
    SparseAllGather,
}

/// Distributed greedy seed selection over each rank's local samples.
///
/// Returns `(seeds, covered_global, fraction, stats)`; everything but the
/// per-rank `stats` is identical on every rank.
pub(crate) fn select_seeds_distributed<C: Communicator, S: RrrStore>(
    comm: &C,
    local: &S,
    theta_global: usize,
    n: u32,
    k: u32,
    select_mode: DistSelectMode,
) -> (Vec<Vertex>, usize, f64, SelectStats) {
    if let Some(flat) = local.as_flat() {
        select_seeds_distributed_flat(comm, flat, theta_global, n, k, select_mode)
    } else {
        select_seeds_distributed_store(comm, local, theta_global, n, k, select_mode)
    }
}

/// The flat-storage distributed selection: binary-searched slices, serial
/// [`SampleIndex`] when profitable. Bitwise the pre-storage-backend code
/// path.
fn select_seeds_distributed_flat<C: Communicator>(
    comm: &C,
    local: &RrrCollection,
    theta_global: usize,
    n: u32,
    k: u32,
    select_mode: DistSelectMode,
) -> (Vec<Vertex>, usize, f64, SelectStats) {
    let n_us = n as usize;
    let k = k.min(n);

    // Per-call serial inverted index over this rank's local samples: the
    // purge step for a chosen seed walks exactly the samples containing it
    // instead of binary-searching every alive local sample per iteration.
    // Only built when the cost model says its O(E) construction amortizes
    // over the k purge passes; the decrement sums are identical either way,
    // so ranks may even disagree on the choice without diverging.
    let index = if fused_is_profitable(local, k) {
        let t0 = std::time::Instant::now();
        let index = SampleIndex::build(local, n, 1);
        if crate::obs::trace::enabled() {
            crate::obs::trace::complete(
                crate::obs::trace::TraceName::IndexBuild,
                t0,
                index.total_entries() as u64,
                1,
            );
        }
        Some((index, t0.elapsed()))
    } else {
        None
    };
    let mut stats = match &index {
        Some((index, build)) => SelectStats {
            index_build_nanos: u64::try_from(build.as_nanos()).unwrap_or(u64::MAX),
            index_bytes: index.resident_bytes(),
            ..SelectStats::default()
        },
        None => SelectStats::default(),
    };

    // Local counting pass (the index's vertex degrees, or one direct sweep
    // over the local samples), then one All-Reduce for the global counts.
    let mut counters: Vec<u64> = match &index {
        Some((index, _)) => (0..n).map(|v| index.degree(v)).collect(),
        None => {
            let mut counts = vec![0u64; n_us];
            for set in local.iter() {
                for &u in set {
                    counts[u as usize] += 1;
                }
            }
            counts
        }
    };
    comm.all_reduce_sum_u64(&mut counters);

    let mut covered = vec![false; local.len()];
    let mut selected = vec![false; n_us];
    let mut seeds = Vec::with_capacity(k as usize);
    let mut covered_local = 0usize;
    let mut decrements = vec![0u64; n_us];
    for _ in 0..k {
        // Global argmax is a local operation: all ranks hold the counts and
        // the tie-break (lowest id) is deterministic.
        let mut best: Option<(u64, Vertex)> = None;
        for (v, (&c, &s)) in counters.iter().zip(&selected).enumerate() {
            if s {
                continue;
            }
            match best {
                Some((bc, _)) if bc >= c => {}
                _ => best = Some((c, v as Vertex)),
            }
        }
        let Some((gain, v)) = best else { break };
        selected[v as usize] = true;
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(crate::obs::trace::TraceName::SelectStep, u64::from(v), gain);
        }
        seeds.push(v);

        // Purge local samples containing v; accumulate counter decrements.
        decrements.fill(0);
        match &index {
            Some((index, _)) => {
                for &sid in index.samples_containing(v) {
                    let j = sid as usize;
                    if covered[j] {
                        continue;
                    }
                    covered[j] = true;
                    covered_local += 1;
                    let set = local.get(j);
                    stats.entries_touched += set.len() as u64;
                    for &u in set {
                        decrements[u as usize] += 1;
                    }
                }
            }
            None => {
                for (j, cov) in covered.iter_mut().enumerate() {
                    if *cov {
                        continue;
                    }
                    let set = local.get(j);
                    if set.binary_search(&v).is_ok() {
                        *cov = true;
                        covered_local += 1;
                        for &u in set {
                            decrements[u as usize] += 1;
                        }
                    }
                }
            }
        }
        match select_mode {
            DistSelectMode::DenseAllReduce => {
                // The O(k·n·lg p) step: one All-Reduce per greedy iteration.
                comm.all_reduce_sum_u64(&mut decrements);
                for (c, &d) in counters.iter_mut().zip(&decrements) {
                    *c -= d;
                }
            }
            DistSelectMode::SparseAllGather => {
                // Encode only nonzero decrements as (vertex << 32 | count).
                let sparse: Vec<u64> = decrements
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| d > 0)
                    .map(|(u, &d)| {
                        debug_assert!(d < (1 << 32), "decrement overflow");
                        ((u as u64) << 32) | d
                    })
                    .collect();
                for rank_list in comm.all_gather_u64_list(&sparse) {
                    for enc in rank_list {
                        let u = (enc >> 32) as usize;
                        let d = enc & 0xFFFF_FFFF;
                        counters[u] -= d;
                    }
                }
            }
        }
    }
    let covered_global = comm.all_reduce_sum_u64_scalar(covered_local as u64) as usize;
    // Degraded runs: dead ranks' samples are gone from every collective, so
    // coverage must be judged against the samples the surviving ranks
    // actually hold, not the nominal θ. The dead-rank set is identical on
    // every rank (lockstep fault decisions), so this extra collective is
    // taken — or skipped — uniformly; the fault-free path is unchanged.
    let theta_eff = if comm.dead_ranks().is_empty() {
        theta_global
    } else {
        comm.all_reduce_sum_u64_scalar(local.len() as u64) as usize
    };
    let fraction = if theta_eff == 0 {
        0.0
    } else {
        covered_global as f64 / theta_eff as f64
    };
    (seeds, covered_global, fraction, stats)
}

/// Distributed selection over a compressed local [`RrrStore`]: the same
/// greedy protocol (local counting → All-Reduce → local argmax → purge →
/// decrement aggregation) with decode-on-touch access — a per-rank
/// inverted index ([`RrrStore::with_sample_index`], cached across θ rounds
/// by `DynRrrStore`) when the cost model says it amortizes, direct
/// `contains`/`for_each_vertex` sweeps otherwise. Decrement sums are
/// identical to the flat path's, so the aggregated counters — and the
/// seeds — match the flat run bit for bit.
fn select_seeds_distributed_store<C: Communicator, S: RrrStore>(
    comm: &C,
    local: &S,
    theta_global: usize,
    n: u32,
    k: u32,
    select_mode: DistSelectMode,
) -> (Vec<Vertex>, usize, f64, SelectStats) {
    let k = k.min(n);
    let mut stats = SelectStats::default();
    let (seeds, covered_global, fraction) = if fused_is_profitable_store(local, k) {
        let t0 = std::time::Instant::now();
        local.with_sample_index(n, |index| {
            stats.index_build_nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            stats.index_bytes = index.resident_bytes();
            if crate::obs::trace::enabled() {
                crate::obs::trace::complete(
                    crate::obs::trace::TraceName::IndexBuild,
                    t0,
                    local.total_entries(),
                    1,
                );
            }
            distributed_store_rounds(
                comm,
                local,
                theta_global,
                n,
                k,
                select_mode,
                Some(index),
                &mut stats,
            )
        })
    } else {
        distributed_store_rounds(
            comm,
            local,
            theta_global,
            n,
            k,
            select_mode,
            None,
            &mut stats,
        )
    };
    (seeds, covered_global, fraction, stats)
}

/// The collective greedy rounds of [`select_seeds_distributed_store`],
/// shared by the indexed and direct access strategies. Must be called
/// collectively with the same `index`-present/absent decision on every
/// rank (the cost model inputs are collective-identical, so it is).
#[allow(clippy::too_many_arguments)]
fn distributed_store_rounds<C: Communicator, S: RrrStore>(
    comm: &C,
    local: &S,
    theta_global: usize,
    n: u32,
    k: u32,
    select_mode: DistSelectMode,
    index: Option<&IncrementalSampleIndex>,
    stats: &mut SelectStats,
) -> (Vec<Vertex>, usize, f64) {
    let n_us = n as usize;

    let mut counters: Vec<u64> = match &index {
        Some(index) => (0..n).map(|v| u64::from(index.degree(v))).collect(),
        None => {
            let t0 = std::time::Instant::now();
            let mut counts = vec![0u64; n_us];
            for j in 0..local.len() {
                local.for_each_vertex(j, |u| counts[u as usize] += 1);
            }
            stats.decode_nanos += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            counts
        }
    };
    comm.all_reduce_sum_u64(&mut counters);

    let mut covered = vec![false; local.len()];
    let mut selected = vec![false; n_us];
    let mut seeds = Vec::with_capacity(k as usize);
    let mut covered_local = 0usize;
    let mut decrements = vec![0u64; n_us];
    for _ in 0..k {
        let mut best: Option<(u64, Vertex)> = None;
        for (v, (&c, &s)) in counters.iter().zip(&selected).enumerate() {
            if s {
                continue;
            }
            match best {
                Some((bc, _)) if bc >= c => {}
                _ => best = Some((c, v as Vertex)),
            }
        }
        let Some((gain, v)) = best else { break };
        selected[v as usize] = true;
        if crate::obs::trace::enabled() {
            crate::obs::trace::mark(crate::obs::trace::TraceName::SelectStep, u64::from(v), gain);
        }
        seeds.push(v);

        decrements.fill(0);
        let t0 = std::time::Instant::now();
        match &index {
            Some(index) => {
                index.for_each_sample(v, |j| {
                    if covered[j] {
                        return;
                    }
                    covered[j] = true;
                    covered_local += 1;
                    stats.entries_touched += local.sample_len(j) as u64;
                    local.for_each_vertex(j, |u| decrements[u as usize] += 1);
                });
            }
            None => {
                for (j, cov) in covered.iter_mut().enumerate() {
                    if *cov {
                        continue;
                    }
                    if local.contains(j, v) {
                        *cov = true;
                        covered_local += 1;
                        local.for_each_vertex(j, |u| decrements[u as usize] += 1);
                    }
                }
            }
        }
        stats.decode_nanos += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        match select_mode {
            DistSelectMode::DenseAllReduce => {
                comm.all_reduce_sum_u64(&mut decrements);
                for (c, &d) in counters.iter_mut().zip(&decrements) {
                    *c -= d;
                }
            }
            DistSelectMode::SparseAllGather => {
                let sparse: Vec<u64> = decrements
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| d > 0)
                    .map(|(u, &d)| {
                        debug_assert!(d < (1 << 32), "decrement overflow");
                        ((u as u64) << 32) | d
                    })
                    .collect();
                for rank_list in comm.all_gather_u64_list(&sparse) {
                    for enc in rank_list {
                        let u = (enc >> 32) as usize;
                        let d = enc & 0xFFFF_FFFF;
                        counters[u] -= d;
                    }
                }
            }
        }
    }
    let covered_global = comm.all_reduce_sum_u64_scalar(covered_local as u64) as usize;
    let theta_eff = if comm.dead_ranks().is_empty() {
        theta_global
    } else {
        comm.all_reduce_sum_u64_scalar(local.len() as u64) as usize
    };
    let fraction = if theta_eff == 0 {
        0.0
    } else {
        covered_global as f64 / theta_eff as f64
    };
    (seeds, covered_global, fraction)
}

/// Crate-internal entry used by the partitioned engine: the paper's dense
/// All-Reduce selection.
pub(crate) fn select_seeds_distributed_public<C: Communicator, S: RrrStore>(
    comm: &C,
    local: &S,
    theta_global: usize,
    n: u32,
    k: u32,
) -> (Vec<Vertex>, usize, f64, SelectStats) {
    select_seeds_distributed(
        comm,
        local,
        theta_global,
        n,
        k,
        DistSelectMode::DenseAllReduce,
    )
}

/// Merges one rank's local histogram into the identical global histogram on
/// every rank: the summable state travels in one All-Reduce, the maximum in
/// one max-reduce. Must be called collectively.
pub(crate) fn globalize_histogram<C: Communicator>(comm: &C, hist: &mut Histogram) {
    let mut flat = hist.to_flat();
    comm.all_reduce_sum_u64(&mut flat);
    let max = comm.all_reduce_max_f64(hist.max() as f64) as u64;
    hist.set_from_flat(&flat, max);
}

/// Replaces this rank's local deterministic counters (samples, edges, RRR
/// entries, unsorted pushes, selection entries touched) with their global
/// sums, and merges the RRR-size histogram, so every rank — at every world
/// size — reports the same values. Must be called collectively.
pub(crate) fn globalize_counters<C: Communicator>(comm: &C, report: &mut RunReport) {
    let mut buf = [
        report.counters.samples_generated,
        report.counters.edges_examined,
        report.counters.rrr_entries,
        report.counters.unsorted_pushes,
        report.counters.select_entries_touched,
    ];
    comm.all_reduce_sum_u64(&mut buf);
    report.counters.samples_generated = buf[0];
    report.counters.edges_examined = buf[1];
    report.counters.rrr_entries = buf[2];
    report.counters.unsorted_pushes = buf[3];
    report.counters.select_entries_touched = buf[4];
    globalize_histogram(comm, &mut report.rrr_sizes);
}

/// Publishes the comm stack's fault/retry health into the report's global
/// counters. Lockstep retries mean every live rank holds identical health
/// values, so a max-reduce both agrees across ranks and neutralizes zombie
/// (dead-rank) contributions, which arrive as `NEG_INFINITY`. Must be called
/// collectively — including on reliable fabrics, where it reduces zeros —
/// so every engine issues the same collective sequence at every fault rate.
pub(crate) fn globalize_health<C: Communicator>(comm: &C, report: &mut RunReport) {
    let health = comm.health();
    report.counters.retries = comm.all_reduce_max_f64(health.retries as f64).max(0.0) as u64;
    report.counters.dropped_ops =
        comm.all_reduce_max_f64(health.dropped_ops as f64).max(0.0) as u64;
    report.counters.degraded_ranks = comm
        .all_reduce_max_f64(health.dead_ranks.len() as f64)
        .max(0.0) as u64;
}

/// Scalar convenience over the slice All-Reduce.
trait ScalarReduce {
    fn all_reduce_sum_u64_scalar(&self, x: u64) -> u64;
}

impl<C: Communicator> ScalarReduce for C {
    fn all_reduce_sum_u64_scalar(&self, x: u64) -> u64 {
        let mut buf = [x];
        self.all_reduce_sum_u64(&mut buf);
        buf[0]
    }
}

/// How the distributed ranks draw their randomness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DistRngMode {
    /// One SplitMix64 stream per *global sample index* (the default): the
    /// sample collection — and therefore the seed set — is bitwise
    /// identical to the sequential run at every world size.
    #[default]
    IndexedStreams,
    /// The paper's TRNG strategy: one leap-frogged LCG stream per rank.
    /// Every rank's draws are a disjoint stride of one global LCG sequence,
    /// so randomness never overlaps across ranks — but sample *content*
    /// depends on the world size, exactly as in the original system.
    LeapFrog,
}

/// Runs distributed IMM on this rank. Must be called collectively by every
/// rank of `comm` with identical `graph` and `params`.
///
/// Uses [`DistRngMode::IndexedStreams`]; see
/// [`imm_distributed_with_rng`] for the paper-faithful leap-frog mode.
///
/// Returns the (identical) result on every rank; `sample_work` contains only
/// this rank's local sampling work.
#[must_use]
pub fn imm_distributed<C: Communicator>(comm: &C, graph: &Graph, params: &ImmParams) -> ImmResult {
    imm_distributed_with_rng(comm, graph, params, DistRngMode::IndexedStreams)
}

/// [`imm_distributed`] with an explicit RNG distribution strategy.
#[must_use]
pub fn imm_distributed_with_rng<C: Communicator>(
    comm: &C,
    graph: &Graph,
    params: &ImmParams,
    rng_mode: DistRngMode,
) -> ImmResult {
    imm_distributed_full(
        comm,
        graph,
        params,
        rng_mode,
        DistSelectMode::DenseAllReduce,
    )
}

/// The fully-parameterized distributed entry point: RNG strategy ×
/// counter-aggregation strategy.
#[must_use]
pub fn imm_distributed_full<C: Communicator>(
    comm: &C,
    graph: &Graph,
    params: &ImmParams,
    rng_mode: DistRngMode,
    select_mode: DistSelectMode,
) -> ImmResult {
    imm_distributed_impl(
        comm,
        graph,
        params,
        rng_mode,
        select_mode,
        RrrCollection::new(),
    )
}

/// [`imm_distributed_full`] with an explicit per-rank RRR storage backend
/// (CLI `--rrr-store` / `--rrr-budget`). Each rank holds its local sample
/// stride in the chosen backend; the selection protocol's decrement sums
/// are storage-independent, so seeds match the flat run at every world
/// size. The flat backend takes exactly the [`imm_distributed_full`] code
/// paths.
#[must_use]
pub fn imm_distributed_with_storage<C: Communicator>(
    comm: &C,
    graph: &Graph,
    params: &ImmParams,
    rng_mode: DistRngMode,
    select_mode: DistSelectMode,
    storage: StorageConfig,
) -> ImmResult {
    if storage.kind == ripples_diffusion::RrrStoreKind::Flat {
        return imm_distributed_full(comm, graph, params, rng_mode, select_mode);
    }
    let store = DynRrrStore::new(storage, graph.num_vertices());
    imm_distributed_impl(comm, graph, params, rng_mode, select_mode, store)
}

fn imm_distributed_impl<C: Communicator, S: RrrStore>(
    comm: &C,
    graph: &Graph,
    params: &ImmParams,
    rng_mode: DistRngMode,
    select_mode: DistSelectMode,
    store: S,
) -> ImmResult {
    // All collectives below run through the retry/rank-death layer: on a
    // reliable backend every attempt succeeds first try and the wrapper is
    // free; on a fault-injecting stack transient faults are retried in
    // lockstep and persistent ones degrade the run instead of crashing it.
    let comm = &RetryComm::with_defaults(comm);
    let n = graph.num_vertices();
    if n < 2 {
        // Degenerate inputs take the sequential path; keep ranks aligned.
        comm.barrier();
        return crate::seq::immopt_sequential(graph, params);
    }
    let k = params.effective_k(n);
    let sizing_k = params.sizing_k(n);
    let schedule = ThetaSchedule::new(
        u64::from(n),
        u64::from(sizing_k),
        params.epsilon,
        params.ell,
    );
    let factory = StreamFactory::new(params.seed);
    let model: DiffusionModel = params.model;
    // This engine samples through `generate_rrr` directly, bypassing the
    // batch samplers' entry validation — re-assert the LT normalization
    // contract here so un-normalized input fails fast in every profile.
    if model == DiffusionModel::LinearThreshold {
        ripples_diffusion::ensure_lt_normalized(graph);
    }
    let rank = comm.rank();
    let size = comm.size();
    // Tag this rank thread's event ring so the merged trace shows one
    // process track per rank.
    crate::obs::trace::set_thread_rank(rank);

    let mut report = RunReport::new("dist");
    let comm_before = comm.stats();
    let mut memory = MemoryStats {
        counter_bytes: 2 * n as usize * std::mem::size_of::<u64>(),
        graph_bytes: graph.resident_bytes(),
        ..MemoryStats::default()
    };
    let mut local = store;
    let mut scratch = RrrScratch::new(n);
    let mut sample_work: Vec<u64> = Vec::new();
    let mut theta_global: usize = 0;
    let mut select_stats = SelectStats::default();
    // Persistent per-rank leap-frog stream (used only in LeapFrog mode).
    let mut rank_stream = RankStream::new(params.seed, rank, size);

    // Append this rank's stride of the newly added global range
    // [current_total, new_total). Counters record *local* work here; they
    // are globalized once at the end of the run.
    let mut grow_to = |new_total: usize,
                       local: &mut S,
                       scratch: &mut RrrScratch,
                       sample_work: &mut Vec<u64>,
                       report: &mut RunReport,
                       current_total: usize| {
        debug_assert!(new_total >= current_total);
        let mut batch_samples = 0u64;
        for index in
            strided_indices(new_total, rank, size).skip_while(|&i| i < current_total as u64)
        {
            let s = match rng_mode {
                DistRngMode::IndexedStreams => {
                    let mut rng = factory.sample_stream(index);
                    let root = rng.bounded_u64(u64::from(n)) as Vertex;
                    generate_rrr(graph, model, root, &mut rng, scratch)
                }
                DistRngMode::LeapFrog => {
                    let root = rank_stream.bounded_u64(u64::from(n)) as Vertex;
                    generate_rrr(graph, model, root, &mut rank_stream, scratch)
                }
            };
            report.counters.edges_examined += s.edges_examined;
            report.rrr_sizes.record(s.vertices.len() as u64);
            local.push(&s.vertices);
            sample_work.push(s.edges_examined);
            batch_samples += 1;
        }
        report.counters.samples_generated += batch_samples;
        // One "worker" per rank: the batch lands wholly on this rank.
        report.thread_samples.record(batch_samples);
    };

    // --- EstimateTheta -----------------------------------------------------
    let mut lb: Option<f64> = None;
    {
        let local_ref = &mut local;
        let scratch_ref = &mut scratch;
        let work_ref = &mut sample_work;
        let theta_ref = &mut theta_global;
        let memory = &mut memory;
        let lb = &mut lb;
        let select_stats = &mut select_stats;
        report.span("EstimateTheta", |report| {
            for x in 1..=schedule.max_rounds() {
                let budget = schedule.round_budget(x);
                if crate::obs::metrics::enabled() {
                    crate::obs::metrics::set(
                        crate::obs::metrics::Metric::ThetaTarget,
                        budget as u64,
                    );
                }
                let stop = report.span(&format!("round-{x}"), |report| {
                    if budget > *theta_ref {
                        report.span("sample", |report| {
                            grow_to(budget, local_ref, scratch_ref, work_ref, report, *theta_ref);
                        });
                        *theta_ref = budget;
                    }
                    memory.observe_rrr(local_ref.resident_bytes());
                    let (sel_seeds, _, fraction, sstats) = report.span("select", |_| {
                        select_seeds_distributed(
                            comm,
                            local_ref,
                            *theta_ref,
                            n,
                            sizing_k,
                            select_mode,
                        )
                    });
                    select_stats.absorb(sstats);
                    report.counters.theta_rounds += 1;
                    report.counters.select_iterations += sel_seeds.len() as u64;
                    report.counters.round_budgets.push(budget as u64);
                    report.counters.round_coverage.push(fraction);
                    if schedule.round_succeeds(x, fraction) {
                        *lb = Some(schedule.lower_bound(fraction));
                        true
                    } else {
                        false
                    }
                });
                if stop {
                    break;
                }
            }
        });
    }
    let theta = match lb {
        Some(bound) => schedule.final_theta(bound),
        None => schedule.fallback_theta(u64::from(sizing_k)),
    };
    if crate::obs::metrics::enabled() {
        crate::obs::metrics::set(crate::obs::metrics::Metric::ThetaTarget, theta as u64);
    }

    // --- Sample top-up -------------------------------------------------
    if theta > theta_global {
        let local_ref = &mut local;
        let scratch_ref = &mut scratch;
        let work_ref = &mut sample_work;
        let current = theta_global;
        report.span("Sample", |report| {
            grow_to(theta, local_ref, scratch_ref, work_ref, report, current);
        });
        theta_global = theta;
    }
    memory.observe_rrr(local.resident_bytes());

    // --- SelectSeeds ------------------------------------------------------
    let (seeds, _, fraction, final_stats) = report.span("SelectSeeds", |_| {
        select_seeds_distributed(comm, &local, theta_global, n, k, select_mode)
    });
    select_stats.absorb(final_stats);
    report.counters.select_iterations += seeds.len() as u64;

    memory.observe_index(select_stats.index_bytes);
    report.counters.rrr_entries = local.total_entries();
    report.counters.rrr_bytes_peak = memory.peak_rrr_bytes as u64;
    report.counters.theta_final = theta_global as u64;
    report.counters.unsorted_pushes = local.unsorted_pushes();
    report.counters.select_entries_touched = select_stats.entries_touched;
    report.counters.index_build_nanos = select_stats.index_build_nanos;
    report.counters.index_bytes_peak = select_stats.index_bytes as u64;
    report.counters.decode_nanos = select_stats.decode_nanos;
    report.counters.spill_bytes_written = local.spill_bytes_written();
    globalize_counters(comm, &mut report);
    globalize_health(comm, &mut report);
    report.comm = Some(CommCounters::delta(&comm_before, &comm.stats()));
    if crate::obs::trace::enabled() {
        // Collective: every rank contributes its timeline and every rank
        // receives the same rank-tagged merge.
        report.trace = Some(crate::obs::trace::gather_trace(comm));
    }

    ImmResult {
        seeds,
        theta: theta_global,
        coverage_fraction: fraction,
        opt_lower_bound: lb,
        timers: report.phase_timers(),
        memory,
        sample_work,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::immopt_sequential;
    use ripples_comm::{SelfComm, ThreadWorld};
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    fn test_graph() -> Graph {
        erdos_renyi(
            250,
            2000,
            WeightModel::UniformRandom { seed: 14 },
            false,
            77,
        )
    }

    #[test]
    fn strided_indices_partition_the_range() {
        for total in [0usize, 1, 7, 100, 101] {
            for size in [1u32, 2, 3, 8] {
                let mut covered = Vec::new();
                for rank in 0..size {
                    covered.extend(strided_indices(total, rank, size));
                }
                covered.sort_unstable();
                let expect: Vec<u64> = (0..total as u64).collect();
                assert_eq!(covered, expect, "total {total} size {size}");
            }
        }
    }

    #[test]
    fn strided_growth_is_append_only() {
        // A rank's indices for a smaller total are a prefix of its indices
        // for any larger total.
        let small: Vec<u64> = strided_indices(50, 2, 4).collect();
        let large: Vec<u64> = strided_indices(90, 2, 4).collect();
        assert_eq!(&large[..small.len()], &small[..]);
    }

    #[test]
    fn single_rank_matches_sequential() {
        let g = test_graph();
        let p = ImmParams::new(5, 0.5, DiffusionModel::IndependentCascade, 9);
        let comm = SelfComm::new();
        let dist = imm_distributed(&comm, &g, &p);
        let seq = immopt_sequential(&g, &p);
        assert_eq!(dist.seeds, seq.seeds);
        assert_eq!(dist.theta, seq.theta);
        assert!((dist.coverage_fraction - seq.coverage_fraction).abs() < 1e-12);
    }

    #[test]
    fn multi_rank_matches_sequential_and_each_other() {
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            // LT runs require the normalized in-weight contract the
            // engines now enforce.
            let lt = model == DiffusionModel::LinearThreshold;
            let g = erdos_renyi(250, 2000, WeightModel::UniformRandom { seed: 14 }, lt, 77);
            let p = ImmParams::new(5, 0.5, model, 13);
            let seq = immopt_sequential(&g, &p);
            for world_size in [2u32, 3, 5] {
                let world = ThreadWorld::new(world_size);
                let results = world.run(|comm| imm_distributed(comm, &g, &p));
                for (r, res) in results.iter().enumerate() {
                    assert_eq!(
                        res.seeds, seq.seeds,
                        "{model}: rank {r} of {world_size} diverged from sequential"
                    );
                    assert_eq!(res.theta, seq.theta);
                }
            }
        }
    }

    #[test]
    fn communication_is_accounted() {
        let g = test_graph();
        let p = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 3);
        let world = ThreadWorld::new(2);
        let stats = world.run(|comm| {
            let _ = imm_distributed(comm, &g, &p);
            comm.stats()
        });
        for s in stats {
            assert!(s.allreduce_calls > 0, "no all-reduce recorded");
            assert!(s.bytes_moved > 0);
        }
    }
}

#[cfg(test)]
mod sparse_select_tests {
    use super::*;
    use ripples_comm::ThreadWorld;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;

    #[test]
    fn sparse_mode_returns_identical_seeds() {
        let g = erdos_renyi(300, 2400, WeightModel::UniformRandom { seed: 5 }, false, 44);
        let p = ImmParams::new(6, 0.5, DiffusionModel::IndependentCascade, 12);
        for size in [1u32, 2, 4] {
            let world = ThreadWorld::new(size);
            let dense = world.run(|comm| {
                imm_distributed_full(
                    comm,
                    &g,
                    &p,
                    DistRngMode::IndexedStreams,
                    DistSelectMode::DenseAllReduce,
                )
            });
            let sparse = world.run(|comm| {
                imm_distributed_full(
                    comm,
                    &g,
                    &p,
                    DistRngMode::IndexedStreams,
                    DistSelectMode::SparseAllGather,
                )
            });
            for (d, s) in dense.iter().zip(&sparse) {
                assert_eq!(d.seeds, s.seeds, "world {size}");
                assert_eq!(d.theta, s.theta);
                assert!((d.coverage_fraction - s.coverage_fraction).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sparse_mode_moves_fewer_bytes() {
        let g = erdos_renyi(
            2000,
            8000,
            WeightModel::UniformRandom { seed: 9 },
            false,
            77,
        );
        let p = ImmParams::new(10, 0.5, DiffusionModel::IndependentCascade, 3);
        let world = ThreadWorld::new(2);
        let dense_bytes = world
            .run(|comm| {
                let _ = imm_distributed_full(
                    comm,
                    &g,
                    &p,
                    DistRngMode::IndexedStreams,
                    DistSelectMode::DenseAllReduce,
                );
                comm.stats().bytes_moved
            })
            .into_iter()
            .max()
            .unwrap();
        let sparse_bytes = world
            .run(|comm| {
                let _ = imm_distributed_full(
                    comm,
                    &g,
                    &p,
                    DistRngMode::IndexedStreams,
                    DistSelectMode::SparseAllGather,
                );
                comm.stats().bytes_moved
            })
            .into_iter()
            .max()
            .unwrap();
        assert!(
            sparse_bytes * 2 < dense_bytes,
            "sparse {sparse_bytes} not ≪ dense {dense_bytes}"
        );
    }
}

#[cfg(test)]
mod leapfrog_mode_tests {
    use super::*;
    use ripples_diffusion::estimate_spread;
    use ripples_graph::generators::erdos_renyi;
    use ripples_graph::WeightModel;
    use ripples_rng::StreamFactory;

    #[test]
    fn leapfrog_mode_quality_parity() {
        // Leap-frog sample content depends on world size (as in the paper's
        // system), so seed sets may differ across configurations — but the
        // statistical quality must match the indexed-stream mode.
        let g = erdos_renyi(
            300,
            2400,
            WeightModel::UniformRandom { seed: 21 },
            false,
            55,
        );
        let model = DiffusionModel::IndependentCascade;
        let p = ImmParams::new(5, 0.5, model, 31);
        let world = ripples_comm::ThreadWorld::new(3);
        let lf = world
            .run(|comm| imm_distributed_with_rng(comm, &g, &p, DistRngMode::LeapFrog))
            .pop()
            .unwrap();
        let idx = world
            .run(|comm| imm_distributed_with_rng(comm, &g, &p, DistRngMode::IndexedStreams))
            .pop()
            .unwrap();
        assert_eq!(lf.seeds.len(), idx.seeds.len());
        let factory = StreamFactory::new(404);
        let s_lf = estimate_spread(&g, model, &lf.seeds, 800, &factory);
        let s_idx = estimate_spread(&g, model, &idx.seeds, 800, &factory);
        let ratio = s_lf / s_idx.max(1.0);
        assert!(
            (0.9..=1.1).contains(&ratio),
            "leap-frog quality diverged: {s_lf} vs {s_idx}"
        );
    }

    #[test]
    fn leapfrog_ranks_agree_with_each_other() {
        // Within one world size, all ranks still return the same answer.
        let g = erdos_renyi(200, 1500, WeightModel::UniformRandom { seed: 3 }, false, 66);
        let p = ImmParams::new(4, 0.5, DiffusionModel::IndependentCascade, 9);
        let world = ripples_comm::ThreadWorld::new(4);
        let results =
            world.run(|comm| imm_distributed_with_rng(comm, &g, &p, DistRngMode::LeapFrog));
        for r in &results[1..] {
            assert_eq!(r.seeds, results[0].seeds);
            assert_eq!(r.theta, results[0].theta);
        }
    }
}
