//! Property-based tests for the core algorithm components.

use proptest::prelude::*;
use ripples_core::select::{
    select_seeds_fused_with_stats, select_seeds_hypergraph, select_seeds_lazy,
    select_seeds_partitioned, select_seeds_sequential,
};
use ripples_core::theta::{log_binomial, ThetaSchedule};
use ripples_diffusion::{HyperGraph, RrrCollection};

/// Random RRR collections over a small vertex universe.
fn collection_strategy() -> impl Strategy<Value = (u32, RrrCollection)> {
    (4u32..40).prop_flat_map(|n| {
        let set = prop::collection::btree_set(0..n, 0..8);
        let sets = prop::collection::vec(set, 0..60);
        (Just(n), sets).prop_map(|(n, sets)| {
            let mut c = RrrCollection::new();
            for s in sets {
                let v: Vec<u32> = s.into_iter().collect();
                c.push(&v);
            }
            (n, c)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All selection engines agree on the greedy outcome for any collection.
    #[test]
    fn selection_engines_equivalent((n, c) in collection_strategy(), k in 1u32..10) {
        let seq = select_seeds_sequential(&c, n, k);
        for p in [1usize, 2, 3, 7] {
            let par = select_seeds_partitioned(&c, n, k, p);
            prop_assert_eq!(&par, &seq, "partitioned({}) diverged", p);
        }
        let hyper = HyperGraph::build(c.clone(), n);
        let hg = select_seeds_hypergraph(&hyper, n, k);
        prop_assert_eq!(&hg, &seq, "hypergraph engine diverged");
        for p in [1usize, 2, 3, 5, 64] {
            let (fused, stats) = select_seeds_fused_with_stats(&c, n, k, p);
            prop_assert_eq!(&fused, &seq, "fused({}) diverged", p);
            prop_assert_eq!(
                stats.index_bytes,
                select_seeds_fused_with_stats(&c, n, k, 1).1.index_bytes,
                "index size must not depend on the partition count"
            );
        }
        let lazy = select_seeds_lazy(&c, n, k);
        prop_assert_eq!(lazy.covered, seq.covered, "lazy engine lost coverage");
        prop_assert_eq!(lazy.marginal_gains, seq.marginal_gains);
    }

    /// Greedy bookkeeping invariants: distinct seeds, non-increasing
    /// marginal gains, coverage consistent with gains.
    #[test]
    fn selection_invariants((n, c) in collection_strategy(), k in 1u32..10) {
        let sel = select_seeds_sequential(&c, n, k);
        let mut sorted = sel.seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sel.seeds.len(), "duplicate seeds");
        for w in sel.marginal_gains.windows(2) {
            prop_assert!(w[1] <= w[0], "gains must be non-increasing (submodularity)");
        }
        let gain_total: u64 = sel.marginal_gains.iter().sum();
        prop_assert_eq!(gain_total as usize, sel.covered, "gains must sum to coverage");
        prop_assert!(sel.covered <= c.len());
    }

    /// Every RRR storage backend yields the bitwise-identical greedy
    /// `Selection` as the flat reference, under every eager select engine
    /// (`Lazy` is excluded: on compressed stores it maps to the eager
    /// direct engine, which matches coverage but not CELF's skip order).
    #[test]
    fn storage_backends_select_identically((n, c) in collection_strategy(), k in 1u32..8) {
        use ripples_core::{select_with_engine_store, SelectEngine};
        use ripples_diffusion::{DynRrrStore, RrrStore, RrrStoreKind, StorageConfig};
        let reference = select_seeds_sequential(&c, n, k);
        for kind in [RrrStoreKind::Flat, RrrStoreKind::Varint, RrrStoreKind::Bitpack, RrrStoreKind::Spill] {
            let budget = (kind == RrrStoreKind::Spill).then_some(2048);
            let mut store = DynRrrStore::new(StorageConfig { kind, budget }, n);
            for s in c.iter() {
                RrrStore::push(&mut store, s);
            }
            for engine in [
                SelectEngine::Auto,
                SelectEngine::Sequential,
                SelectEngine::Partitioned,
                SelectEngine::Hypergraph,
                SelectEngine::Fused,
            ] {
                let (sel, _) = select_with_engine_store(engine, &store, n, k, 3);
                prop_assert_eq!(
                    &sel, &reference,
                    "store {:?} engine {:?} diverged", kind, engine
                );
            }
        }
    }

    /// Hypergraph degree equals the number of samples containing the vertex.
    #[test]
    fn hypergraph_index_consistent((n, c) in collection_strategy()) {
        let hyper = HyperGraph::build(c.clone(), n);
        for v in 0..n {
            let expect = c.iter().filter(|s| s.binary_search(&v).is_ok()).count();
            prop_assert_eq!(hyper.degree(v), expect, "degree mismatch at {}", v);
            for &sid in hyper.samples_containing(v) {
                prop_assert!(c.get(sid as usize).binary_search(&v).is_ok());
            }
        }
    }

    /// log C(n,k) identities: symmetry and Pascal's rule.
    #[test]
    fn log_binomial_identities(n in 1u64..400, k in 0u64..400) {
        prop_assume!(k <= n);
        let lhs = log_binomial(n, k);
        prop_assert!((lhs - log_binomial(n, n - k)).abs() < 1e-6);
        if k >= 1 && k < n {
            // C(n,k) = C(n-1,k-1) + C(n-1,k) ⇒ log-sum-exp check.
            let a = log_binomial(n - 1, k - 1);
            let b = log_binomial(n - 1, k);
            let m = a.max(b);
            let combined = m + ((a - m).exp() + (b - m).exp()).ln();
            prop_assert!((lhs - combined).abs() < 1e-6, "Pascal failed: {} vs {}", lhs, combined);
        }
    }

    /// θ-schedule monotonicity: smaller ε and larger k never reduce the
    /// final θ at a fixed lower bound; round budgets increase with x.
    #[test]
    fn theta_schedule_monotone(
        n in 100u64..1_000_000,
        k in 1u64..100,
        eps_idx in 0usize..4,
        lb_frac in 0.001f64..1.0,
    ) {
        let eps_values = [0.2, 0.3, 0.4, 0.5];
        let eps = eps_values[eps_idx];
        prop_assume!(k <= n);
        let s = ThetaSchedule::new(n, k, eps, 1.0);
        let lb = (n as f64 * lb_frac).max(1.0);
        let theta = s.final_theta(lb);
        prop_assert!(theta > 0);
        // Tighter ε ⇒ more samples.
        if eps_idx > 0 {
            let tighter = ThetaSchedule::new(n, k, eps_values[eps_idx - 1], 1.0);
            prop_assert!(tighter.final_theta(lb) >= theta);
        }
        // Bigger k ⇒ more samples (logcnk grows for k ≤ n/2).
        if k < n / 2 {
            let bigger = ThetaSchedule::new(n, k + 1, eps, 1.0);
            prop_assert!(bigger.final_theta(lb) >= theta);
        }
        // Round budgets strictly increase.
        let mut prev = 0usize;
        for x in 1..=s.max_rounds().min(8) {
            let b = s.round_budget(x);
            prop_assert!(b > prev);
            prev = b;
        }
        // Larger LB ⇒ smaller θ.
        prop_assert!(s.final_theta(lb * 2.0) <= theta);
    }

    /// The LB certification test is monotone in the coverage fraction.
    #[test]
    fn round_success_monotone(frac in 0.0f64..1.0) {
        let s = ThetaSchedule::new(10_000, 20, 0.5, 1.0);
        for x in 1..=s.max_rounds() {
            if s.round_succeeds(x, frac) {
                prop_assert!(s.round_succeeds(x, (frac + 0.1).min(1.0)));
                // Deeper rounds have lower thresholds.
                if x < s.max_rounds() {
                    prop_assert!(s.round_succeeds(x + 1, frac));
                }
            }
        }
    }
}
