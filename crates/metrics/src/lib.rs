//! Lock-free live metrics for long IMM runs.
//!
//! `ripples-trace` (PR 2) answers *what happened* at event granularity and
//! [`RunReport`] answers *what happened* in aggregate — but both only after
//! the run finishes. This crate answers *what is happening right now*: a
//! process-global registry of preregistered counters and gauges, each one a
//! single `AtomicU64` cell, plus a background sampler thread that snapshots
//! the whole registry on a fixed cadence into an in-memory time series.
//!
//! The contract mirrors the tracer's:
//!
//! - **Disabled** (the default), every record call is one relaxed atomic
//!   load and a branch — cheap enough to leave instrumentation in the
//!   hottest sampling loops unconditionally.
//! - **Enabled**, a counter update is one relaxed `fetch_add` on a
//!   preregistered cell; there is no name lookup, no allocation, and no
//!   lock anywhere on the hot path. Gauges use plain `store` or
//!   `fetch_max` (for peak-tracking byte gauges).
//!
//! The catalog is a fixed enum ([`Metric`]) rather than a string-keyed map
//! for the same reason the tracer uses [`TraceName`]: hot paths index an
//! array, and the export layer owns the names.
//!
//! **Rank policy.** The in-process [`ThreadWorld`] runs every rank as a
//! thread of one process, so all ranks share this registry: counters are
//! *rank-reduced sums* (total samples across the world, total comm bytes
//! moved) and peak gauges are cross-rank maxima. A run at world size 1, 2,
//! or 4 therefore reports the same totals for the same work — the exported
//! series says so via `"rank_policy": "reduced"`.
//!
//! Exports:
//!
//! - [`TimeSeries::to_json`] — schema-versioned JSON
//!   (`ripples-metrics-v1`), one row per sampler tick.
//! - [`prometheus_text`] — Prometheus text exposition of one snapshot,
//!   the format a future serve mode's `/metrics` endpoint would return.
//!
//! [`RunReport`]: ../ripples_core/obs/struct.RunReport.html
//! [`TraceName`]: ../ripples_trace/enum.TraceName.html
//! [`ThreadWorld`]: ../ripples_comm/struct.ThreadWorld.html

mod sampler;

pub use sampler::{
    pulse, start_sampler, start_sampler_with_cap, ProgressFn, Sample, SamplerHandle, TimeSeries,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema tag written into every exported JSON time series.
pub const SCHEMA: &str = "ripples-metrics-v1";

/// Every metric the registry knows about. The discriminant is the cell
/// index; the export layer maps it to a stable snake_case name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    // --- gauges -----------------------------------------------------------
    /// Current engine phase (see [`phase`]).
    Phase = 0,
    /// Current martingale round (1-based; 0 outside estimation).
    Round,
    /// RRR samples the current phase is working towards (round budget
    /// during estimation, final θ during the top-up).
    ThetaTarget,
    /// Live RRR storage footprint, bytes (peak across ranks).
    RrrBytes,
    /// Live inverted-index footprint, bytes (peak across ranks).
    IndexBytes,
    /// Live per-worker arena footprint, bytes (peak across ranks).
    ArenaBytes,
    /// Live fused-lane mask footprint, bytes (peak across ranks).
    MaskBytes,
    /// Ranks the comm layer has declared dead so far.
    DegradedRanks,
    /// Resident sketch footprint of the serve mode, bytes.
    SketchBytes,
    /// p50 query latency of the serve mode, nanoseconds (power-of-two
    /// histogram upper bound).
    QueryP50Nanos,
    /// p99 query latency of the serve mode, nanoseconds (power-of-two
    /// histogram upper bound).
    QueryP99Nanos,
    /// Per-rank resident graph footprint, bytes (peak across ranks; the
    /// replicated engines report the full graph, the sharded engine its
    /// vertex-cut shard).
    GraphBytes,
    // --- counters ---------------------------------------------------------
    /// RRR sets generated (world total).
    SamplesGenerated,
    /// Edges examined while growing RRR sets (world total).
    EdgesExamined,
    /// Greedy selection steps taken (lazy pops + seed commits).
    SelectSteps,
    /// RRR-index entries touched during selection.
    SelectEntriesTouched,
    /// Seeds committed by the selector.
    SeedsSelected,
    /// Fused-kernel CSR passes completed.
    FusedPasses,
    /// Collective operations issued (world total).
    CommOps,
    /// Payload bytes moved by collectives (world total).
    CommBytes,
    /// Comm attempts retried after injected faults.
    CommRetries,
    /// Comm ops dropped by fault injection.
    CommDroppedOps,
    /// Queries answered by the resident serve mode.
    QueriesServed,
    /// Batched frontier exchanges completed by the graph-sharded engine.
    FrontierExchanges,
}

/// Metric kinds, mirroring the Prometheus data model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing while enabled; exported with a `_total`
    /// suffix.
    Counter,
    /// Point-in-time level (phase ids, live byte footprints).
    Gauge,
}

impl Metric {
    /// Number of registered metrics (cells in the registry).
    pub const COUNT: usize = 24;

    /// Every metric, in cell order — the column order of exported series.
    pub const ALL: [Metric; Self::COUNT] = [
        Metric::Phase,
        Metric::Round,
        Metric::ThetaTarget,
        Metric::RrrBytes,
        Metric::IndexBytes,
        Metric::ArenaBytes,
        Metric::MaskBytes,
        Metric::DegradedRanks,
        Metric::SketchBytes,
        Metric::QueryP50Nanos,
        Metric::QueryP99Nanos,
        Metric::GraphBytes,
        Metric::SamplesGenerated,
        Metric::EdgesExamined,
        Metric::SelectSteps,
        Metric::SelectEntriesTouched,
        Metric::SeedsSelected,
        Metric::FusedPasses,
        Metric::CommOps,
        Metric::CommBytes,
        Metric::CommRetries,
        Metric::CommDroppedOps,
        Metric::QueriesServed,
        Metric::FrontierExchanges,
    ];

    /// Stable export name (snake_case, no namespace prefix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Metric::Phase => "phase",
            Metric::Round => "round",
            Metric::ThetaTarget => "theta_target",
            Metric::RrrBytes => "rrr_bytes",
            Metric::IndexBytes => "index_bytes",
            Metric::ArenaBytes => "arena_bytes",
            Metric::MaskBytes => "mask_bytes",
            Metric::DegradedRanks => "degraded_ranks",
            Metric::SketchBytes => "sketch_bytes",
            Metric::QueryP50Nanos => "query_p50_nanos",
            Metric::QueryP99Nanos => "query_p99_nanos",
            Metric::GraphBytes => "graph_bytes",
            Metric::SamplesGenerated => "samples_generated",
            Metric::EdgesExamined => "edges_examined",
            Metric::SelectSteps => "select_steps",
            Metric::SelectEntriesTouched => "select_entries_touched",
            Metric::SeedsSelected => "seeds_selected",
            Metric::FusedPasses => "fused_passes",
            Metric::CommOps => "comm_ops",
            Metric::CommBytes => "comm_bytes",
            Metric::CommRetries => "comm_retries",
            Metric::CommDroppedOps => "comm_dropped_ops",
            Metric::QueriesServed => "queries_served",
            Metric::FrontierExchanges => "frontier_exchanges",
        }
    }

    /// Counter or gauge.
    #[must_use]
    pub fn kind(self) -> Kind {
        match self {
            Metric::Phase
            | Metric::Round
            | Metric::ThetaTarget
            | Metric::RrrBytes
            | Metric::IndexBytes
            | Metric::ArenaBytes
            | Metric::MaskBytes
            | Metric::DegradedRanks
            | Metric::SketchBytes
            | Metric::QueryP50Nanos
            | Metric::QueryP99Nanos
            | Metric::GraphBytes => Kind::Gauge,
            _ => Kind::Counter,
        }
    }

    /// One-line help string for the Prometheus exposition.
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            Metric::Phase => {
                "Current engine phase (0 idle, 1 estimate-theta, 2 sample, 3 select, 4 simulate)"
            }
            Metric::Round => "Current martingale estimation round (1-based, 0 outside estimation)",
            Metric::ThetaTarget => "RRR samples the current phase is working towards",
            Metric::RrrBytes => "Live RRR storage footprint in bytes (peak across ranks)",
            Metric::IndexBytes => "Live inverted-index footprint in bytes (peak across ranks)",
            Metric::ArenaBytes => "Live per-worker arena footprint in bytes (peak across ranks)",
            Metric::MaskBytes => "Live fused-lane mask footprint in bytes (peak across ranks)",
            Metric::DegradedRanks => "Ranks declared dead by the comm layer",
            Metric::SketchBytes => "Resident sketch footprint held by the serve mode in bytes",
            Metric::QueryP50Nanos => "Median serve-query latency in nanoseconds",
            Metric::QueryP99Nanos => "99th-percentile serve-query latency in nanoseconds",
            Metric::GraphBytes => "Per-rank resident graph footprint in bytes (peak across ranks)",
            Metric::SamplesGenerated => "RRR sets generated across all ranks",
            Metric::EdgesExamined => "Edges examined while growing RRR sets",
            Metric::SelectSteps => "Greedy selection steps (lazy pops and seed commits)",
            Metric::SelectEntriesTouched => "RRR-index entries touched during selection",
            Metric::SeedsSelected => "Seeds committed by the selector",
            Metric::FusedPasses => "Fused-kernel CSR passes completed",
            Metric::CommOps => "Collective operations issued across all ranks",
            Metric::CommBytes => "Payload bytes moved by collectives",
            Metric::CommRetries => "Communication attempts retried after faults",
            Metric::CommDroppedOps => "Communication operations dropped by fault injection",
            Metric::QueriesServed => "Queries answered by the resident serve mode",
            Metric::FrontierExchanges => "Batched frontier exchanges by the graph-sharded engine",
        }
    }
}

/// Engine-phase gauge values, the domain of [`Metric::Phase`].
pub mod phase {
    /// No engine running (or between phases).
    pub const IDLE: u64 = 0;
    /// Martingale θ-estimation rounds.
    pub const ESTIMATE_THETA: u64 = 1;
    /// RRR sampling (estimation batches and the final top-up).
    pub const SAMPLE: u64 = 2;
    /// Greedy seed selection.
    pub const SELECT: u64 = 3;
    /// Monte-Carlo influence simulation.
    pub const SIMULATE: u64 = 4;

    /// Human-readable phase name for progress lines and docs.
    #[must_use]
    pub fn name(v: u64) -> &'static str {
        match v {
            ESTIMATE_THETA => "estimate-theta",
            SAMPLE => "sample",
            SELECT => "select",
            SIMULATE => "simulate",
            _ => "idle",
        }
    }
}

/// Histogram bucket count: bucket `i` holds observations whose value needs
/// `i` significant bits (`0 → 0`, `i → (2^(i-1), 2^i]`), bucket 32 is the
/// overflow — the same power-of-two layout as the `RunReport` histogram so
/// the two are comparable.
pub const HIST_BUCKETS: usize = 33;

// Registry storage. `const` item so the array initializer is allowed.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(false);
static CELLS: [AtomicU64; Metric::COUNT] = [ZERO; Metric::COUNT];
static HIST: [AtomicU64; HIST_BUCKETS] = [ZERO; HIST_BUCKETS];
static HIST_COUNT: AtomicU64 = AtomicU64::new(0);
static HIST_SUM: AtomicU64 = AtomicU64::new(0);
/// Wall-clock origin of the current session; cold path only (enable and
/// snapshot), so a mutex is fine.
static START: Mutex<Option<Instant>> = Mutex::new(None);

/// Whether the registry is recording. One relaxed load — callers branch on
/// this before doing any work, so disabled instrumentation costs a load
/// and a predictable branch.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every cell and starts recording. Call before the run; the
/// sampler timestamps ticks relative to this instant.
pub fn enable() {
    // Zero first, then flip the flag, so concurrent writers never see a
    // half-reset registry recorded as live data.
    for cell in &CELLS {
        cell.store(0, Ordering::Relaxed);
    }
    for bucket in &HIST {
        bucket.store(0, Ordering::Relaxed);
    }
    HIST_COUNT.store(0, Ordering::Relaxed);
    HIST_SUM.store(0, Ordering::Relaxed);
    *START.lock().expect("metrics start lock poisoned") = Some(Instant::now());
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops recording. Cells keep their final values for a last snapshot.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Adds `v` to a counter. No-op while disabled.
#[inline]
pub fn add(metric: Metric, v: u64) {
    if !enabled() {
        return;
    }
    CELLS[metric as usize].fetch_add(v, Ordering::Relaxed);
}

/// Sets a gauge to `v`. No-op while disabled.
#[inline]
pub fn set(metric: Metric, v: u64) {
    if !enabled() {
        return;
    }
    CELLS[metric as usize].store(v, Ordering::Relaxed);
}

/// Raises a gauge to at least `v` (peak tracking). No-op while disabled.
#[inline]
pub fn set_max(metric: Metric, v: u64) {
    if !enabled() {
        return;
    }
    CELLS[metric as usize].fetch_max(v, Ordering::Relaxed);
}

/// Current value of a cell (live, relaxed). Reads are allowed while
/// disabled so a final export can still see the last session's values.
#[must_use]
pub fn get(metric: Metric) -> u64 {
    CELLS[metric as usize].load(Ordering::Relaxed)
}

/// Records one RRR-set size into the power-of-two histogram. No-op while
/// disabled.
#[inline]
pub fn observe_rrr_size(len: u64) {
    if !enabled() {
        return;
    }
    let bucket = if len == 0 {
        0
    } else {
        (64 - u64::leading_zeros(len) as usize).min(HIST_BUCKETS - 1)
    };
    HIST[bucket].fetch_add(1, Ordering::Relaxed);
    HIST_COUNT.fetch_add(1, Ordering::Relaxed);
    HIST_SUM.fetch_add(len, Ordering::Relaxed);
}

/// Milliseconds since [`enable`] (0 if never enabled).
#[must_use]
pub fn elapsed_ms() -> u64 {
    START
        .lock()
        .expect("metrics start lock poisoned")
        .map_or(0, |t| t.elapsed().as_millis() as u64)
}

/// Reads every cell into one consistent-enough snapshot (relaxed reads —
/// a snapshot may interleave with concurrent updates, which is fine for
/// telemetry).
#[must_use]
pub fn snapshot() -> Sample {
    let mut values = [0u64; Metric::COUNT];
    for (slot, cell) in values.iter_mut().zip(CELLS.iter()) {
        *slot = cell.load(Ordering::Relaxed);
    }
    let mut hist = [0u64; HIST_BUCKETS];
    for (slot, bucket) in hist.iter_mut().zip(HIST.iter()) {
        *slot = bucket.load(Ordering::Relaxed);
    }
    Sample {
        t_ms: elapsed_ms(),
        values,
        hist,
        hist_count: HIST_COUNT.load(Ordering::Relaxed),
        hist_sum: HIST_SUM.load(Ordering::Relaxed),
    }
}

/// Prometheus text exposition (version 0.0.4) of one snapshot. Counters
/// get the conventional `_total` suffix, the RRR-size histogram becomes a
/// cumulative `le`-bucketed histogram, and everything is namespaced
/// `ripples_`.
#[must_use]
pub fn prometheus_text(sample: &Sample) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    for metric in Metric::ALL {
        let suffix = match metric.kind() {
            Kind::Counter => "_total",
            Kind::Gauge => "",
        };
        let name = metric.name();
        let kind = match metric.kind() {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
        };
        let _ = writeln!(out, "# HELP ripples_{name}{suffix} {}", metric.help());
        let _ = writeln!(out, "# TYPE ripples_{name}{suffix} {kind}");
        let _ = writeln!(
            out,
            "ripples_{name}{suffix} {}",
            sample.values[metric as usize]
        );
    }
    let _ = writeln!(
        out,
        "# HELP ripples_rrr_size Size distribution of generated RRR sets"
    );
    let _ = writeln!(out, "# TYPE ripples_rrr_size histogram");
    let mut cumulative = 0u64;
    for (i, count) in sample.hist.iter().enumerate() {
        cumulative += count;
        if i + 1 < HIST_BUCKETS {
            // Bucket i covers sizes <= 2^i - except bucket 0, which is
            // exactly 0 ... 1; the le bound 2^i is still cumulative-true.
            let le = 1u64 << i;
            let _ = writeln!(out, "ripples_rrr_size_bucket{{le=\"{le}\"}} {cumulative}");
        }
    }
    let _ = writeln!(
        out,
        "ripples_rrr_size_bucket{{le=\"+Inf\"}} {}",
        sample.hist_count
    );
    let _ = writeln!(out, "ripples_rrr_size_sum {}", sample.hist_sum);
    let _ = writeln!(out, "ripples_rrr_size_count {}", sample.hist_count);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The registry is process-global, so tests that enable/disable it
    /// must not interleave.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_is_silent() {
        let _g = lock();
        disable();
        let before = get(Metric::SamplesGenerated);
        add(Metric::SamplesGenerated, 17);
        set(Metric::Phase, 3);
        set_max(Metric::RrrBytes, 1 << 30);
        observe_rrr_size(8);
        assert_eq!(get(Metric::SamplesGenerated), before);
    }

    #[test]
    fn enable_resets_and_records() {
        let _g = lock();
        enable();
        assert_eq!(get(Metric::SamplesGenerated), 0);
        add(Metric::SamplesGenerated, 3);
        set(Metric::Phase, phase::SAMPLE);
        set_max(Metric::RrrBytes, 100);
        set_max(Metric::RrrBytes, 50);
        observe_rrr_size(5);
        observe_rrr_size(0);
        let s = snapshot();
        assert_eq!(s.values[Metric::SamplesGenerated as usize], 3);
        assert_eq!(s.values[Metric::Phase as usize], phase::SAMPLE);
        assert_eq!(s.values[Metric::RrrBytes as usize], 100);
        assert_eq!(s.hist_count, 2);
        assert_eq!(s.hist_sum, 5);
        assert_eq!(s.hist[0], 1); // the 0-size observation
        assert_eq!(s.hist[3], 1); // 5 needs 3 bits -> bucket 3
        disable();
    }

    #[test]
    fn catalog_is_consistent() {
        for (i, metric) in Metric::ALL.iter().enumerate() {
            assert_eq!(*metric as usize, i, "ALL order must match discriminants");
        }
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::COUNT, "metric names must be unique");
    }

    #[test]
    fn prometheus_shape() {
        let _g = lock();
        enable();
        add(Metric::CommBytes, 1024);
        observe_rrr_size(7);
        let text = prometheus_text(&snapshot());
        disable();
        assert!(text.contains("# TYPE ripples_comm_bytes_total counter"));
        assert!(text.contains("ripples_comm_bytes_total 1024"));
        assert!(text.contains("# TYPE ripples_phase gauge"));
        assert!(text.contains("ripples_rrr_size_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("ripples_rrr_size_sum 7"));
    }
}
