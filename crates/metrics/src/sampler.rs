//! Background registry sampler: a thread that snapshots the registry on a
//! fixed cadence into a bounded in-memory time series.
//!
//! Two things wake the sampler: its timer tick, and [`pulse`] — an
//! edge-trigger the engines fire at phase boundaries. Timed ticks give
//! the series its even spine; pulses guarantee that short phases (a
//! 5 ms selection pass at the end of a long run) still land at least one
//! sample with their gauge values visible, no matter the cadence.
//!
//! The series is memory-bounded: when it reaches its cap the sampler
//! halves the resolution (drops every other retained sample and doubles
//! its tick interval), so an arbitrarily long run costs `O(cap)` memory
//! and keeps an evenly spaced view of its whole history — the classic
//! downsample-by-two scheme flight recorders use.

use crate::{snapshot, Metric, SCHEMA};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default cap on retained samples (~900 KiB of series at the full
/// [`crate::HIST_BUCKETS`]-wide row size).
pub const DEFAULT_SAMPLE_CAP: usize = 2048;

/// One sampler tick: every registry cell at one instant.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Milliseconds since [`crate::enable`].
    pub t_ms: u64,
    /// Cell values in [`Metric::ALL`] order.
    pub values: [u64; Metric::COUNT],
    /// RRR-size histogram buckets.
    pub hist: [u64; crate::HIST_BUCKETS],
    /// Total histogram observations.
    pub hist_count: u64,
    /// Sum of all observed values.
    pub hist_sum: u64,
}

impl Sample {
    /// Value of `metric` in this sample.
    #[must_use]
    pub fn value(&self, metric: Metric) -> u64 {
        self.values[metric as usize]
    }
}

/// Per-tick observer, called on the sampler thread — the CLI hangs its
/// `--progress` heartbeat here. Pulse-triggered samples do not fire the
/// observer (they would make heartbeat spacing erratic).
pub type ProgressFn = Box<dyn FnMut(&Sample) + Send>;

/// The finished product of a sampler session.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    /// The cadence the sampler was started with, milliseconds.
    pub interval_ms: u64,
    /// How many times the series halved its resolution to stay bounded
    /// (the effective tail cadence is `interval_ms << downsample_halvings`).
    pub downsample_halvings: u32,
    /// Retained samples, oldest first. The first sample is taken at
    /// start, the last right after shutdown is requested, so a series
    /// always brackets the run it observed.
    pub samples: Vec<Sample>,
}

impl TimeSeries {
    /// Serializes the series as schema-versioned JSON
    /// (`ripples-metrics-v1`). Rows are columnar-compact: `"v"` holds the
    /// cell values in the order given by the top-level `"metrics"`
    /// catalog, so the file is self-describing without repeating names
    /// per row.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + self.samples.len() * 256);
        let _ = write!(
            out,
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"rank_policy\": \"reduced\",\n  \"interval_ms\": {},\n  \"downsample_halvings\": {},\n  \"metrics\": [",
            self.interval_ms, self.downsample_halvings
        );
        for (i, metric) in Metric::ALL.iter().enumerate() {
            let kind = match metric.kind() {
                crate::Kind::Counter => "counter",
                crate::Kind::Gauge => "gauge",
            };
            let _ = write!(
                out,
                "{}\n    {{\"name\": \"{}\", \"kind\": \"{kind}\"}}",
                if i == 0 { "" } else { "," },
                metric.name()
            );
        }
        out.push_str("\n  ],\n  \"rrr_size_hist\": {\"buckets\": \"pow2\", \"len\": ");
        let _ = write!(out, "{}", crate::HIST_BUCKETS);
        out.push_str("},\n  \"samples\": [");
        for (i, s) in self.samples.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"t_ms\": {}, \"v\": [",
                if i == 0 { "" } else { "," },
                s.t_ms
            );
            for (j, v) in s.values.iter().enumerate() {
                let _ = write!(out, "{}{v}", if j == 0 { "" } else { "," });
            }
            let _ = write!(
                out,
                "], \"hist_count\": {}, \"hist_sum\": {}, \"hist\": [",
                s.hist_count, s.hist_sum
            );
            for (j, v) in s.hist.iter().enumerate() {
                let _ = write!(out, "{}{v}", if j == 0 { "" } else { "," });
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Wake-up channel between record sites ([`pulse`]) and the sampler
/// thread: a counter under a mutex plus a condvar the thread parks on.
struct Signal {
    state: Mutex<SignalState>,
    cv: Condvar,
}

struct SignalState {
    stop: bool,
    pulses: u64,
}

enum Wake {
    Tick,
    Pulse,
    Stop,
}

/// The signal of the currently running sampler, if any — the target of
/// [`pulse`]. One sampler at a time; starting a second replaces the
/// slot (both keep running, but only the newest gets pulses).
static ACTIVE: Mutex<Option<Arc<Signal>>> = Mutex::new(None);

/// Edge-trigger: asks the running sampler (if any) to snapshot now
/// instead of waiting out its tick. Engines call this at phase
/// boundaries so even sub-cadence phases appear in the series. Cheap
/// no-op when no sampler is running; never blocks on the sampler.
pub fn pulse() {
    let sig = ACTIVE.lock().ok().and_then(|guard| guard.clone());
    if let Some(sig) = sig {
        if let Ok(mut st) = sig.state.lock() {
            st.pulses += 1;
            sig.cv.notify_all();
        }
    }
}

/// Handle to a running sampler thread. Dropping it without calling
/// [`SamplerHandle::finalize`] stops and joins the thread, discarding
/// the series.
pub struct SamplerHandle {
    signal: Arc<Signal>,
    thread: Option<JoinHandle<TimeSeries>>,
}

impl SamplerHandle {
    /// Stops the sampler and returns its series. The thread takes one
    /// last snapshot after seeing the stop flag, so the series always
    /// includes the final registry state; no samples are appended after
    /// this returns.
    #[must_use]
    pub fn finalize(mut self) -> TimeSeries {
        self.shutdown();
        match self.thread.take().map(JoinHandle::join) {
            Some(Ok(series)) => series,
            _ => TimeSeries {
                interval_ms: 0,
                downsample_halvings: 0,
                samples: Vec::new(),
            },
        }
    }

    fn shutdown(&self) {
        if let Ok(mut st) = self.signal.state.lock() {
            st.stop = true;
            self.signal.cv.notify_all();
        }
        if let Ok(mut active) = ACTIVE.lock() {
            if active
                .as_ref()
                .is_some_and(|sig| Arc::ptr_eq(sig, &self.signal))
            {
                *active = None;
            }
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Starts a sampler thread ticking every `interval`, retaining at most
/// [`DEFAULT_SAMPLE_CAP`] samples.
#[must_use]
pub fn start_sampler(interval: Duration, observer: Option<ProgressFn>) -> SamplerHandle {
    start_sampler_with_cap(interval, DEFAULT_SAMPLE_CAP, observer)
}

/// [`start_sampler`] with an explicit sample cap (floored at 8); the cap
/// bounds series memory regardless of run length, cadence, or pulse
/// volume.
#[must_use]
pub fn start_sampler_with_cap(
    interval: Duration,
    cap: usize,
    mut observer: Option<ProgressFn>,
) -> SamplerHandle {
    let cap = cap.max(8);
    let interval = interval.max(Duration::from_millis(1));
    let signal = Arc::new(Signal {
        state: Mutex::new(SignalState {
            stop: false,
            pulses: 0,
        }),
        cv: Condvar::new(),
    });
    *ACTIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::clone(&signal));
    let sig = Arc::clone(&signal);
    let thread = std::thread::Builder::new()
        .name("ripples-metrics-sampler".into())
        .spawn(move || {
            let mut series = TimeSeries {
                interval_ms: interval.as_millis() as u64,
                downsample_halvings: 0,
                samples: vec![snapshot()],
            };
            let mut tick = interval;
            loop {
                let wake = wait_next(&sig, tick);
                let sample = snapshot();
                if let (Some(f), Wake::Tick) = (observer.as_mut(), &wake) {
                    f(&sample);
                }
                series.samples.push(sample);
                if matches!(wake, Wake::Stop) {
                    break;
                }
                if series.samples.len() >= cap {
                    // Halve resolution: keep every other sample and slow
                    // the tick, so memory stays bounded and the retained
                    // points stay evenly spaced.
                    let mut keep = false;
                    series.samples.retain(|_| {
                        keep = !keep;
                        keep
                    });
                    tick = tick.saturating_mul(2);
                    series.downsample_halvings += 1;
                }
            }
            series
        })
        .expect("spawning metrics sampler thread");
    SamplerHandle {
        signal,
        thread: Some(thread),
    }
}

/// Parks until the next tick deadline, a pulse, or stop — whichever
/// comes first.
fn wait_next(sig: &Signal, tick: Duration) -> Wake {
    let deadline = Instant::now() + tick;
    let mut st = sig
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let seen = st.pulses;
    loop {
        if st.stop {
            return Wake::Stop;
        }
        if st.pulses != seen {
            return Wake::Pulse;
        }
        let now = Instant::now();
        if now >= deadline {
            return Wake::Tick;
        }
        st = match sig.cv.wait_timeout(st, deadline - now) {
            Ok((guard, _)) => guard,
            Err(poisoned) => poisoned.into_inner().0,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::MutexGuard;

    fn lock() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn sampler_brackets_the_run_and_stops() {
        let _g = lock();
        crate::enable();
        let handle = start_sampler(Duration::from_millis(5), None);
        crate::add(Metric::SamplesGenerated, 41);
        std::thread::sleep(Duration::from_millis(30));
        crate::add(Metric::SamplesGenerated, 1);
        let series = handle.finalize();
        crate::disable();
        assert!(series.samples.len() >= 3, "start + ticks + final");
        let last = series.samples.last().expect("non-empty");
        assert_eq!(
            last.value(Metric::SamplesGenerated),
            42,
            "final sample sees final state"
        );
    }

    #[test]
    fn tiny_cadence_stays_bounded() {
        let _g = lock();
        crate::enable();
        let handle = start_sampler_with_cap(Duration::from_millis(1), 16, None);
        std::thread::sleep(Duration::from_millis(120));
        let series = handle.finalize();
        crate::disable();
        assert!(
            series.samples.len() <= 16,
            "cap respected: {}",
            series.samples.len()
        );
        assert!(
            series.downsample_halvings >= 1,
            "tiny cadence must downsample"
        );
    }

    #[test]
    fn pulses_insert_samples_between_ticks() {
        let _g = lock();
        crate::enable();
        // Slow cadence: every retained mid-run sample must come from a
        // pulse, not the timer.
        let handle = start_sampler(Duration::from_secs(60), None);
        for i in 0..5 {
            crate::set(Metric::Phase, i);
            pulse();
            std::thread::sleep(Duration::from_millis(5));
        }
        let series = handle.finalize();
        crate::disable();
        assert!(
            series.samples.len() >= 6,
            "5 pulses + brackets, got {}",
            series.samples.len()
        );
    }

    #[test]
    fn pulse_without_sampler_is_a_noop() {
        let _g = lock();
        pulse(); // must not panic or block
    }

    #[test]
    fn json_is_valid_and_versioned() {
        let _g = lock();
        crate::enable();
        crate::observe_rrr_size(9);
        let handle = start_sampler(Duration::from_millis(2), None);
        std::thread::sleep(Duration::from_millis(10));
        let series = handle.finalize();
        crate::disable();
        let json = series.to_json();
        ripples_trace::validate_json(&json).expect("series must be valid JSON");
        assert!(json.contains("\"schema\": \"ripples-metrics-v1\""));
        assert!(json.contains("\"rank_policy\": \"reduced\""));
        assert!(json.contains("\"samples_generated\""));
    }

    #[test]
    fn observer_sees_ticks() {
        let _g = lock();
        crate::enable();
        let seen = Arc::new(AtomicBool::new(false));
        let seen_cb = Arc::clone(&seen);
        let handle = start_sampler(
            Duration::from_millis(2),
            Some(Box::new(move |s: &Sample| {
                if s.t_ms > 0 {
                    seen_cb.store(true, Ordering::SeqCst);
                }
            })),
        );
        std::thread::sleep(Duration::from_millis(30));
        let _ = handle.finalize();
        crate::disable();
        assert!(seen.load(Ordering::SeqCst), "observer must fire on ticks");
    }
}
