//! k-core decomposition by iterative peeling.

use ripples_graph::Graph;

/// Returns each vertex's core number under the *total* degree
/// (out + in, i.e. the undirected view), using the O(m) bucket-peeling
/// algorithm of Batagelj & Zaveršnik.
#[must_use]
pub fn kcore_decomposition(graph: &Graph) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = (0..graph.num_vertices())
        .map(|v| (graph.out_degree(v) + graph.in_degree(v)) as u32)
        .collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d as usize + 1] += 1;
    }
    for i in 0..=max_deg {
        bin[i + 1] += bin[i];
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0u32; n];
    let mut cursor = bin.clone();
    for v in 0..n as u32 {
        let d = degree[v as usize] as usize;
        pos[v as usize] = cursor[d];
        vert[cursor[d]] = v;
        cursor[d] += 1;
    }

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize];
        // Peel v: lower each heavier neighbor's degree by one, keeping the
        // bucket array consistent.
        let neighbors: Vec<u32> = graph
            .out_neighbors(v)
            .iter()
            .chain(graph.in_neighbors(v).iter())
            .copied()
            .collect();
        for u in neighbors {
            let ui = u as usize;
            if degree[ui] > degree[v as usize] {
                let du = degree[ui] as usize;
                let pu = pos[ui];
                let pw = bin[du];
                let w = vert[pw];
                if u != w {
                    vert.swap(pu, pw);
                    pos[ui] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[ui] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::GraphBuilder;

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let mut b = GraphBuilder::new(4);
        b.add_undirected(0, 1, 1.0).unwrap();
        b.add_undirected(1, 2, 1.0).unwrap();
        b.add_undirected(2, 0, 1.0).unwrap();
        b.add_undirected(0, 3, 1.0).unwrap();
        let g = b.build().unwrap();
        let core = kcore_decomposition(&g);
        // Undirected degree here counts both arc directions: triangle
        // vertices peel at 4 (2 undirected neighbors × 2 arcs), pendant at 2.
        assert_eq!(core[3], 2);
        assert_eq!(core[0], 4);
        assert_eq!(core[1], 4);
        assert_eq!(core[2], 4);
    }

    #[test]
    fn isolated_vertices_core_zero() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(kcore_decomposition(&g), vec![0, 0, 0]);
    }

    #[test]
    fn core_is_monotone_under_subgraph_density() {
        // Clique of 4 has higher core than a path.
        let mut b = GraphBuilder::new(8);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_undirected(i, j, 1.0).unwrap();
            }
        }
        for u in 4..7u32 {
            b.add_undirected(u, u + 1, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let core = kcore_decomposition(&g);
        assert!(core[0] > core[5]);
    }

    #[test]
    fn empty() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(kcore_decomposition(&g).is_empty());
    }
}
