//! Community detection by synchronous label propagation, plus modularity.
//!
//! The paper's related work (§2) discusses a line of influence-maximization
//! accelerations that mine communities first — including the authors' own
//! prior system (Halappanavar et al. \[14\]) — and notes their "major
//! shortcoming": disjoint subgraphs cannot account for inter-community
//! edges. To reproduce that comparison (`ripples_core::community`), we need
//! a community detector; label propagation (Raghavan et al. 2007) is the
//! standard near-linear-time choice.

use ripples_graph::{Graph, Vertex};
use ripples_rng::SplitMix64;

/// Result of a community detection pass.
#[derive(Clone, Debug)]
pub struct Communities {
    /// Dense community label per vertex (`0..count`).
    pub labels: Vec<u32>,
    /// Number of communities.
    pub count: u32,
}

impl Communities {
    /// Community sizes indexed by label.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count as usize];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }
}

/// Label propagation over the undirected view of `graph`.
///
/// Each round, every vertex adopts the most frequent label among its
/// (in+out) neighbors, ties broken by smallest label; iteration stops at a
/// fixed point or after `max_rounds`. Vertex visit order is shuffled once
/// with `seed` to break the synchronous-update oscillation pathologies.
/// Labels are densified before returning.
#[must_use]
pub fn label_propagation(graph: &Graph, max_rounds: u32, seed: u64) -> Communities {
    let n = graph.num_vertices() as usize;
    if n == 0 {
        return Communities {
            labels: Vec::new(),
            count: 0,
        };
    }
    let mut labels: Vec<u32> = (0..n as u32).collect();
    // Fixed random visit order (asynchronous updates within a round).
    let mut order: Vec<Vertex> = (0..n as u32).collect();
    let mut rng = SplitMix64::for_stream(seed, 0x4C50);
    for i in (1..n).rev() {
        let j = rng.bounded_u64((i + 1) as u64) as usize;
        order.swap(i, j);
    }

    let mut freq: Vec<u32> = vec![0; n];
    let mut touched: Vec<u32> = Vec::new();
    for _ in 0..max_rounds {
        let mut changed = false;
        for &v in &order {
            touched.clear();
            let mut best_label = labels[v as usize];
            let mut best_count = 0u32;
            for &u in graph
                .out_neighbors(v)
                .iter()
                .chain(graph.in_neighbors(v).iter())
            {
                let l = labels[u as usize];
                if freq[l as usize] == 0 {
                    touched.push(l);
                }
                freq[l as usize] += 1;
                let c = freq[l as usize];
                if c > best_count || (c == best_count && l < best_label) {
                    best_count = c;
                    best_label = l;
                }
            }
            for &l in &touched {
                freq[l as usize] = 0;
            }
            if best_count > 0 && best_label != labels[v as usize] {
                labels[v as usize] = best_label;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Densify labels to 0..count in order of first appearance.
    let mut remap = vec![u32::MAX; n];
    let mut count = 0u32;
    for l in &mut labels {
        let slot = &mut remap[*l as usize];
        if *slot == u32::MAX {
            *slot = count;
            count += 1;
        }
        *l = *slot;
    }
    Communities { labels, count }
}

/// Newman modularity of a label assignment over the undirected view
/// (each directed arc counted once as half an undirected edge).
#[must_use]
pub fn modularity(graph: &Graph, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), graph.num_vertices() as usize);
    let m2 = graph.num_edges() as f64; // Σ undirected degrees = 2m = arc count for symmetric graphs
    if m2 == 0.0 {
        return 0.0;
    }
    let classes = labels.iter().copied().max().map_or(0, |x| x + 1) as usize;
    let mut internal = vec![0.0f64; classes];
    let mut degree_sum = vec![0.0f64; classes];
    for v in 0..graph.num_vertices() {
        let c = labels[v as usize] as usize;
        degree_sum[c] += (graph.out_degree(v) + graph.in_degree(v)) as f64 / 2.0;
        for &u in graph.out_neighbors(v) {
            if labels[u as usize] as usize == c {
                // Each undirected internal edge appears as two arcs, giving
                // internal[c] = 2·L_c; divided by m2 = 2m below → L_c/m.
                internal[c] += 1.0;
            }
        }
    }
    (0..classes)
        .map(|c| internal[c] / m2 - (degree_sum[c] / m2).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::GraphBuilder;

    /// Two dense cliques with one bridge.
    fn two_cliques() -> Graph {
        let mut b = GraphBuilder::new(12);
        for base in [0u32, 6] {
            for i in 0..6u32 {
                for j in (i + 1)..6 {
                    b.add_undirected(base + i, base + j, 0.5).unwrap();
                }
            }
        }
        b.add_undirected(0, 6, 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn separates_cliques() {
        let g = two_cliques();
        let c = label_propagation(&g, 20, 1);
        assert!(c.count >= 2, "found only {} communities", c.count);
        // Vertices within each clique share a label.
        for i in 1..6 {
            assert_eq!(c.labels[i], c.labels[1], "first clique fragmented");
        }
        for i in 7..12 {
            assert_eq!(c.labels[i], c.labels[7], "second clique fragmented");
        }
        assert_ne!(c.labels[1], c.labels[7], "cliques merged");
    }

    #[test]
    fn labels_are_dense() {
        let g = two_cliques();
        let c = label_propagation(&g, 20, 3);
        let max = c.labels.iter().copied().max().unwrap();
        assert_eq!(max + 1, c.count);
        let sizes = c.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 12);
        assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn good_split_has_high_modularity() {
        let g = two_cliques();
        let split = [0u32, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        let all_one = [0u32; 12];
        let q_split = modularity(&g, &split);
        let q_one = modularity(&g, &all_one);
        assert!(q_split > 0.3, "q_split = {q_split}");
        assert!(q_split > q_one);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        let c = label_propagation(&g, 5, 1);
        assert_eq!(c.count, 0);
        assert!(c.labels.is_empty());
    }

    #[test]
    fn isolated_vertices_keep_own_labels() {
        let g = GraphBuilder::new(4).build().unwrap();
        let c = label_propagation(&g, 5, 1);
        assert_eq!(c.count, 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = two_cliques();
        let a = label_propagation(&g, 20, 9);
        let b = label_propagation(&g, 20, 9);
        assert_eq!(a.labels, b.labels);
    }
}
