//! Degree centrality.

use ripples_graph::Graph;

/// Which degree to rank by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegreeKind {
    /// Out-degree.
    Out,
    /// In-degree.
    In,
    /// Out-degree + in-degree (the "connections" count used in §5).
    Total,
}

/// Vertices ranked by descending degree (ties by id).
#[must_use]
pub fn degree_ranking(graph: &Graph, kind: DegreeKind) -> Vec<u32> {
    let scores: Vec<f64> = (0..graph.num_vertices())
        .map(|v| match kind {
            DegreeKind::Out => graph.out_degree(v) as f64,
            DegreeKind::In => graph.in_degree(v) as f64,
            DegreeKind::Total => (graph.out_degree(v) + graph.in_degree(v)) as f64,
        })
        .collect();
    crate::ranking_from_scores(&scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::GraphBuilder;

    #[test]
    fn star_center_ranks_first() {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(degree_ranking(&g, DegreeKind::Out)[0], 0);
        assert_eq!(degree_ranking(&g, DegreeKind::Total)[0], 0);
        // In-degree: center has none; spokes tie and sort by id.
        assert_eq!(degree_ranking(&g, DegreeKind::In)[0], 1);
    }
}
