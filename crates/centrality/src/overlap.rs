//! Plain top-k set-overlap helpers used by the §5 case-study comparison
//! ("nine of them (9/30, 30%) were also predicted by IMM…").

use std::collections::HashSet;

/// Number of common elements in the two top-`k` prefixes.
#[must_use]
pub fn top_k_overlap(a: &[u32], b: &[u32], k: usize) -> usize {
    let ka: HashSet<u32> = a.iter().take(k).copied().collect();
    b.iter().take(k).filter(|v| ka.contains(v)).count()
}

/// Jaccard similarity of the two top-`k` prefixes.
#[must_use]
pub fn jaccard_top_k(a: &[u32], b: &[u32], k: usize) -> f64 {
    let sa: HashSet<u32> = a.iter().take(k).copied().collect();
    let sb: HashSet<u32> = b.iter().take(k).copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_counts() {
        assert_eq!(top_k_overlap(&[1, 2, 3, 4], &[3, 4, 5, 6], 4), 2);
        assert_eq!(top_k_overlap(&[1, 2, 3, 4], &[3, 4, 5, 6], 2), 0);
        assert_eq!(top_k_overlap(&[], &[1], 3), 0);
    }

    #[test]
    fn jaccard_values() {
        assert!((jaccard_top_k(&[1, 2], &[1, 2], 2) - 1.0).abs() < 1e-12);
        assert!((jaccard_top_k(&[1, 2], &[3, 4], 2)).abs() < 1e-12);
        assert!((jaccard_top_k(&[1, 2], &[2, 3], 2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard_top_k(&[], &[], 5), 1.0);
    }

    #[test]
    fn k_truncates() {
        // Only the prefixes participate.
        assert_eq!(top_k_overlap(&[9, 1, 2], &[9, 7, 8], 1), 1);
    }
}
