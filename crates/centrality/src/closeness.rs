//! Closeness centrality.

use rayon::prelude::*;
use ripples_graph::traversal::bfs_distances;
use ripples_graph::Graph;

/// Harmonic closeness centrality: `C(v) = Σ_{u ≠ v, reachable} 1/d(v,u)`.
///
/// The harmonic variant handles disconnected graphs gracefully (unreachable
/// vertices contribute zero rather than poisoning the mean), which matters
/// for the sparse biology networks of §5.
#[must_use]
pub fn closeness_centrality(graph: &Graph) -> Vec<f64> {
    let n = graph.num_vertices();
    (0..n)
        .into_par_iter()
        .map(|v| {
            let dist = bfs_distances(graph, v);
            dist.iter()
                .filter(|&&d| d != 0 && d != u32::MAX)
                .map(|&d| 1.0 / f64::from(d))
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::GraphBuilder;

    #[test]
    fn path_center_highest() {
        let mut b = GraphBuilder::new(5);
        for u in 0..4 {
            b.add_undirected(u, u + 1, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let c = closeness_centrality(&g);
        // Center: 1/1+1/1+1/2+1/2 = 3.0; end: 1+1/2+1/3+1/4 ≈ 2.083.
        assert!((c[2] - 3.0).abs() < 1e-9);
        assert!(c[2] > c[1] && c[1] > c[0]);
    }

    #[test]
    fn disconnected_contributes_zero() {
        let g = GraphBuilder::new(3).build().unwrap();
        let c = closeness_centrality(&g);
        assert_eq!(c, vec![0.0, 0.0, 0.0]);
    }
}
