//! Rank-biased overlap (Webber, Moffat, Zobel 2010).
//!
//! The paper validates IMMOPT against the reference IMM implementation by
//! computing the RBO of the two seed rankings ("we … observed high
//! rank-biased overlaps of the two outputs", §4). RBO compares two
//! indefinite rankings with geometrically decaying weight on deeper ranks:
//!
//! ```text
//! RBO(S, T, p) = (1 − p) Σ_{d≥1} p^{d−1} · |S[..d] ∩ T[..d]| / d
//! ```
//!
//! This implementation computes the *extrapolated* RBO (RBO_ext) over two
//! finite prefixes, the variant used in practice.

use std::collections::HashSet;

/// Extrapolated rank-biased overlap of two rankings with persistence `p`.
///
/// `p` close to 1 weighs deep ranks more; 0.9 (the authors' default) puts
/// ~86% of the weight on the top 10. Returns a value in `[0, 1]`.
///
/// Rankings are rankings **of sets**: each id may appear at most once. A
/// duplicate id trips a `debug_assert`; in builds without debug assertions
/// the ranking is first reduced to the first occurrence of each id (the RBO
/// of the deduplicated rankings is returned). An earlier revision fed
/// duplicates straight into the overlap bookkeeping, which credited a second
/// overlap for an id that had already been matched and inflated the score.
///
/// ```
/// use ripples_centrality::rank_biased_overlap;
///
/// let a = [3, 1, 4, 5];
/// assert!((rank_biased_overlap(&a, &a, 0.9) - 1.0).abs() < 1e-9);
/// assert!(rank_biased_overlap(&[1, 2], &[3, 4], 0.9) < 1e-9);
/// ```
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn rank_biased_overlap(a: &[u32], b: &[u32], p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "persistence must be in (0, 1)");
    let a = first_occurrences(a);
    let b = first_occurrences(b);
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let k = a.len().min(b.len());
    let mut seen_a: HashSet<u32> = HashSet::with_capacity(k);
    let mut seen_b: HashSet<u32> = HashSet::with_capacity(k);
    let mut overlap = 0usize;
    let mut sum = 0.0f64;
    let mut weight = 1.0f64; // p^{d-1}
    let mut agreement_at_k = 0.0;
    for d in 1..=k {
        let x = a[d - 1];
        let y = b[d - 1];
        if x == y {
            overlap += 1;
        } else {
            if seen_b.remove(&x) {
                overlap += 1;
            } else {
                seen_a.insert(x);
            }
            if seen_a.remove(&y) {
                overlap += 1;
            } else {
                seen_b.insert(y);
            }
        }
        agreement_at_k = overlap as f64 / d as f64;
        sum += weight * agreement_at_k;
        weight *= p;
    }
    // Extrapolate: assume agreement stays at its depth-k value beyond the
    // evaluated prefix. Σ_{d>k} p^{d-1} = p^k / (1-p).
    (1.0 - p) * sum + agreement_at_k * p.powi(k as i32)
}

/// Reduces a ranking to the first occurrence of each id, debug-asserting
/// that there was nothing to reduce (rankings are rankings of sets).
fn first_occurrences(r: &[u32]) -> Vec<u32> {
    let mut seen: HashSet<u32> = HashSet::with_capacity(r.len());
    let deduped: Vec<u32> = r.iter().copied().filter(|&v| seen.insert(v)).collect();
    debug_assert_eq!(
        deduped.len(),
        r.len(),
        "ranking contains duplicate ids: {r:?}"
    );
    deduped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_are_one() {
        let r = [5u32, 3, 9, 1];
        let v = rank_biased_overlap(&r, &r, 0.9);
        assert!((v - 1.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn disjoint_rankings_are_zero() {
        let v = rank_biased_overlap(&[1, 2, 3], &[4, 5, 6], 0.9);
        assert!(v.abs() < 1e-9, "{v}");
    }

    #[test]
    fn partial_overlap_in_between() {
        let v = rank_biased_overlap(&[1, 2, 3, 4], &[1, 2, 5, 6], 0.9);
        assert!(v > 0.3 && v < 1.0, "{v}");
    }

    #[test]
    fn top_heavy_weighting() {
        // Agreement at the top counts more than at the bottom.
        let top_agree = rank_biased_overlap(&[1, 9, 8], &[1, 5, 6], 0.7);
        let bottom_agree = rank_biased_overlap(&[9, 8, 1], &[5, 6, 1], 0.7);
        assert!(top_agree > bottom_agree);
    }

    #[test]
    fn order_of_arguments_irrelevant() {
        let a = [1u32, 2, 3, 4, 5];
        let b = [2u32, 1, 3, 7, 8];
        let x = rank_biased_overlap(&a, &b, 0.9);
        let y = rank_biased_overlap(&b, &a, 0.9);
        assert!((x - y).abs() < 1e-12);
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(rank_biased_overlap(&[], &[], 0.9), 1.0);
        assert_eq!(rank_biased_overlap(&[1], &[], 0.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "persistence")]
    fn invalid_p_panics() {
        let _ = rank_biased_overlap(&[1], &[1], 1.0);
    }

    /// Regression (ISSUE 5): the old doc example `[3, 1, 4, 1, 5]` carried a
    /// duplicate `1`. Self-comparison must still be exactly 1 under the set
    /// semantics (in builds where the duplicate isn't rejected outright).
    #[test]
    #[cfg(not(debug_assertions))]
    fn doc_example_with_duplicate_still_self_identical() {
        let a = [3u32, 1, 4, 1, 5];
        let v = rank_biased_overlap(&a, &a, 0.9);
        assert!((v - 1.0).abs() < 1e-9, "{v}");
    }

    /// Regression (ISSUE 5): duplicates must not be credited as extra
    /// overlap. Pre-fix, `a = [1, 3, 1]` vs `b = [2, 1, 1]` matched the id 1
    /// twice (once via the seen-set, once via the positional `x == y` at
    /// depth 3) and returned ≈0.585 at p = 0.9; the set semantics
    /// (`a → [1, 3]`, `b → [2, 1]`) give exactly
    /// `(1-p)·(0 + p/2) + p²/2 = 0.45`.
    #[test]
    #[cfg(not(debug_assertions))]
    fn duplicates_not_double_counted() {
        let v = rank_biased_overlap(&[1, 3, 1], &[2, 1, 1], 0.9);
        assert!((v - 0.45).abs() < 1e-12, "{v}");
        // Identical to comparing the deduplicated rankings directly.
        let deduped = rank_biased_overlap(&[1, 3], &[2, 1], 0.9);
        assert!((v - deduped).abs() < 1e-15);
    }

    /// Regression (ISSUE 5): with debug assertions on, duplicate ids are a
    /// contract violation and must be rejected loudly (pre-fix they were
    /// silently — and wrongly — scored).
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate ids")]
    fn duplicates_rejected_in_debug() {
        let _ = rank_biased_overlap(&[1, 3, 1], &[2, 1, 1], 0.9);
    }

    #[test]
    fn swapped_pair_close_to_one() {
        // Swapping two adjacent items should barely move RBO.
        let v = rank_biased_overlap(&[1, 2, 3, 4, 5, 6], &[2, 1, 3, 4, 5, 6], 0.9);
        assert!(v > 0.9, "{v}");
    }
}
