//! Betweenness centrality via Brandes' algorithm.
//!
//! §5 of the paper compares IMM seed sets against betweenness rankings on
//! the biology networks ("a measure of how many shortest paths linking two
//! random nodes pass through the node in question"). Brandes (2001) computes
//! exact betweenness in O(nm) for unweighted graphs by accumulating
//! dependencies over one BFS DAG per source; sources are embarrassingly
//! parallel, which rayon exploits here.

use rayon::prelude::*;
use ripples_graph::{Graph, Vertex};
use ripples_rng::SplitMix64;

/// Per-source Brandes accumulation state.
struct BrandesScratch {
    dist: Vec<i32>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    order: Vec<Vertex>,
    queue: std::collections::VecDeque<Vertex>,
}

impl BrandesScratch {
    fn new(n: usize) -> Self {
        Self {
            dist: vec![-1; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            order: Vec::with_capacity(n),
            queue: std::collections::VecDeque::new(),
        }
    }

    /// Accumulates source `s`'s dependency contribution into `out`.
    fn accumulate(&mut self, graph: &Graph, s: Vertex, out: &mut [f64]) {
        self.dist.fill(-1);
        self.sigma.fill(0.0);
        self.delta.fill(0.0);
        self.order.clear();
        self.queue.clear();

        self.dist[s as usize] = 0;
        self.sigma[s as usize] = 1.0;
        self.queue.push_back(s);
        while let Some(u) = self.queue.pop_front() {
            self.order.push(u);
            let du = self.dist[u as usize];
            for &v in graph.out_neighbors(u) {
                let vi = v as usize;
                if self.dist[vi] < 0 {
                    self.dist[vi] = du + 1;
                    self.queue.push_back(v);
                }
                if self.dist[vi] == du + 1 {
                    self.sigma[vi] += self.sigma[u as usize];
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        for &u in self.order.iter().rev() {
            let du = self.dist[u as usize];
            for &v in graph.out_neighbors(u) {
                if self.dist[v as usize] == du + 1 {
                    let share = self.sigma[u as usize] / self.sigma[v as usize]
                        * (1.0 + self.delta[v as usize]);
                    self.delta[u as usize] += share;
                }
            }
            if u != s {
                out[u as usize] += self.delta[u as usize];
            }
        }
    }
}

/// Exact betweenness centrality (directed; unweighted shortest paths).
#[must_use]
pub fn betweenness_centrality(graph: &Graph) -> Vec<f64> {
    let sources: Vec<Vertex> = (0..graph.num_vertices()).collect();
    betweenness_from_sources(graph, &sources)
}

/// Pivot-sampled approximate betweenness: accumulates `pivots` random
/// sources and rescales by `n / pivots`, the standard estimator.
///
/// Exact when `pivots >= n`.
#[must_use]
pub fn betweenness_centrality_sampled(graph: &Graph, pivots: u32, seed: u64) -> Vec<f64> {
    let n = graph.num_vertices();
    if pivots >= n {
        return betweenness_centrality(graph);
    }
    let mut rng = SplitMix64::for_stream(seed, 0x4243);
    // Sample pivots without replacement via partial Fisher–Yates.
    let mut pool: Vec<Vertex> = (0..n).collect();
    let mut sources = Vec::with_capacity(pivots as usize);
    for i in 0..pivots as usize {
        let j = i + rng.bounded_u64((n as usize - i) as u64) as usize;
        pool.swap(i, j);
        sources.push(pool[i]);
    }
    let mut scores = betweenness_from_sources(graph, &sources);
    let scale = f64::from(n) / f64::from(pivots);
    for s in &mut scores {
        *s *= scale;
    }
    scores
}

fn betweenness_from_sources(graph: &Graph, sources: &[Vertex]) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    sources
        .par_chunks(64.max(sources.len() / 64))
        .map(|chunk| {
            let mut scratch = BrandesScratch::new(n);
            let mut local = vec![0.0f64; n];
            for &s in chunk {
                scratch.accumulate(graph, s, &mut local);
            }
            local
        })
        .reduce(
            || vec![0.0f64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::GraphBuilder;

    /// Undirected path 0-1-2-3-4 encoded as two directed edges per link.
    fn path5() -> Graph {
        let mut b = GraphBuilder::new(5);
        for u in 0..4 {
            b.add_undirected(u, u + 1, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn path_betweenness_known_values() {
        // For the undirected path counted over ordered pairs:
        // vertex 2 lies on 0-3,0-4,1-3,1-4,3-0,4-0,3-1,4-1 → 8 pairs
        // plus 1↔3 through 2 … classic values: [0, 6, 8, 6, 0] (ordered).
        let g = path5();
        let b = betweenness_centrality(&g);
        assert_eq!(b[0], 0.0);
        assert_eq!(b[4], 0.0);
        assert!((b[1] - 6.0).abs() < 1e-9, "b1 = {}", b[1]);
        assert!((b[2] - 8.0).abs() < 1e-9, "b2 = {}", b[2]);
        assert!((b[3] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn star_center_dominates() {
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.add_undirected(0, v, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let bc = betweenness_centrality(&g);
        // Center lies on every spoke-to-spoke shortest path: 5*4 = 20.
        assert!((bc[0] - 20.0).abs() < 1e-9);
        for b in bc.iter().skip(1) {
            assert_eq!(*b, 0.0);
        }
    }

    #[test]
    fn parallel_split_matches_reference() {
        // Two shortest paths 0->1->3 and 0->2->3 share credit.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(0, 2, 1.0).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        let g = b.build().unwrap();
        let bc = betweenness_centrality(&g);
        assert!((bc[1] - 0.5).abs() < 1e-9);
        assert!((bc[2] - 0.5).abs() < 1e-9);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[3], 0.0);
    }

    #[test]
    fn sampled_with_all_pivots_is_exact() {
        let g = path5();
        let exact = betweenness_centrality(&g);
        let sampled = betweenness_centrality_sampled(&g, 5, 1);
        for (a, b) in exact.iter().zip(&sampled) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_is_unbiased_ballpark() {
        let g = path5();
        let exact = betweenness_centrality(&g);
        // Average many sampled runs; expectation matches the exact value.
        let runs = 200;
        let mut acc = [0.0; 5];
        for r in 0..runs {
            let s = betweenness_centrality_sampled(&g, 2, r);
            for (a, b) in acc.iter_mut().zip(&s) {
                *a += b / f64::from(runs as u32);
            }
        }
        for (a, e) in acc.iter().zip(&exact) {
            assert!((a - e).abs() < 1.5, "mean {a} vs exact {e}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(betweenness_centrality(&g).is_empty());
    }
}
