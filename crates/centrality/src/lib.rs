//! Graph-centrality toolkit and rank-comparison metrics.
//!
//! The paper's Section 5 case study compares IMM seed sets against the
//! topological measures biologists traditionally use — vertex degree and
//! betweenness centrality — and §4 validates implementation outputs with
//! rank-biased overlap. This crate provides those comparators from scratch:
//!
//! * [`degree`] — degree rankings.
//! * [`betweenness`] — Brandes' exact algorithm (parallel over sources) and
//!   a pivot-sampled approximation for larger graphs.
//! * [`closeness`] — BFS-based closeness centrality.
//! * [`kcore`] — k-core decomposition (peeling), the structure used by the
//!   parallel seed-selection heuristic of Wu et al. discussed in related
//!   work.
//! * [`rbo`] — rank-biased overlap (Webber et al.), the measure the paper
//!   uses to validate IMMOPT against the reference implementation.
//! * [`overlap`] — plain top-k intersection/Jaccard helpers.

#![warn(missing_docs)]

pub mod betweenness;
pub mod closeness;
pub mod community;
pub mod degree;
pub mod kcore;
pub mod overlap;
pub mod pagerank;
pub mod rbo;

pub use betweenness::{betweenness_centrality, betweenness_centrality_sampled};
pub use closeness::closeness_centrality;
pub use community::{label_propagation, modularity, Communities};
pub use degree::{degree_ranking, DegreeKind};
pub use kcore::kcore_decomposition;
pub use overlap::{jaccard_top_k, top_k_overlap};
pub use pagerank::pagerank;
pub use rbo::rank_biased_overlap;

/// Returns vertex ids sorted by descending score, ties broken by id so the
/// ranking is deterministic.
#[must_use]
pub fn ranking_from_scores(scores: &[f64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    order.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_sorts_desc_with_stable_ties() {
        let r = ranking_from_scores(&[1.0, 3.0, 3.0, 0.5]);
        assert_eq!(r, vec![1, 2, 0, 3]);
    }

    #[test]
    fn ranking_empty() {
        assert!(ranking_from_scores(&[]).is_empty());
    }
}
