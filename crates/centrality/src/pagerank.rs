//! PageRank — the remaining standard "important node" measure biologists
//! reach for alongside degree and betweenness (§5 comparison set).

use ripples_graph::Graph;

/// Power-iteration PageRank with damping `d` and uniform teleport.
///
/// Dangling mass (vertices with no out-edges) is redistributed uniformly,
/// the standard correction. Iterates until the L1 change drops below `tol`
/// or `max_iters` passes, whichever first; returns scores summing to 1.
///
/// # Panics
///
/// Panics unless `0 < d < 1` and `tol > 0`.
#[must_use]
pub fn pagerank(graph: &Graph, d: f64, tol: f64, max_iters: u32) -> Vec<f64> {
    assert!(d > 0.0 && d < 1.0, "damping must be in (0, 1)");
    assert!(tol > 0.0, "tolerance must be positive");
    let n = graph.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        next.fill(0.0);
        let mut dangling = 0.0f64;
        for v in 0..graph.num_vertices() {
            let out = graph.out_degree(v);
            let r = rank[v as usize];
            if out == 0 {
                dangling += r;
            } else {
                let share = r / out as f64;
                for &u in graph.out_neighbors(v) {
                    next[u as usize] += share;
                }
            }
        }
        let teleport = (1.0 - d) * uniform + d * dangling * uniform;
        let mut delta = 0.0f64;
        for (nx, r) in next.iter_mut().zip(&rank) {
            *nx = d * *nx + teleport;
            delta += (*nx - r).abs();
        }
        std::mem::swap(&mut rank, &mut next);
        if delta < tol {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripples_graph::GraphBuilder;

    #[test]
    fn scores_sum_to_one() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 0, 1.0).unwrap();
        b.add_edge(3, 0, 1.0).unwrap();
        let g = b.build().unwrap();
        let pr = pagerank(&g, 0.85, 1e-10, 200);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "sum {sum}");
    }

    #[test]
    fn sink_of_a_star_ranks_highest() {
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.add_edge(v, 0, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let pr = pagerank(&g, 0.85, 1e-10, 200);
        for v in 1..6 {
            assert!(pr[0] > pr[v], "center {} vs spoke {}", pr[0], pr[v]);
        }
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut b = GraphBuilder::new(4);
        for v in 0..4 {
            b.add_edge(v, (v + 1) % 4, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let pr = pagerank(&g, 0.85, 1e-12, 500);
        for &r in &pr {
            assert!((r - 0.25).abs() < 1e-9, "{pr:?}");
        }
    }

    #[test]
    fn handles_all_dangling() {
        let g = GraphBuilder::new(3).build().unwrap();
        let pr = pagerank(&g, 0.85, 1e-10, 100);
        for &r in &pr {
            assert!((r - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(pagerank(&g, 0.85, 1e-10, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let g = GraphBuilder::new(1).build().unwrap();
        let _ = pagerank(&g, 1.0, 1e-10, 10);
    }
}
