//! `ripples` — command-line influence maximization.
//!
//! Loads a SNAP-style edge list (or generates a named stand-in) and runs
//! the chosen IMM engine, printing the seed set and full instrumentation.
//!
//! ```text
//! ripples --input graph.txt [--undirected] [--weights uniform|wc|const:P|tri]
//!         [--engine opt|baseline|mt|dist|partitioned|sharded|community|celf|tim|degdiscount]
//!         [--model ic|lt] [--k K] [--epsilon E] [--seed S]
//!         [--threads T | --ranks R] [--simulate TRIALS]
//!         [--select auto|sequential|partitioned|lazy|hypergraph|fused]
//!         [--sample auto|reference|fused]
//!         [--rrr-store flat|varint|bitpack|spill] [--rrr-budget BYTES]
//!         [--report pretty|json] [--report-out FILE]
//!         [--trace FILE] [--trace-buffer EVENTS]
//!         [--metrics FILE] [--metrics-interval DUR] [--metrics-prom FILE]
//!         [--progress]
//!         [--chaos-seed S] [--chaos-rate R]
//! ripples --standin com-Orkut --scale-div 64 ...
//! ripples --gen ba:2000:8 [--gen-seed S] ...   # synthetic BA / ER graphs
//! ```
//!
//! `--select` picks the greedy max-cover engine for the `opt` and `mt`
//! engines (default `auto`, a cost-model dispatch between `fused` and
//! `partitioned`; every choice returns the same seed set — see
//! EXPERIMENTS.md for the memory/speed trade-offs).
//!
//! `--sample` picks the RRR sampling kernel for the `opt`, `mt`, and `tim`
//! engines (default `reference`). `fused` advances 64 cascades per frontier
//! pass with bitmask state; `auto` probes the first batch and switches to
//! the fused kernel only when mean cascade size repays the fusing overhead.
//! The fused kernel draws a different RNG schedule, so its seed sets are
//! statistically (not bitwise) equivalent to the reference — see
//! EXPERIMENTS.md § "Choosing a sampling engine".
//!
//! `--rrr-store` picks the RRR storage backend for the `opt`, `mt`, `dist`,
//! `partitioned`, `sharded`, and `tim` engines (default `flat`). `varint`
//! gap-encodes
//! each sorted set with LEB128 varints, `bitpack` stores ids at
//! `⌈log₂ n⌉` bits, and `spill` seals varint blocks and writes them to a
//! temporary file once resident bytes exceed `--rrr-budget` (default 1 GiB),
//! streaming them back per selection round. Every backend returns the same
//! seed set as `flat` at the same `--seed` — see EXPERIMENTS.md
//! § "Choosing an RRR storage backend".
//!
//! `--report` prints the engine's full [`RunReport`] (phase span tree, work
//! counters, RRR size histogram, communication accounting) to stderr —
//! `pretty` (alias `text`) for humans, `json` for one machine-readable
//! line; `--report-out FILE` writes it to a file instead. Seeds stay on
//! stdout either way. Heuristic engines (community, celf, degdiscount) run
//! no IMM pipeline and emit no report.
//!
//! `--trace FILE` enables the structured event tracer for the run and
//! writes a Chrome Trace Event Format JSON file (open in `chrome://tracing`
//! or <https://ui.perfetto.dev>; one track per worker thread / rank).
//! `--trace-buffer` caps the per-worker ring size in events (default
//! 16384, env `RIPPLES_TRACE_BUFFER`); overflowing events are dropped and
//! counted, never blocking the run.
//!
//! `--metrics FILE` enables the live metrics registry for the run and
//! writes a schema-versioned JSON time series (`ripples-metrics-v1`) of
//! every counter and gauge, sampled on a background thread every
//! `--metrics-interval` (default 250ms; accepts `50ms`, `1s`, or a plain
//! millisecond count). `--metrics-prom FILE` writes the final registry
//! state as Prometheus text exposition. `--progress` prints a live
//! heartbeat to stderr each tick (phase, θ progress, sampling rate, ETA,
//! live MB) and can run without either output file. Each exporter needs
//! its own path — colliding output files are rejected up front. See
//! EXPERIMENTS.md § "Live-monitoring a run".
//!
//! `--chaos-seed S` injects a deterministic fault schedule (dropped, delayed
//! and truncated collectives) into the `dist`/`partitioned`/`sharded`
//! engines'
//! communicator; `--chaos-rate R` sets the per-op fault probability (default
//! 0.02). The run completes through the retry/degradation layer and prints a
//! robustness summary (retries, dropped ops, degraded ranks); the same seed
//! always reproduces the same faults. Other engines ignore the flags with a
//! warning.

use ripples_bench::Args;
use ripples_comm::{FaultComm, FaultPlan, ThreadWorld};
use ripples_core::obs::trace;
use ripples_core::{
    celf::celf_greedy,
    community::community_imm,
    dist::{imm_distributed, imm_distributed_with_storage, DistRngMode, DistSelectMode},
    dist_partitioned::{imm_partitioned, imm_partitioned_with_storage},
    dist_sharded::{imm_sharded, imm_sharded_with_storage},
    heuristics::degree_discount_ic,
    mt::imm_multithreaded_with_storage,
    seq::{imm_baseline, immopt_sequential, immopt_sequential_with_storage},
    tim::tim_plus_with_storage,
    ImmParams, SampleEngine, SelectEngine,
};
use ripples_diffusion::{estimate_spread, DiffusionModel, RrrStoreKind, StorageConfig};
use ripples_graph::generators::{barabasi_albert, erdos_renyi, standin};
use ripples_graph::io::{read_edge_list_file, EdgeListOptions, VertexIds};
use ripples_graph::{Graph, GraphStats, WeightModel};
use ripples_rng::StreamFactory;

fn load_graph(args: &Args, model: DiffusionModel) -> Graph {
    let weights = match args.get("weights").unwrap_or("uniform") {
        "wc" => WeightModel::WeightedCascade,
        "tri" => WeightModel::Trivalency { seed: 7 },
        w if w.starts_with("const:") => {
            let p: f32 = w[6..].parse().expect("--weights const:P needs a number");
            WeightModel::Constant(p)
        }
        _ => WeightModel::UniformRandom { seed: 7 },
    };
    let lt_normalize = model == DiffusionModel::LinearThreshold;
    if let Some(path) = args.get("input") {
        let options = EdgeListOptions {
            vertex_ids: VertexIds::Remap,
            undirected: args.flag("undirected"),
            default_prob: 1.0,
            weights: Some(weights),
        };
        // LT normalization for loaded graphs happens through the builder in
        // io; re-normalize by rebuilding when requested.
        let g = read_edge_list_file(path, options).unwrap_or_else(|e| {
            eprintln!("error: cannot load {path}: {e}");
            std::process::exit(1);
        });
        if lt_normalize {
            // Rebuild with normalization through a weighted builder.
            let mut b = ripples_graph::GraphBuilder::new(g.num_vertices()).assign_weights(weights);
            for (u, v, _) in g.edges() {
                b.add_arc(u, v).expect("edge in range");
            }
            b.normalize_for_lt().build().expect("rebuild")
        } else {
            g
        }
    } else if let Some(name) = args.get("standin") {
        let spec = standin(name).unwrap_or_else(|| {
            eprintln!("error: unknown stand-in `{name}`; see ripples-graph's catalog");
            std::process::exit(1);
        });
        let divisor = args.parse_or("scale-div", spec.default_divisor);
        spec.build(divisor, weights, lt_normalize)
    } else if let Some(spec) = args.get("gen") {
        // Synthetic graphs straight from the generators, for smoke tests
        // that want a known topology: `ba:N:M` (Barabási–Albert, M edges
        // per new vertex) or `er:N:M` (G(n, m) Erdős–Rényi).
        let seed: u64 = args.parse_or("gen-seed", 42);
        let parts: Vec<&str> = spec.split(':').collect();
        let parse = |s: &str| -> u64 {
            s.parse().unwrap_or_else(|e| {
                eprintln!("error: bad --gen number `{s}`: {e}");
                std::process::exit(1);
            })
        };
        match parts.as_slice() {
            ["ba", n, m] => barabasi_albert(
                parse(n) as u32,
                parse(m) as u32,
                weights,
                lt_normalize,
                seed,
            ),
            ["er", n, m] => erdos_renyi(
                parse(n) as u32,
                parse(m) as usize,
                weights,
                lt_normalize,
                seed,
            ),
            _ => {
                eprintln!("error: --gen takes `ba:N:M` or `er:N:M`, got `{spec}`");
                std::process::exit(1);
            }
        }
    } else {
        eprintln!(
            "error: pass --input FILE, --standin NAME (e.g. --standin cit-HepTh), \
             or --gen ba:N:M|er:N:M"
        );
        std::process::exit(1);
    }
}

/// Parses a `--metrics-interval` value: `50ms`, `2s`, or a plain
/// millisecond count. Floored at 1ms.
fn parse_interval(s: &str) -> std::time::Duration {
    let (num, to_ms) = match s.strip_suffix("ms") {
        Some(n) => (n, 1.0),
        None => match s.strip_suffix('s') {
            Some(n) => (n, 1000.0),
            None => (s, 1.0),
        },
    };
    let v: f64 = num.trim().parse().unwrap_or_else(|_| {
        eprintln!("error: --metrics-interval takes e.g. 50ms or 1s, got `{s}`");
        std::process::exit(1);
    });
    std::time::Duration::from_micros(((v * to_ms * 1000.0) as u64).max(1000))
}

/// Builds the `--progress` heartbeat: one stderr line per sampler tick
/// with the phase, θ progress, sampling rate, an ETA, and the live
/// memory footprint — all read straight off the metrics registry.
fn progress_observer() -> ripples_metrics::ProgressFn {
    use ripples_metrics::{phase, Metric, Sample};
    use std::fmt::Write as _;
    let mut last: Option<(u64, u64)> = None;
    Box::new(move |s: &Sample| {
        let samples = s.value(Metric::SamplesGenerated);
        let target = s.value(Metric::ThetaTarget);
        let rate = match last {
            Some((t0, s0)) if s.t_ms > t0 => {
                (samples.saturating_sub(s0)) as f64 * 1000.0 / (s.t_ms - t0) as f64
            }
            _ => 0.0,
        };
        last = Some((s.t_ms, samples));
        let phase_v = s.value(Metric::Phase);
        let live_mb = (s.value(Metric::RrrBytes)
            + s.value(Metric::IndexBytes)
            + s.value(Metric::ArenaBytes)
            + s.value(Metric::MaskBytes)) as f64
            / (1024.0 * 1024.0);
        let mut line = format!(
            "[metrics] {:6.2}s {}",
            s.t_ms as f64 / 1000.0,
            phase::name(phase_v)
        );
        let round = s.value(Metric::Round);
        if round > 0 {
            let _ = write!(line, " round {round}");
        }
        match phase_v {
            phase::ESTIMATE_THETA | phase::SAMPLE => {
                if target > 0 {
                    let pct = 100.0 * samples.min(target) as f64 / target as f64;
                    let _ = write!(line, ": {samples}/{target} samples ({pct:.0}%)");
                    if rate > 0.0 && samples < target {
                        let _ = write!(line, ", eta {:.1}s", (target - samples) as f64 / rate);
                    }
                } else {
                    let _ = write!(line, ": {samples} samples");
                }
                if rate > 0.0 {
                    let _ = write!(line, ", {rate:.0} samples/s");
                }
            }
            phase::SELECT => {
                let _ = write!(
                    line,
                    ": {} select steps, {} entries touched",
                    s.value(Metric::SelectSteps),
                    s.value(Metric::SelectEntriesTouched)
                );
            }
            _ => {}
        }
        let _ = write!(line, ", {live_mb:.1} MB live");
        eprintln!("{line}");
    })
}

fn main() {
    let args = Args::from_env();
    let model = DiffusionModel::from_tag(args.get("model").unwrap_or("ic"))
        .expect("--model must be ic or lt");
    let graph = load_graph(&args, model);
    let stats = GraphStats::of(&graph);
    eprintln!(
        "graph: {} vertices, {} edges, avg degree {:.2}, max degree {}",
        stats.nodes, stats.edges, stats.avg_degree, stats.max_out_degree
    );

    let k: u32 = args.parse_or("k", 50);
    let epsilon: f64 = args.parse_or("epsilon", 0.5);
    let seed: u64 = args.parse_or("seed", 0);
    let params = ImmParams::new(k, epsilon, model, seed);
    let engine = args.get("engine").unwrap_or("mt").to_string();
    let select = args.get("select").map(|tag| {
        SelectEngine::from_tag(tag).unwrap_or_else(|| {
            eprintln!(
                "error: unknown --select `{tag}` \
                 (try auto|sequential|partitioned|lazy|hypergraph|fused)"
            );
            std::process::exit(1);
        })
    });
    let sample = args
        .get("sample")
        .map(|tag| {
            SampleEngine::from_tag(tag).unwrap_or_else(|| {
                eprintln!("error: unknown --sample `{tag}` (try auto|reference|fused)");
                std::process::exit(1);
            })
        })
        .unwrap_or(SampleEngine::Reference);
    if args.get("sample").is_some() && !matches!(engine.as_str(), "opt" | "mt" | "tim") {
        eprintln!("warning: --sample only affects the opt/mt/tim engines; ignoring");
    }
    let storage = {
        let kind = args
            .get("rrr-store")
            .map(|tag| {
                RrrStoreKind::from_tag(tag).unwrap_or_else(|| {
                    eprintln!("error: unknown --rrr-store `{tag}` (try flat|varint|bitpack|spill)");
                    std::process::exit(1);
                })
            })
            .unwrap_or(RrrStoreKind::Flat);
        let budget = args.get("rrr-budget").map(|s| {
            s.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("error: --rrr-budget takes a byte count, got `{s}`");
                std::process::exit(1);
            })
        });
        if budget.is_some() && kind != RrrStoreKind::Spill {
            eprintln!("warning: --rrr-budget only affects --rrr-store spill; ignoring");
        }
        StorageConfig { kind, budget }
    };
    if storage.kind != RrrStoreKind::Flat
        && !matches!(
            engine.as_str(),
            "opt" | "mt" | "dist" | "partitioned" | "sharded" | "tim"
        )
    {
        eprintln!(
            "warning: --rrr-store only affects the opt/mt/dist/partitioned/sharded/tim engines; ignoring"
        );
    }

    let chaos: Option<FaultPlan> = args.get("chaos-seed").map(|s| {
        let chaos_seed: u64 = s.parse().expect("--chaos-seed takes a u64");
        let rate: f64 = args.parse_or("chaos-rate", 0.02);
        FaultPlan::chaos(chaos_seed, rate)
    });
    if chaos.is_some() && !matches!(engine.as_str(), "dist" | "partitioned" | "sharded") {
        eprintln!(
            "warning: --chaos-seed only affects the dist/partitioned/sharded engines; ignoring"
        );
    }

    let trace_path = args.get("trace").map(str::to_string);
    let metrics_path = args.get("metrics").map(str::to_string);
    let metrics_prom_path = args.get("metrics-prom").map(str::to_string);
    let progress = args.flag("progress");

    // Every exporter writes its own file; catching collisions up front
    // beats silently interleaving two exporters into one path at the end
    // of a long run.
    let outputs: Vec<(&str, &str)> = [
        ("--trace", trace_path.as_deref()),
        ("--report-out", args.get("report-out")),
        ("--metrics", metrics_path.as_deref()),
        ("--metrics-prom", metrics_prom_path.as_deref()),
    ]
    .into_iter()
    .filter_map(|(flag, path)| path.map(|p| (flag, p)))
    .collect();
    for (i, (flag_a, path_a)) in outputs.iter().enumerate() {
        for (flag_b, path_b) in &outputs[i + 1..] {
            if path_a == path_b {
                eprintln!(
                    "error: {flag_a} and {flag_b} both write to `{path_a}`; \
                     give each exporter its own file"
                );
                std::process::exit(1);
            }
        }
    }

    if trace_path.is_some() {
        let capacity = args
            .get("trace-buffer")
            .map(|s| s.parse().expect("--trace-buffer takes an event count"));
        trace::start(capacity);
    }

    let sampler = if metrics_path.is_some() || metrics_prom_path.is_some() || progress {
        ripples_metrics::enable();
        let interval = parse_interval(args.get("metrics-interval").unwrap_or("250ms"));
        let observer = progress.then(progress_observer);
        Some(ripples_metrics::start_sampler(interval, observer))
    } else {
        None
    };

    let start = std::time::Instant::now();
    let (seeds, detail, report) = match engine.as_str() {
        "opt" => {
            let r = match (select, sample, storage.kind) {
                (None, SampleEngine::Reference, RrrStoreKind::Flat) => {
                    immopt_sequential(&graph, &params)
                }
                (sel, sam, _) => immopt_sequential_with_storage(
                    &graph,
                    &params,
                    sel.unwrap_or(SelectEngine::Auto),
                    sam,
                    storage,
                ),
            };
            let detail = format!("theta={} phases=[{}]", r.theta, r.timers);
            (r.seeds, detail, Some(r.report))
        }
        "baseline" => {
            let r = imm_baseline(&graph, &params);
            let detail = format!("theta={} phases=[{}]", r.theta, r.timers);
            (r.seeds, detail, Some(r.report))
        }
        "dist" => {
            let ranks: u32 = args.parse_or("ranks", 2);
            let world = ThreadWorld::new(ranks);
            let mut results = match &chaos {
                Some(plan) => world.run(|comm| {
                    let faulty = FaultComm::new(comm, plan.clone());
                    imm_distributed_with_storage(
                        &faulty,
                        &graph,
                        &params,
                        DistRngMode::IndexedStreams,
                        DistSelectMode::DenseAllReduce,
                        storage,
                    )
                }),
                None if storage.kind == RrrStoreKind::Flat => {
                    world.run(|comm| imm_distributed(comm, &graph, &params))
                }
                None => world.run(|comm| {
                    imm_distributed_with_storage(
                        comm,
                        &graph,
                        &params,
                        DistRngMode::IndexedStreams,
                        DistSelectMode::DenseAllReduce,
                        storage,
                    )
                }),
            };
            let r = results.pop().expect("at least one rank");
            let detail = format!("ranks={ranks} theta={} phases=[{}]", r.theta, r.timers);
            (r.seeds, detail, Some(r.report))
        }
        "community" => {
            let r = community_imm(&graph, &params);
            (
                r.seeds,
                format!(
                    "communities={} allocation={:?}",
                    r.communities, r.allocation
                ),
                None,
            )
        }
        "partitioned" => {
            let ranks: u32 = args.parse_or("ranks", 2);
            let world = ThreadWorld::new(ranks);
            let mut results = match &chaos {
                Some(plan) => world.run(|comm| {
                    let faulty = FaultComm::new(comm, plan.clone());
                    imm_partitioned_with_storage(&faulty, &graph, &params, storage)
                }),
                None if storage.kind == RrrStoreKind::Flat => {
                    world.run(|comm| imm_partitioned(comm, &graph, &params))
                }
                None => {
                    world.run(|comm| imm_partitioned_with_storage(comm, &graph, &params, storage))
                }
            };
            let r = results.pop().expect("at least one rank");
            let detail = format!(
                "ranks={ranks} theta={} per-rank-graph={}B phases=[{}]",
                r.theta, r.memory.graph_bytes, r.timers
            );
            (r.seeds, detail, Some(r.report))
        }
        "sharded" => {
            let ranks: u32 = args.parse_or("ranks", 2);
            let world = ThreadWorld::new(ranks);
            let mut results = match &chaos {
                Some(plan) => world.run(|comm| {
                    let faulty = FaultComm::new(comm, plan.clone());
                    imm_sharded_with_storage(&faulty, &graph, &params, storage)
                }),
                None if storage.kind == RrrStoreKind::Flat => {
                    world.run(|comm| imm_sharded(comm, &graph, &params))
                }
                None => world.run(|comm| imm_sharded_with_storage(comm, &graph, &params, storage)),
            };
            let r = results.pop().expect("at least one rank");
            let detail = format!(
                "ranks={ranks} theta={} per-rank-graph={}B frontier-exchanges={} \
                 overlap={}ns phases=[{}]",
                r.theta,
                r.memory.graph_bytes,
                r.report.counters.frontier_exchanges,
                r.report.counters.overlap_nanos,
                r.timers
            );
            (r.seeds, detail, Some(r.report))
        }
        "tim" => {
            let r = tim_plus_with_storage(&graph, &params, sample, storage);
            let detail = format!("theta={} phases=[{}]", r.theta, r.timers);
            (r.seeds, detail, Some(r.report))
        }
        "degdiscount" => {
            let p: f64 = args.parse_or("prob", 0.1);
            let seeds = degree_discount_ic(&graph, k, p);
            (
                seeds,
                format!("degree-discount p={p} (no approximation guarantee)"),
                None,
            )
        }
        "celf" => {
            let trials: u32 = args.parse_or("trials", 200);
            let r = celf_greedy(&graph, model, k, trials, seed);
            (r.seeds, format!("evaluations={}", r.evaluations), None)
        }
        _ => {
            let threads: usize = args.parse_or("threads", 0);
            let r = imm_multithreaded_with_storage(
                &graph,
                &params,
                threads,
                select.unwrap_or(SelectEngine::Auto),
                sample,
                storage,
            );
            let detail = format!("theta={} phases=[{}]", r.theta, r.timers);
            (r.seeds, detail, Some(r.report))
        }
    };
    let elapsed = start.elapsed();
    if let Some(handle) = sampler {
        let series = handle.finalize();
        ripples_metrics::disable();
        if let Some(path) = &metrics_path {
            let json = series.to_json();
            if let Err(e) = trace::validate_json(&json) {
                eprintln!("error: metrics series is not valid JSON: {e}");
                std::process::exit(1);
            }
            match std::fs::write(path, &json) {
                Ok(()) => {
                    let down = if series.downsample_halvings > 0 {
                        format!(
                            ", downsampled to {}ms",
                            series.interval_ms << series.downsample_halvings
                        )
                    } else {
                        String::new()
                    };
                    eprintln!(
                        "metrics: {} samples at {}ms cadence{down} written to {path}",
                        series.samples.len(),
                        series.interval_ms
                    );
                }
                Err(e) => {
                    eprintln!("error: cannot write metrics {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &metrics_prom_path {
            let last = series.samples.last().expect("series is never empty");
            if let Err(e) = std::fs::write(path, ripples_metrics::prometheus_text(last)) {
                eprintln!("error: cannot write metrics exposition {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("metrics: Prometheus exposition written to {path}");
        }
    }
    eprintln!("engine={engine} model={model} k={k} epsilon={epsilon}: {detail}");
    eprintln!("time: {:.3}s", elapsed.as_secs_f64());
    if let (Some(plan), Some(rep)) = (&chaos, &report) {
        eprintln!(
            "chaos: seed={} retries={} dropped_ops={} degraded_ranks={}",
            plan.seed(),
            rep.counters.retries,
            rep.counters.dropped_ops,
            rep.counters.degraded_ranks
        );
    }

    if let Some(path) = &trace_path {
        trace::stop();
        // Engines attach the merged timeline to their report; heuristic
        // engines have no report, so drain whatever the process recorded.
        let merged = report
            .as_ref()
            .and_then(|r| r.trace.clone())
            .unwrap_or_else(trace::collect_all);
        match std::fs::write(path, merged.to_chrome_json()) {
            Ok(()) => eprintln!(
                "trace: {} events ({} dropped) written to {path}",
                merged.len(),
                merged.dropped
            ),
            Err(e) => {
                eprintln!("error: cannot write trace {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(mode) = args.get("report") {
        let rendered = match (&report, mode) {
            (Some(rep), "json") => Some(rep.to_json()),
            (Some(rep), "pretty" | "text") => Some(rep.render_pretty()),
            (Some(rep), other) => {
                eprintln!("warning: unknown --report mode `{other}`; rendering pretty");
                Some(rep.render_pretty())
            }
            (None, _) => {
                eprintln!("engine `{engine}` does not produce a run report");
                None
            }
        };
        if let Some(text) = rendered {
            match args.get("report-out") {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &text) {
                        eprintln!("error: cannot write report {path}: {e}");
                        std::process::exit(1);
                    }
                }
                None => eprintln!("{text}"),
            }
        }
    }

    if let Some(trials) = args.get("simulate") {
        let trials: u32 = trials.parse().expect("--simulate takes a trial count");
        let factory = StreamFactory::new(seed ^ 0x51);
        let spread = estimate_spread(&graph, model, &seeds, trials, &factory);
        eprintln!(
            "expected influence over {trials} simulations: {spread:.1} / {} vertices",
            graph.num_vertices()
        );
    }
    // The seed set itself goes to stdout, one per line, for piping.
    for s in seeds {
        println!("{s}");
    }
}
