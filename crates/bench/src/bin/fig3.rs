//! Figure 3: impact of ε on runtime (k = 50, IC), decomposed into the four
//! phases, for all eight stand-ins.
//!
//! Expected shapes: total runtime rises as ε falls; EstimateTheta and
//! Sample dominate everywhere; the Sample share grows with input size.
//!
//! Usage: `cargo run --release -p ripples-bench --bin fig3 -- \
//!            [--scale-div N] [--graphs a,b,c] [--csv]`

use ripples_bench::{effective_divisor, paper_graph, Args, Table};
use ripples_core::mt::imm_multithreaded;
use ripples_core::{ImmParams, Phase};
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::standin_catalog;

fn main() {
    let args = Args::from_env();
    let scale_div: u32 = args.parse_or("scale-div", 8);
    let filter: Option<Vec<String>> = args
        .get("graphs")
        .map(|s| s.split(',').map(|x| x.to_ascii_lowercase()).collect());
    let model = DiffusionModel::IndependentCascade;
    let k: u32 = args.parse_or("k", 50);
    let epsilons = [0.20f64, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50];

    println!("# Figure 3 reproduction: phase-decomposed runtime vs ε (k = {k}, IC, all threads)");
    let mut table = Table::new(vec![
        "graph",
        "epsilon",
        "EstimateTheta_s",
        "Sample_s",
        "SelectSeeds_s",
        "Other_s",
        "total_s",
        "theta",
    ]);
    for spec in standin_catalog() {
        if let Some(ref names) = filter {
            if !names.contains(&spec.name.to_ascii_lowercase()) {
                continue;
            }
        }
        let graph = paper_graph(spec, effective_divisor(spec, scale_div), model);
        for &eps in &epsilons {
            let params = ImmParams::new(k, eps, model, 0xF3);
            let r = imm_multithreaded(&graph, &params, 0);
            table.row(vec![
                spec.name.to_string(),
                format!("{eps:.2}"),
                format!("{:.3}", r.timers.get(Phase::EstimateTheta).as_secs_f64()),
                format!("{:.3}", r.timers.get(Phase::Sample).as_secs_f64()),
                format!("{:.3}", r.timers.get(Phase::SelectSeeds).as_secs_f64()),
                format!("{:.3}", r.timers.get(Phase::Other).as_secs_f64()),
                format!("{:.3}", r.timers.total().as_secs_f64()),
                r.theta.to_string(),
            ]);
            eprintln!("done: {} eps {eps}", spec.name);
        }
    }
    table.print(args.flag("csv"));
    println!("\n# expected shape: runtime rises as ε falls; Estimate+Sample dominate (paper §4.1)");
}
