//! Table 3: the end-to-end speedup ladder relative to Tang et al.'s serial
//! IMM — IMM → IMMOPT → IMMmt → IMMdist — on the com-Orkut and
//! soc-LiveJournal1 stand-ins.
//!
//! The paper's ladder (their hardware):
//!
//! ```text
//! com-Orkut:        IMM 1.00x, IMMopt 3.10x, IMMmt 21.24x, IMMdist 586.61x
//! soc-LiveJournal1: IMM 1.00x, IMMopt 4.16x, IMMmt 16.02x, IMMdist 298.16x
//! ```
//!
//! The first three rows are measured here (on this host's cores); the
//! IMMdist row is measured on in-process ranks for correctness and its
//! cluster-scale runtime is *predicted* via the work-replay model at the
//! paper's 1024-node Edison configuration (ε = 0.13, k = 2·k as in the
//! paper). See DESIGN.md §1 for the substitution rationale.
//!
//! Usage: `cargo run --release -p ripples-bench --bin table3 -- \
//!            [--scale-div N] [--k K] [--csv]`

use ripples_bench::{effective_divisor, measure, paper_graph, Args, Table};
use ripples_comm::{ClusterSpec, ThreadWorld};
use ripples_core::dist::imm_distributed;
use ripples_core::mt::imm_multithreaded;
use ripples_core::scaling::{predict_distributed, WorkTrace};
use ripples_core::seq::{imm_baseline_with_options, immopt_sequential};
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::standin;

fn main() {
    let args = Args::from_env();
    let scale_div: u32 = args.parse_or("scale-div", 8);
    let k: u32 = args.parse_or("k", 100);
    let model = DiffusionModel::IndependentCascade;

    println!("# Table 3 reproduction: improvement in runtime relative to IMM [Tang et al.]");
    println!("# rows 1–3 measured on this host; row 4 executed on in-process ranks and");
    println!(
        "# projected to 1024 Edison nodes via the α–β replay model (ε: 0.5 → 0.13, k: {k} → {})\n",
        2 * k
    );

    let mut table = Table::new(vec![
        "graph", "variant", "epsilon", "k", "time_s", "speedup",
    ]);
    for name in ["com-Orkut", "soc-LiveJournal1"] {
        let spec = standin(name).expect("catalog");
        let divisor = effective_divisor(spec, scale_div);
        let graph = paper_graph(spec, divisor, model);
        let params = ImmParams::new(k, 0.5, model, 0x7AB3);

        let (base, t_base) = measure(|| imm_baseline_with_options(&graph, &params, true));
        let (_opt, t_opt) = measure(|| immopt_sequential(&graph, &params));
        let (_mt, t_mt) = measure(|| imm_multithreaded(&graph, &params, 0));
        let base_s = t_base.as_secs_f64();

        // Distributed at the paper's "parallel-enabled" setting.
        let dist_params = ImmParams::new(2 * k, 0.13, model, 0x7AB3);
        let world = ThreadWorld::new(2);
        let (dist_results, _t_dist_local) =
            measure(|| world.run(|comm| imm_distributed(comm, &graph, &dist_params)));
        let mut sample_work: Vec<u64> = Vec::new();
        for r in &dist_results {
            sample_work.extend_from_slice(&r.sample_work);
        }
        let entries: u64 = dist_results
            .iter()
            .map(|r| {
                let offsets = (r.sample_work.len() + 1) * std::mem::size_of::<usize>();
                (r.memory.peak_rrr_bytes.saturating_sub(offsets) / 4) as u64
            })
            .sum();
        let trace = WorkTrace {
            n: graph.num_vertices(),
            k: 2 * k,
            theta: dist_results[0].theta,
            sample_work,
            rrr_entries: entries,
            allreduce_calls: u64::from(2 * k + 1) * 4,
        };
        let projected = predict_distributed(&trace, &ClusterSpec::edison(), &[1024])[0];

        table.row(vec![
            name.to_string(),
            "IMM (hypergraph)".to_string(),
            "0.50".to_string(),
            k.to_string(),
            format!("{base_s:.2}"),
            "1.00x".to_string(),
        ]);
        table.row(vec![
            name.to_string(),
            "IMMopt".to_string(),
            "0.50".to_string(),
            k.to_string(),
            format!("{:.2}", t_opt.as_secs_f64()),
            format!("{:.2}x", base_s / t_opt.as_secs_f64()),
        ]);
        table.row(vec![
            name.to_string(),
            "IMMmt (all cores)".to_string(),
            "0.50".to_string(),
            k.to_string(),
            format!("{:.2}", t_mt.as_secs_f64()),
            format!("{:.2}x", base_s / t_mt.as_secs_f64()),
        ]);
        table.row(vec![
            name.to_string(),
            "IMMdist (1024 Edison nodes, projected)".to_string(),
            "0.13".to_string(),
            (2 * k).to_string(),
            format!("{:.2}", projected.total_s()),
            format!("{:.2}x", base_s / projected.total_s()),
        ]);
        eprintln!("done: {name} (baseline θ = {})", base.theta);
    }
    table.print(args.flag("csv"));
    println!("\n# paper: IMMopt 3.1–4.2x, IMMmt 16–21x (20 cores), IMMdist 298–587x (49k threads)");
    println!("# expected shape: a strictly monotone ladder; the projected distributed row");
    println!("# delivers orders-of-magnitude gains at twice the seed budget and higher accuracy");
}
