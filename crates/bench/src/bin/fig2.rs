//! Figure 2: the number of RRR sets (θ) for cit-HepTh as a function of k
//! and the approximation factor — θ grows steeply as ε shrinks and quickly
//! exceeds n.
//!
//! Usage: `cargo run --release -p ripples-bench --bin fig2 -- \
//!            [--scale-div N] [--csv] [--analytic-only]`
//!
//! By default every grid point runs the actual estimation procedure (the
//! paper's measured θ); `--analytic-only` instead prints the closed-form
//! λ*/k upper bound without sampling, which is instantaneous.

use ripples_bench::{effective_divisor, paper_graph, Args, Table};
use ripples_core::seq::immopt_sequential;
use ripples_core::theta::ThetaSchedule;
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::standin;

fn main() {
    let args = Args::from_env();
    let scale_div: u32 = args.parse_or("scale-div", 4);
    let analytic = args.flag("analytic-only");
    let spec = standin("cit-HepTh").expect("catalog");
    let model = DiffusionModel::IndependentCascade;
    let graph = paper_graph(spec, effective_divisor(spec, scale_div), model);
    let n = graph.num_vertices();

    let epsilons = [0.2f64, 0.3, 0.4, 0.5, 0.6];
    let ks = [10u32, 20, 30, 40, 50, 60, 70, 80, 90, 100];

    println!("# Figure 2 reproduction: θ as a function of k and ε (cit-HepTh stand-in, n = {n})");
    println!("# note the paper's x-axis is the approximation factor 1 − 1/e − ε: smaller ε ⇒ higher precision ⇒ larger θ\n");

    let mut header = vec!["epsilon".to_string()];
    header.extend(ks.iter().map(|k| format!("k={k}")));
    let mut table = Table::new(header);

    for &eps in &epsilons {
        let mut row = vec![format!("{eps:.2}")];
        for &k in &ks {
            let theta = if analytic {
                // Closed-form: θ = λ*/LB at a FIXED nominal lower bound
                // (n/50), isolating λ*'s growth in k and ε — the measured
                // mode lets LB move with the actual estimate instead.
                ThetaSchedule::new(u64::from(n), u64::from(k), eps, 1.0)
                    .final_theta(f64::from(n) / 50.0)
            } else {
                let params = ImmParams::new(k, eps, model, 0xF162);
                immopt_sequential(&graph, &params).theta
            };
            row.push(theta.to_string());
        }
        table.row(row);
        eprintln!("done: epsilon {eps}");
    }
    table.print(args.flag("csv"));
    println!("\n# expected shape: θ increases monotonically as ε decreases and as k increases,");
    println!(
        "# crossing n = {n} well before the tightest setting (the paper's log-scale hockey stick)"
    );
}
