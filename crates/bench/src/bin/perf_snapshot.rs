//! `perf_snapshot` — perf-trajectory benchmark harness.
//!
//! Runs a small fixed matrix of (engine × synthetic graph) configurations
//! and writes one dated JSON snapshot (`BENCH_<date>.json`) so the repo
//! accumulates a performance trajectory over time: each PR can commit a
//! fresh snapshot and regressions show up as a diff against the previous
//! file instead of being lost to CI log rotation.
//!
//! ```text
//! perf_snapshot [--out DIR] [--date YYYY-MM-DD] [--quick] [--select ENGINE]
//!               [--trials N]
//! ```
//!
//! - `--out DIR`       — output directory (default `results/`).
//! - `--date`          — override the UTC date stamp in the file name.
//! - `--quick`         — smaller graphs, for CI smoke runs.
//! - `--select ENGINE` — override the selection engine for the `opt` and
//!   `mt` cells (e.g. `partitioned` to record a before-run against the
//!   default `auto` dispatch); distributed cells are unaffected.
//! - `--trials N`      — timed repetitions per config (default 3); wall
//!   times report the median, and the min/spread ride along so `bench_diff`
//!   can tell regression from run-to-run noise.
//!
//! The schema (`ripples-perf-snapshot-v8`) is documented in
//! `EXPERIMENTS.md`; every record carries the wall time, the per-phase
//! sampling/selection wall-time split (summed from the span tree), the peak
//! RRR/index/arena byte counts, and the key
//! [`RunReport`](ripples_core::obs::RunReport) counters so a snapshot is
//! interpretable on its own, without re-running anything. v3 added the
//! comm-health counters (`retries`, `dropped_ops`, `degraded_ranks`) — all
//! zero on the reliable in-process backend, nonzero only under injected
//! chaos. v4 adds the sampling-engine fields (`sample_engine`,
//! `fused_passes`, `mask_bytes_peak`) — again purely additive, and the two
//! fused counters are zero on every reference-sampler row. v5 adds host
//! provenance (`git_sha`, `rustc`, alongside the existing `threads`) and
//! per-config repeated-trial statistics: `trials`, and for each of
//! `wall_s`/`sampling_wall_s`/`selection_wall_s` a `*_min_s` and a
//! relative `*_spread` = (max − min) / median. The headline `wall_s`
//! fields become the median across trials (a v4 snapshot is the
//! degenerate `trials = 1` case, so consumers can treat v4/v5 uniformly).
//! v6 adds the RRR storage-backend fields: `rrr_store` (the `--rrr-store`
//! tag, `flat` on every pre-v6 row), `compressed_ratio` (flat-equivalent
//! payload bytes, 4 per entry, over `rrr_bytes_peak` — > 1 means the
//! backend shrank the working set), `spill_bytes_written`, and
//! `decode_nanos` — plus flat-vs-varint er-wc rows so the compression
//! trade-off is part of the committed trajectory. v7 adds serve-mode rows
//! (`engine: "serve"`): one resident [`SketchService`] sketch built at
//! `k_max` answers a fixed replay of `topk(k)` queries, and the row
//! records `queries`, `queries_per_sec`, `query_p50_ns` / `query_p99_ns`
//! (with `query_p99_spread`), `snapshot_restore_wall_s` (plus min/spread)
//! — the wall to restore the sketch from its snapshot file, which must be
//! far below the row's `sampling_wall_s` since restore skips sampling —
//! `snapshot_bytes`, and `sketch_resident_bytes`. The restored sketch is
//! asserted bitwise-identical to the writer before anything is timed.
//! v8 adds the vertex-cut sharded engine (`engine: "sharded"`, 4 ranks)
//! and three fields on every batch row: `graph_bytes_peak` (per-rank peak
//! graph bytes — the shard for `sharded`, 0 for engines that replicate),
//! `frontier_exchanges`, and `overlap_nanos` (exchange latency hidden
//! behind sampling; both 0 for non-sharded engines), plus
//! `exchange_calls` in the `comm` object. The harness *asserts* the
//! sharded claim before writing: the 4-rank per-rank `graph_bytes_peak`
//! must be under half the replicated engines\' full-graph footprint on
//! the same graph.

use ripples_bench::{measure, Args};
use ripples_comm::ThreadWorld;
use ripples_core::{
    dist::{imm_distributed_with_storage, DistRngMode, DistSelectMode},
    dist_partitioned::imm_partitioned_with_storage,
    dist_sharded::imm_sharded_with_storage,
    mt::imm_multithreaded_with_storage,
    seq::immopt_sequential_with_storage,
    ImmParams, ImmResult, SampleEngine, SelectEngine,
};
use ripples_diffusion::{DiffusionModel, RrrStoreKind, StorageConfig};
use ripples_graph::generators::{barabasi_albert, erdos_renyi};
use ripples_graph::{Graph, WeightModel};
use ripples_serve::SketchService;
use std::fmt::Write as _;

/// Gregorian civil date from days since the Unix epoch (Howard Hinnant's
/// `civil_from_days` algorithm) — keeps the binary dependency-free.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

struct Config {
    graph_name: &'static str,
    engine: &'static str,
    /// Sampling kernel for the `opt` / `mt` cells (`reference` / `fused` /
    /// `auto`); the distributed cells always run the reference sampler.
    sample: SampleEngine,
    /// RRR storage backend (CLI `--rrr-store`); `flat` rows take exactly
    /// the pre-v6 code paths.
    store: StorageConfig,
}

const FLAT: StorageConfig = StorageConfig {
    kind: RrrStoreKind::Flat,
    budget: None,
};
const VARINT: StorageConfig = StorageConfig {
    kind: RrrStoreKind::Varint,
    budget: None,
};
/// Spill with a budget small enough to actually spill on the snapshot
/// graphs, so the row measures the chunk-seal + re-read path, not a
/// never-triggered cap.
const SPILL_TIGHT: StorageConfig = StorageConfig {
    kind: RrrStoreKind::Spill,
    budget: Some(256 << 10),
};

/// Sums the wall time of every span (at any depth) whose name is in
/// `names`, without double-counting nested matches: once a span matches,
/// its children are not descended into.
fn phase_wall_s(spans: &[ripples_core::obs::SpanNode], names: &[&str]) -> f64 {
    let mut nanos: u128 = 0;
    let mut stack: Vec<&ripples_core::obs::SpanNode> = spans.iter().collect();
    while let Some(span) = stack.pop() {
        if names.contains(&span.name.as_str()) {
            nanos += span.nanos;
        } else {
            stack.extend(span.children.iter());
        }
    }
    nanos as f64 / 1e9
}

fn build_graph(name: &str, quick: bool) -> Graph {
    let scale = if quick { 4 } else { 1 };
    let uniform = WeightModel::UniformRandom { seed: 7 };
    match name {
        "er-sparse" => erdos_renyi(2000 / scale, 16_000 / scale as usize, uniform, false, 42),
        // Weighted-cascade probabilities (1/in-degree) produce the short
        // RRR sets of realistic cascades — the regime where the fused
        // engine's index pays off and `auto` dispatches to it.
        "er-wc" => erdos_renyi(
            2000 / scale,
            16_000 / scale as usize,
            WeightModel::WeightedCascade,
            false,
            42,
        ),
        "ba-hubs" => barabasi_albert(2000 / scale, 8, uniform, false, 42),
        other => panic!("unknown snapshot graph `{other}`"),
    }
}

fn run_engine(
    engine: &str,
    graph: &Graph,
    params: &ImmParams,
    select: SelectEngine,
    sample: SampleEngine,
    store: StorageConfig,
) -> ImmResult {
    match engine {
        "opt" => immopt_sequential_with_storage(graph, params, select, sample, store),
        "mt" => imm_multithreaded_with_storage(graph, params, 0, select, sample, store),
        "dist" => {
            let world = ThreadWorld::new(2);
            world
                .run(|comm| {
                    imm_distributed_with_storage(
                        comm,
                        graph,
                        params,
                        DistRngMode::IndexedStreams,
                        DistSelectMode::DenseAllReduce,
                        store,
                    )
                })
                .pop()
                .expect("at least one rank")
        }
        "partitioned" => {
            let world = ThreadWorld::new(2);
            world
                .run(|comm| imm_partitioned_with_storage(comm, graph, params, store))
                .pop()
                .expect("at least one rank")
        }
        // The sharded rows run at 4 ranks so the committed per-rank
        // graph_bytes_peak shows a real (4-way) cut, not a 2-way one.
        "sharded" => {
            let world = ThreadWorld::new(4);
            world
                .run(|comm| imm_sharded_with_storage(comm, graph, params, store))
                .pop()
                .expect("at least one rank")
        }
        other => panic!("unknown snapshot engine `{other}`"),
    }
}

/// min / median / relative-spread of a set of timings. Spread is
/// `(max − min) / median` — a dimensionless noise estimate `bench_diff`
/// scales into its regression threshold.
fn stats(samples: &mut [f64]) -> (f64, f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];
    let spread = if median > 0.0 {
        (max - min) / median
    } else {
        0.0
    };
    (min, median, spread)
}

/// First output line of `cmd args…`, or `fallback` when the command is
/// unavailable or fails (sandboxed CI, tarball checkouts without git).
fn probe(cmd: &str, args: &[&str], fallback: &str) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| {
            String::from_utf8(out.stdout)
                .ok()
                .and_then(|s| s.lines().next().map(|l| l.trim().to_string()))
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| fallback.to_string())
}

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let trials: usize = args.parse_or("trials", 3).max(1);
    let out_dir = args.get("out").unwrap_or("results").to_string();
    let date = args
        .get("date")
        .map(str::to_string)
        .unwrap_or_else(today_utc);
    let select = match args.get("select") {
        Some(tag) => SelectEngine::from_tag(tag).unwrap_or_else(|| {
            eprintln!("error: unknown --select `{tag}`");
            std::process::exit(1);
        }),
        None => SelectEngine::Auto,
    };

    let matrix = [
        Config {
            graph_name: "er-sparse",
            engine: "opt",
            sample: SampleEngine::Reference,
            store: FLAT,
        },
        Config {
            graph_name: "er-sparse",
            engine: "mt",
            sample: SampleEngine::Reference,
            store: FLAT,
        },
        // Same cell with the fused multi-cascade kernel: er-sparse's
        // uniform-random weights grow wide cascades, the regime where 64
        // lanes per CSR pass pay off — this row vs the one above is the
        // committed evidence for the fused sampler's wall-time win.
        Config {
            graph_name: "er-sparse",
            engine: "mt",
            sample: SampleEngine::Fused,
            store: FLAT,
        },
        Config {
            graph_name: "er-sparse",
            engine: "dist",
            sample: SampleEngine::Reference,
            store: FLAT,
        },
        Config {
            graph_name: "ba-hubs",
            engine: "mt",
            sample: SampleEngine::Reference,
            store: FLAT,
        },
        Config {
            graph_name: "ba-hubs",
            engine: "partitioned",
            sample: SampleEngine::Reference,
            store: FLAT,
        },
        // Vertex-cut sharded rows at 4 ranks, on the same graphs as a
        // replicated (mt) row and the interval-partitioned row, so the
        // trajectory carries the memory-vs-overlap trade directly.
        Config {
            graph_name: "ba-hubs",
            engine: "sharded",
            sample: SampleEngine::Reference,
            store: FLAT,
        },
        Config {
            graph_name: "er-sparse",
            engine: "sharded",
            sample: SampleEngine::Reference,
            store: FLAT,
        },
        Config {
            graph_name: "er-wc",
            engine: "opt",
            sample: SampleEngine::Reference,
            store: FLAT,
        },
        Config {
            graph_name: "er-wc",
            engine: "mt",
            sample: SampleEngine::Reference,
            store: FLAT,
        },
        // Auto on weighted-cascade: short RRR sets should make the probe
        // keep the reference kernel — committed so the dispatch decision
        // itself is part of the trajectory.
        Config {
            graph_name: "er-wc",
            engine: "mt",
            sample: SampleEngine::Auto,
            store: FLAT,
        },
        // Flat-vs-varint on the weighted-cascade graph: the committed
        // evidence for the compressed backends' memory claim (the er-wc
        // flat rows above are the baselines these compress against).
        Config {
            graph_name: "er-wc",
            engine: "opt",
            sample: SampleEngine::Reference,
            store: VARINT,
        },
        Config {
            graph_name: "er-wc",
            engine: "mt",
            sample: SampleEngine::Reference,
            store: VARINT,
        },
        // Spill under a deliberately tight budget: peak must land below
        // the flat row's while the seed set stays identical.
        Config {
            graph_name: "er-wc",
            engine: "mt",
            sample: SampleEngine::Reference,
            store: SPILL_TIGHT,
        },
    ];

    let params = ImmParams::new(16, 0.5, DiffusionModel::IndependentCascade, 0);
    let mut records = String::new();
    for (i, config) in matrix.iter().enumerate() {
        let graph = build_graph(config.graph_name, quick);
        // Repeated trials: identical seeds make every trial compute the
        // same answer, so only the timings vary — keep the median-wall
        // trial's result for the counters and fold the rest into stats.
        let mut runs: Vec<(ImmResult, f64)> = (0..trials)
            .map(|_| {
                let (result, wall) = measure(|| {
                    run_engine(
                        config.engine,
                        &graph,
                        &params,
                        select,
                        config.sample,
                        config.store,
                    )
                });
                (result, wall.as_secs_f64())
            })
            .collect();
        let mut walls: Vec<f64> = runs.iter().map(|(_, w)| *w).collect();
        let mut sampling: Vec<f64> = runs
            .iter()
            .map(|(r, _)| phase_wall_s(r.report.spans(), &["sample", "Sample"]))
            .collect();
        let mut selection: Vec<f64> = runs
            .iter()
            .map(|(r, _)| phase_wall_s(r.report.spans(), &["select", "SelectSeeds"]))
            .collect();
        let (wall_min, wall_median, wall_spread) = stats(&mut walls);
        let (samp_min, samp_median, samp_spread) = stats(&mut sampling);
        let (sel_min, sel_median, sel_spread) = stats(&mut selection);
        let median_idx = runs
            .iter()
            .position(|(_, w)| *w == wall_median)
            .unwrap_or(0);
        let (result, _) = runs.swap_remove(median_idx);
        let c = &result.report.counters;
        eprintln!(
            "{}/{}: {} on {} ({} vertices, sample={}, store={}): {:.3}s median of {} (spread {:.1}%) theta={}",
            i + 1,
            matrix.len(),
            config.engine,
            config.graph_name,
            graph.num_vertices(),
            config.sample.tag(),
            config.store.kind.tag(),
            wall_median,
            trials,
            wall_spread * 100.0,
            result.theta
        );
        if i > 0 {
            records.push(',');
        }
        let comm = match &result.report.comm {
            Some(cc) => format!(
                "{{\"allreduce_calls\":{},\"barrier_calls\":{},\"broadcast_calls\":{},\"allgather_calls\":{},\"exchange_calls\":{},\"bytes_moved\":{}}}",
                cc.allreduce_calls, cc.barrier_calls, cc.broadcast_calls, cc.allgather_calls, cc.exchange_calls, cc.bytes_moved
            ),
            None => "null".to_string(),
        };
        // The sharded memory claim, enforced before the snapshot is
        // written: a 4-rank shard (edge chunks + two O(n) routing tables)
        // must stay under half the replicated full-graph footprint.
        if config.engine == "sharded" {
            let full = graph.resident_bytes();
            assert!(
                c.graph_bytes_peak > 0,
                "sharded row did not publish graph_bytes_peak"
            );
            assert!(
                (c.graph_bytes_peak as usize) * 2 < full,
                "sharded per-rank graph_bytes_peak {} is not under half the \
                 replicated footprint {} on {}",
                c.graph_bytes_peak,
                full,
                config.graph_name
            );
            assert!(
                c.frontier_exchanges > 0,
                "sharded row did not publish frontier_exchanges"
            );
        }
        // Flat-equivalent payload is 4 bytes per stored entry (one u32);
        // the ratio over the live peak is the headline compression number.
        let compressed_ratio = if c.rrr_bytes_peak > 0 {
            (4.0 * c.rrr_entries as f64) / c.rrr_bytes_peak as f64
        } else {
            0.0
        };
        write!(
            records,
            "\n    {{\"engine\":\"{}\",\"sample_engine\":\"{}\",\"rrr_store\":\"{}\",\"graph\":\"{}\",\"vertices\":{},\"edges\":{},\"k\":{},\"epsilon\":{},\"trials\":{trials},\"wall_s\":{:.6},\"wall_min_s\":{:.6},\"wall_spread\":{:.4},\"sampling_wall_s\":{:.6},\"sampling_wall_min_s\":{:.6},\"sampling_wall_spread\":{:.4},\"selection_wall_s\":{:.6},\"selection_wall_min_s\":{:.6},\"selection_wall_spread\":{:.4},\"theta\":{},\"theta_rounds\":{},\"samples_generated\":{},\"edges_examined\":{},\"rrr_entries\":{},\"rrr_bytes_peak\":{},\"compressed_ratio\":{:.4},\"spill_bytes_written\":{},\"decode_nanos\":{},\"index_bytes_peak\":{},\"arena_bytes_peak\":{},\"fused_passes\":{},\"mask_bytes_peak\":{},\"select_entries_touched\":{},\"index_build_nanos\":{},\"select_iterations\":{},\"retries\":{},\"dropped_ops\":{},\"degraded_ranks\":{},\"graph_bytes_peak\":{},\"frontier_exchanges\":{},\"overlap_nanos\":{},\"comm\":{}}}",
            config.engine,
            config.sample.tag(),
            config.store.kind.tag(),
            config.graph_name,
            graph.num_vertices(),
            graph.num_edges(),
            params.k,
            params.epsilon,
            wall_median,
            wall_min,
            wall_spread,
            samp_median,
            samp_min,
            samp_spread,
            sel_median,
            sel_min,
            sel_spread,
            result.theta,
            c.theta_rounds,
            c.samples_generated,
            c.edges_examined,
            c.rrr_entries,
            c.rrr_bytes_peak,
            compressed_ratio,
            c.spill_bytes_written,
            c.decode_nanos,
            c.index_bytes_peak,
            c.arena_bytes_peak,
            c.fused_passes,
            c.mask_bytes_peak,
            c.select_entries_touched,
            c.index_build_nanos,
            c.select_iterations,
            c.retries,
            c.dropped_ops,
            c.degraded_ranks,
            c.graph_bytes_peak,
            c.frontier_exchanges,
            c.overlap_nanos,
            comm,
        )
        .expect("writing to String cannot fail");
    }

    // v7 serve rows: ONE resident sketch (built at k_max = the batch rows'
    // k) replays a fixed query mix, then restores itself from its snapshot
    // file. The restore wall is the committed evidence that restart skips
    // sampling; bitwise parity with the writer is asserted before timing.
    // er-sparse has a sampling wall in the hundreds of ms, so its row is
    // the one where the restore-skips-sampling assertion below has real
    // margin; the er-wc rows carry the flat-vs-varint serve comparison.
    let serve_matrix = [("er-sparse", FLAT), ("er-wc", FLAT), ("er-wc", VARINT)];
    let queries_per_trial: usize = if quick { 64 } else { 256 };
    for (row, &(graph_name, store)) in serve_matrix.iter().enumerate() {
        let graph = build_graph(graph_name, quick);
        let serve_params = ImmParams::new(1, params.epsilon, DiffusionModel::IndependentCascade, 0)
            .with_k_max(params.k);
        let mut query_walls = Vec::with_capacity(trials);
        let mut sampling_walls = Vec::with_capacity(trials);
        let mut restore_walls = Vec::with_capacity(trials);
        let mut p50s = Vec::with_capacity(trials);
        let mut p99s = Vec::with_capacity(trials);
        let mut theta = 0usize;
        let mut sketch_bytes = 0usize;
        let mut snapshot_bytes = 0u64;
        for trial in 0..trials {
            let mut svc =
                SketchService::build(&graph, serve_params, select, SampleEngine::Reference, store);
            sampling_walls.push(svc.build_result().map_or(0.0, |r| {
                phase_wall_s(r.report.spans(), &["sample", "Sample"])
            }));
            theta = svc.theta();
            sketch_bytes = svc.resident_bytes();

            let snap = std::env::temp_dir().join(format!(
                "ripples-perf-serve-{}-{row}-{trial}.snap",
                std::process::id()
            ));
            svc.snapshot_to(&snap).expect("serve row: snapshot write");
            snapshot_bytes = std::fs::metadata(&snap).map(|m| m.len()).unwrap_or(0);
            let (mut restored, restore_wall) = measure(|| {
                SketchService::restore_from(&snap, &graph, select)
                    .expect("serve row: snapshot restore")
            });
            std::fs::remove_file(&snap).ok();
            restore_walls.push(restore_wall.as_secs_f64());

            for k in [1, params.k / 2, params.k] {
                let (a, _) = svc.topk(k).expect("query within k_max");
                let (b, _) = restored.topk(k).expect("query within k_max");
                assert_eq!(a, b, "restored sketch diverged from writer at k={k}");
            }

            let ((), wall) = measure(|| {
                for q in 0..queries_per_trial {
                    let k = (q as u32 % params.k) + 1;
                    let _ = svc.topk(k).expect("query within k_max");
                }
            });
            query_walls.push(wall.as_secs_f64());
            p50s.push(svc.latency_quantile_nanos(0.50) as f64);
            p99s.push(svc.latency_quantile_nanos(0.99) as f64);
        }
        let (wall_min, wall_median, wall_spread) = stats(&mut query_walls);
        let (samp_min, samp_median, samp_spread) = stats(&mut sampling_walls);
        let (rest_min, rest_median, rest_spread) = stats(&mut restore_walls);
        let (_, p50_median, _) = stats(&mut p50s);
        let (_, p99_median, p99_spread) = stats(&mut p99s);
        let qps = if wall_median > 0.0 {
            queries_per_trial as f64 / wall_median
        } else {
            0.0
        };
        // The restart-skips-sampling claim, enforced where timing is
        // meaningful (tiny quick-mode sampling walls are all jitter).
        if samp_median > 0.05 {
            assert!(
                rest_median < 0.2 * samp_median,
                "snapshot restore ({rest_median:.4}s) is not < 20% of the sampling wall \
                 ({samp_median:.4}s)"
            );
        }
        eprintln!(
            "serve {}/{}: {} store={}: {:.0} queries/s (p50 {:.0} ns, p99 {:.0} ns), restore {:.4}s vs sampling {:.4}s, theta={}",
            row + 1,
            serve_matrix.len(),
            graph_name,
            store.kind.tag(),
            qps,
            p50_median,
            p99_median,
            rest_median,
            samp_median,
            theta,
        );
        records.push(',');
        write!(
            records,
            "\n    {{\"engine\":\"serve\",\"sample_engine\":\"{}\",\"rrr_store\":\"{}\",\"graph\":\"{}\",\"vertices\":{},\"edges\":{},\"k\":{},\"epsilon\":{},\"trials\":{trials},\"queries\":{queries_per_trial},\"wall_s\":{:.6},\"wall_min_s\":{:.6},\"wall_spread\":{:.4},\"sampling_wall_s\":{:.6},\"sampling_wall_min_s\":{:.6},\"sampling_wall_spread\":{:.4},\"theta\":{},\"queries_per_sec\":{:.1},\"query_p50_ns\":{:.0},\"query_p99_ns\":{:.0},\"query_p99_spread\":{:.4},\"snapshot_restore_wall_s\":{:.6},\"snapshot_restore_min_s\":{:.6},\"snapshot_restore_spread\":{:.4},\"snapshot_bytes\":{snapshot_bytes},\"sketch_resident_bytes\":{sketch_bytes}}}",
            SampleEngine::Reference.tag(),
            store.kind.tag(),
            graph_name,
            graph.num_vertices(),
            graph.num_edges(),
            params.k,
            params.epsilon,
            wall_median,
            wall_min,
            wall_spread,
            samp_median,
            samp_min,
            samp_spread,
            theta,
            qps,
            p50_median,
            p99_median,
            p99_spread,
            rest_median,
            rest_min,
            rest_spread,
        )
        .expect("writing to String cannot fail");
    }

    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let git_sha = probe("git", &["rev-parse", "HEAD"], "unknown");
    let rustc = probe("rustc", &["-V"], "unknown");
    let json = format!(
        "{{\n  \"schema\": \"ripples-perf-snapshot-v8\",\n  \"date\": \"{date}\",\n  \"quick\": {quick},\n  \"host\": {{\"threads\": {threads}, \"git_sha\": \"{git_sha}\", \"rustc\": \"{rustc}\"}},\n  \"configs\": [{records}\n  ]\n}}\n",
    );
    ripples_trace::validate_json(&json).expect("snapshot must be valid JSON");

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: cannot create {out_dir}: {e}");
        std::process::exit(1);
    }
    let path = format!("{out_dir}/BENCH_{date}.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("snapshot written to {path}");
}
