//! `rbo_check` — rank-biased-overlap gate for two seed rankings.
//!
//! Reads two seed files (one vertex id per line — the `ripples` binary's
//! stdout format), computes their extrapolated RBO, and exits non-zero
//! when it falls below `--min`. CI uses this to assert that the fused
//! sampling kernel and the reference sampler agree on the seed ranking
//! (statistically, not bitwise — see EXPERIMENTS.md § "Choosing a
//! sampling engine").
//!
//! ```text
//! rbo_check --a SEEDS_A --b SEEDS_B [--min 0.95] [--p 0.9]
//! ```
//!
//! - `--a`, `--b` — the two seed files to compare (required).
//! - `--min`      — minimum acceptable RBO in `[0, 1]` (default `0.95`).
//! - `--p`        — RBO persistence parameter in `(0, 1)` (default `0.9`).

use ripples_bench::Args;
use ripples_centrality::rank_biased_overlap;

fn read_ranking(path: &str) -> Vec<u32> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| {
            l.parse().unwrap_or_else(|e| {
                eprintln!("error: {path}: `{l}` is not a vertex id: {e}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn main() {
    let args = Args::from_env();
    let (Some(path_a), Some(path_b)) = (args.get("a"), args.get("b")) else {
        eprintln!("usage: rbo_check --a SEEDS_A --b SEEDS_B [--min 0.95] [--p 0.9]");
        std::process::exit(2);
    };
    let min: f64 = args.parse_or("min", 0.95);
    let p: f64 = args.parse_or("p", 0.9);

    let a = read_ranking(path_a);
    let b = read_ranking(path_b);
    let rbo = rank_biased_overlap(&a, &b, p);
    println!("rbo {rbo:.6} (|a|={}, |b|={}, p={p})", a.len(), b.len());
    if rbo < min {
        eprintln!("FAIL: rbo {rbo:.6} < required minimum {min}");
        std::process::exit(1);
    }
    eprintln!("OK: rbo {rbo:.6} >= {min}");
}
