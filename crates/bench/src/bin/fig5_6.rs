//! Figures 5 & 6: multithreaded strong scaling, 2–20 threads, ε = 0.5,
//! k = 100, LT (Figure 5) and IC (Figure 6).
//!
//! The paper measured wall-clock on a 20-core node. This host has a single
//! core, so real thread sweeps cannot show speedup here; per DESIGN.md's
//! substitution, this harness reports **both**:
//!
//! * `measured_s` — actual wall-clock with that many rayon threads (flat on
//!   a 1-core box, genuinely scaling on a multi-core machine), and
//! * `model_s` — the work-replay prediction (LPT makespan of the measured
//!   per-sample work + Algorithm 4's selection cost structure), calibrated
//!   from the measured single-thread run, which reproduces the *shape* of
//!   the figures: near-linear for big IC inputs, flatter for LT and small
//!   graphs where selection dominates.
//!
//! Usage: `cargo run --release -p ripples-bench --bin fig5_6 -- \
//!            [--model ic|lt] [--scale-div N] [--graphs a,b] [--k K] [--csv]`

use ripples_bench::{effective_divisor, measure, paper_graph, Args, Table};
use ripples_core::mt::imm_multithreaded;
use ripples_core::scaling::{calibrate_rate, predict_multithreaded, WorkTrace};
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::standin_catalog;

fn main() {
    let args = Args::from_env();
    let scale_div: u32 = args.parse_or("scale-div", 8);
    let k: u32 = args.parse_or("k", 100);
    let model = DiffusionModel::from_tag(args.get("model").unwrap_or("ic")).expect("--model ic|lt");
    let filter: Option<Vec<String>> = args
        .get("graphs")
        .map(|s| s.split(',').map(|x| x.to_ascii_lowercase()).collect());
    // Default: even thread counts (half the runs); --dense restores the
    // paper's full 2..=20 sweep.
    let threads: Vec<u32> = if args.flag("dense") {
        (2..=20).collect()
    } else {
        (1..=10).map(|i| 2 * i).collect()
    };

    println!(
        "# Figures 5/6 reproduction: multithreaded strong scaling (ε = 0.5, k = {k}, {model})"
    );
    println!("# measured_s = real wall-clock at that thread count on THIS host");
    println!(
        "# model_s    = work-replay prediction for a dedicated 20-core node (see DESIGN.md)\n"
    );

    let mut table = Table::new(vec![
        "graph",
        "threads",
        "measured_s",
        "model_s",
        "model_speedup_vs_2t",
    ]);
    for spec in standin_catalog() {
        if let Some(ref names) = filter {
            if !names.contains(&spec.name.to_ascii_lowercase()) {
                continue;
            }
        }
        let graph = paper_graph(spec, effective_divisor(spec, scale_div), model);
        let params = ImmParams::new(k, 0.5, model, 0xF56);

        // Calibration run on one thread.
        let (base, base_time) = measure(|| imm_multithreaded(&graph, &params, 1));
        let trace = WorkTrace::from_result(&base, graph.num_vertices(), k, 4);
        let rate = calibrate_rate(
            trace.total_sample_work() + trace.rrr_entries,
            base_time.as_secs_f64(),
        );
        let predictions = predict_multithreaded(&trace, &threads, rate);
        let base_pred = predictions[0].total_s();

        for (i, &t) in threads.iter().enumerate() {
            let (_, measured) = measure(|| imm_multithreaded(&graph, &params, t as usize));
            let p = predictions[i];
            table.row(vec![
                spec.name.to_string(),
                t.to_string(),
                format!("{:.3}", measured.as_secs_f64()),
                format!("{:.3}", p.total_s()),
                format!("{:.2}x", base_pred / p.total_s()),
            ]);
        }
        eprintln!("done: {}", spec.name);
    }
    table.print(args.flag("csv"));
    println!("\n# expected shape (paper): larger inputs scale better; IC scales better than LT;");
    println!(
        "# peak ~12.5x vs 2 threads for com-Orkut under IC; small inputs stall on SelectSeeds"
    );
}
