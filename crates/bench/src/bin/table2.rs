//! Table 2: serial execution time and memory usage of IMM vs IMMOPT
//! (ε = 0.5, k = 50, IC) across the eight SNAP stand-ins.
//!
//! Paper's observation to reproduce: IMMOPT is faster (2.4–4.2× on the
//! authors' hardware) and saves 18–58% of RRR memory, purely from the
//! one-direction sorted-list storage.
//!
//! Usage: `cargo run --release -p ripples-bench --bin table2 -- \
//!            [--scale-div N] [--k K] [--epsilon E] [--csv]`
//!
//! `--scale-div` multiplies every stand-in's default divisor (larger =
//! smaller graphs = faster run). Users with real SNAP edge lists can adapt
//! via `ripples-graph::io` and rerun at full scale.

use ripples_bench::{effective_divisor, measure, paper_graph, Args, Table};
use ripples_core::seq::{imm_baseline_with_options, immopt_sequential};
use ripples_core::{ImmParams, MemoryStats};
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::standin_catalog;
use ripples_graph::GraphStats;

fn main() {
    let args = Args::from_env();
    let scale_div: u32 = args.parse_or("scale-div", 4);
    let k: u32 = args.parse_or("k", 50);
    let epsilon: f64 = args.parse_or("epsilon", 0.5);
    let model = DiffusionModel::IndependentCascade;

    println!(
        "# Table 2 reproduction: IMM (hypergraph) vs IMMOPT (compact), ε = {epsilon}, k = {k}"
    );
    println!("# stand-in divisors scaled by {scale_div}; pass --scale-div 1 for the full stand-in sizes\n");

    let mut table = Table::new(vec![
        "Graph",
        "Nodes",
        "Edges",
        "AvgDeg",
        "MaxDeg",
        "IMM(s)",
        "IMMOPT(s)",
        "Speedup",
        "IMM(MB)",
        "IMMOPT(MB)",
        "Savings",
    ]);

    for spec in standin_catalog() {
        let divisor = effective_divisor(spec, scale_div);
        let graph = paper_graph(spec, divisor, model);
        let stats = GraphStats::of(&graph);
        let params = ImmParams::new(k, epsilon, model, 0xBEEF);

        // Tang-faithful baseline: fresh final resampling (no R reuse), the
        // behaviour of the released IMM code (see seq.rs docs).
        let (baseline, t_baseline) = measure(|| imm_baseline_with_options(&graph, &params, true));
        let (opt, t_opt) = measure(|| immopt_sequential(&graph, &params));
        assert_eq!(baseline.seeds.len(), opt.seeds.len());

        let speedup = t_baseline.as_secs_f64() / t_opt.as_secs_f64().max(1e-9);
        let savings = 100.0
            * (1.0
                - opt.memory.peak_rrr_bytes as f64 / baseline.memory.peak_rrr_bytes.max(1) as f64);
        table.row(vec![
            spec.name.to_string(),
            stats.nodes.to_string(),
            stats.edges.to_string(),
            format!("{:.2}", stats.avg_degree),
            stats.max_out_degree.to_string(),
            format!("{:.2}", t_baseline.as_secs_f64()),
            format!("{:.2}", t_opt.as_secs_f64()),
            format!("{speedup:.2}x"),
            format!("{:.2}", MemoryStats::mib(baseline.memory.peak_rrr_bytes)),
            format!("{:.2}", MemoryStats::mib(opt.memory.peak_rrr_bytes)),
            format!("{savings:.1}%"),
        ]);
        eprintln!("done: {} (θ = {})", spec.name, opt.theta);
    }
    table.print(args.flag("csv"));
    println!("\n# paper: speedups 2.4–4.2x, savings 18–58% (their hardware, full SNAP inputs)");
    println!(
        "# expected shape: IMMOPT never slower, never more memory; savings grow with RRR volume"
    );
}
