//! `json_check` — dependency-free JSON validity checker for CI smoke tests.
//!
//! ```text
//! json_check FILE [FILE...]
//! ```
//!
//! Validates each argument with the RFC 8259 parser from `ripples-trace`
//! (the same one the tracer's own tests use) and exits non-zero if any
//! file is unreadable or not well-formed JSON. Used by CI to check that
//! `--trace`, `--report json`, and `perf_snapshot` outputs all parse
//! without pulling in an external JSON tool.

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: json_check FILE [FILE...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in paths {
        match std::fs::read_to_string(&path) {
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
            }
            Ok(text) => match ripples_trace::validate_json(&text) {
                Ok(()) => println!("{path}: ok"),
                Err(e) => {
                    eprintln!("{path}: invalid JSON: {e}");
                    failed = true;
                }
            },
        }
    }
    std::process::exit(i32::from(failed));
}
