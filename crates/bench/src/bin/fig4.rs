//! Figure 4: impact of the seed-set size k on runtime (ε = 0.5, IC),
//! decomposed into phases, for all eight stand-ins.
//!
//! Usage: `cargo run --release -p ripples-bench --bin fig4 -- \
//!            [--scale-div N] [--graphs a,b,c] [--csv]`

use ripples_bench::{effective_divisor, paper_graph, Args, Table};
use ripples_core::mt::imm_multithreaded;
use ripples_core::{ImmParams, Phase};
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::standin_catalog;

fn main() {
    let args = Args::from_env();
    let scale_div: u32 = args.parse_or("scale-div", 8);
    let filter: Option<Vec<String>> = args
        .get("graphs")
        .map(|s| s.split(',').map(|x| x.to_ascii_lowercase()).collect());
    let model = DiffusionModel::IndependentCascade;
    let epsilon: f64 = args.parse_or("epsilon", 0.5);
    let ks: Vec<u32> = (1..=10).map(|i| i * 10).collect();

    println!(
        "# Figure 4 reproduction: phase-decomposed runtime vs k (ε = {epsilon}, IC, all threads)"
    );
    let mut table = Table::new(vec![
        "graph",
        "k",
        "EstimateTheta_s",
        "Sample_s",
        "SelectSeeds_s",
        "Other_s",
        "total_s",
        "theta",
    ]);
    for spec in standin_catalog() {
        if let Some(ref names) = filter {
            if !names.contains(&spec.name.to_ascii_lowercase()) {
                continue;
            }
        }
        let graph = paper_graph(spec, effective_divisor(spec, scale_div), model);
        for &k in &ks {
            let params = ImmParams::new(k, epsilon, model, 0xF4);
            let r = imm_multithreaded(&graph, &params, 0);
            table.row(vec![
                spec.name.to_string(),
                k.to_string(),
                format!("{:.3}", r.timers.get(Phase::EstimateTheta).as_secs_f64()),
                format!("{:.3}", r.timers.get(Phase::Sample).as_secs_f64()),
                format!("{:.3}", r.timers.get(Phase::SelectSeeds).as_secs_f64()),
                format!("{:.3}", r.timers.get(Phase::Other).as_secs_f64()),
                format!("{:.3}", r.timers.total().as_secs_f64()),
                r.theta.to_string(),
            ]);
            eprintln!("done: {} k {k}", spec.name);
        }
    }
    table.print(args.flag("csv"));
    println!(
        "\n# expected shape: runtime grows with k (θ does too); SelectSeeds' share grows with k"
    );
}
