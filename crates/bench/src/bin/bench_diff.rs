//! `bench_diff` — noise-aware perf-regression gate over committed
//! `BENCH_*.json` snapshots.
//!
//! ```text
//! bench_diff BASELINE.json CANDIDATE.json [--floor PCT] [--allow-host-mismatch]
//! bench_diff --self-test SNAPSHOT.json
//! ```
//!
//! Compares the per-config wall times of two `perf_snapshot` files (any
//! schema version ≥ v1) and exits nonzero when a config regressed by more
//! than the noise threshold, printing a table of every compared cell so
//! the verdict is auditable. The threshold per metric is
//! `max(floor, 3 × spread)` where `spread` is the repeated-trial relative
//! spread recorded by v5 snapshots (`(max − min) / median`); older
//! snapshots carry no spread, so they get the floor alone (default 10%).
//! Sub-5 ms phases are never flagged — at that scale scheduler jitter
//! dominates any real change.
//!
//! v7 serve rows (`engine: "serve"`) are gated too: their query replay
//! wall and build sampling wall ride on the standard metrics, and the
//! serve-specific `snapshot_restore_wall_s` and `query_p99_ns` (scaled to
//! seconds on load) get the same spread-aware threshold and absolute
//! noise guard.
//!
//! v8 rows additionally gate `graph_bytes_peak` (the sharded engine's
//! per-rank resident graph footprint). Graph construction is
//! deterministic, so the metric carries no spread: growth beyond the
//! floor (and a small absolute guard for allocator rounding) on an
//! overlapping config is a real memory regression, not noise.
//!
//! Two snapshots are only comparable if they came from the same kind of
//! host: the tool refuses (exit 2) when the recorded `host.threads` or
//! `host.rustc` provenance disagrees, unless `--allow-host-mismatch` is
//! given. The `git_sha` provenance is *expected* to differ — that is the
//! comparison being made — so it is reported but never refused on.
//!
//! `--self-test` exercises the gate against a single snapshot so CI can
//! prove the gate itself works: identical inputs must pass, a synthetic
//! 2× sampling-wall perturbation must trip, and a host-provenance
//! mismatch must be refused.
//!
//! Exit codes: 0 clean, 1 significant regression (or self-test failure),
//! 2 refusal / usage error.

use ripples_bench::json::{self, Value};
use ripples_bench::{Args, Table};

/// Relative regression floor when no spread data is available (and the
/// minimum threshold even when it is): 10%.
const DEFAULT_FLOOR: f64 = 0.10;
/// Absolute guard: ignore regressions where the change is below this many
/// seconds — sub-5 ms deltas are scheduler noise at any relative size.
const ABS_GUARD_S: f64 = 0.005;
/// Spread-to-threshold multiplier: three spreads clears run-to-run noise
/// the way three sigmas would for a normal spread estimate.
const SPREAD_MULTIPLIER: f64 = 3.0;

/// The wall metrics the gate compares, with the v5 field carrying their
/// trial spread (absent in older schemas). v7 serve rows additionally
/// contribute `snapshot_restore_wall_s` and `query_p99_ns` (the latter
/// converted to seconds on load so one threshold rule covers everything);
/// both are picked up in [`load`] when present.
const METRICS: [(&str, &str); 3] = [
    ("wall_s", "wall_spread"),
    ("sampling_wall_s", "sampling_wall_spread"),
    ("selection_wall_s", "selection_wall_spread"),
];

/// v7 serve-row metrics: `(field, spread_field, scale_to_seconds)`.
const SERVE_METRICS: [(&str, &str, f64); 2] = [
    ("snapshot_restore_wall_s", "snapshot_restore_spread", 1.0),
    ("query_p99_ns", "query_p99_spread", 1e-9),
];

/// v8 byte metric (sharded per-rank graph footprint). Deterministic — no
/// spread field — so the floor alone is the threshold. Rows where the
/// value is zero (engines that replicate the graph) are skipped.
const BYTE_METRIC: &str = "graph_bytes_peak";
/// Absolute guard for the byte metric: ignore growth under 4 KiB, which
/// is within allocator/rounding slack for the small snapshot graphs.
const ABS_GUARD_BYTES: f64 = 4096.0;

/// One config row of a snapshot, reduced to what the gate needs.
#[derive(Clone, Debug)]
struct Rec {
    key: String,
    /// `(metric, seconds, spread)` for each present wall metric.
    walls: Vec<(&'static str, f64, f64)>,
    /// v8 `graph_bytes_peak`, when present and nonzero.
    graph_bytes_peak: Option<f64>,
}

/// A whole snapshot, reduced to what the gate needs.
#[derive(Clone, Debug)]
struct Snapshot {
    version: u32,
    git_sha: Option<String>,
    threads: Option<u64>,
    rustc: Option<String>,
    configs: Vec<Rec>,
}

fn load(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = doc
        .str("schema")
        .ok_or_else(|| format!("{path}: missing \"schema\""))?;
    let version: u32 = schema
        .strip_prefix("ripples-perf-snapshot-v")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("{path}: not a perf snapshot (schema `{schema}`)"))?;
    let host = doc.get("host");
    let configs = doc
        .get("configs")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: missing \"configs\" array"))?
        .iter()
        .map(|rec| {
            let key = format!(
                "{}/{}/{}/{}",
                rec.str("engine").unwrap_or("?"),
                rec.str("sample_engine").unwrap_or("reference"),
                rec.str("graph").unwrap_or("?"),
                // Pre-v6 snapshots carry no storage field; every row of
                // theirs ran flat, so the keys stay comparable across
                // schema versions.
                rec.str("rrr_store").unwrap_or("flat"),
            );
            let mut walls: Vec<(&'static str, f64, f64)> = METRICS
                .iter()
                .filter_map(|&(metric, spread_field)| {
                    rec.num(metric)
                        .map(|secs| (metric, secs, rec.num(spread_field).unwrap_or(0.0)))
                })
                .collect();
            for &(metric, spread_field, scale) in &SERVE_METRICS {
                if let Some(raw) = rec.num(metric) {
                    walls.push((metric, raw * scale, rec.num(spread_field).unwrap_or(0.0)));
                }
            }
            let graph_bytes_peak = rec.num(BYTE_METRIC).filter(|&b| b > 0.0);
            Rec {
                key,
                walls,
                graph_bytes_peak,
            }
        })
        .collect();
    Ok(Snapshot {
        version,
        git_sha: host.and_then(|h| h.str("git_sha")).map(str::to_string),
        threads: host.and_then(|h| h.num("threads")).map(|t| t as u64),
        rustc: host.and_then(|h| h.str("rustc")).map(str::to_string),
        configs,
    })
}

/// A flagged regression: `key`/`metric` went from `base` to `cand`
/// seconds, exceeding `threshold` (relative).
struct Regression {
    key: String,
    metric: &'static str,
    base: f64,
    cand: f64,
    threshold: f64,
}

/// Compares `cand` against `base`, printing the full comparison table.
/// Returns the significant regressions, or `Err` when the snapshots are
/// not comparable (mismatched host provenance).
fn compare(
    base: &Snapshot,
    cand: &Snapshot,
    floor: f64,
    allow_host_mismatch: bool,
    quiet: bool,
) -> Result<Vec<Regression>, String> {
    if !allow_host_mismatch {
        if let (Some(a), Some(b)) = (base.threads, cand.threads) {
            if a != b {
                return Err(format!(
                    "host provenance mismatch: baseline ran with {a} threads, candidate with {b} \
                     (pass --allow-host-mismatch to compare anyway)"
                ));
            }
        }
        if let (Some(a), Some(b)) = (&base.rustc, &cand.rustc) {
            if a != b && a != "unknown" && b != "unknown" {
                return Err(format!(
                    "host provenance mismatch: baseline built by `{a}`, candidate by `{b}` \
                     (pass --allow-host-mismatch to compare anyway)"
                ));
            }
        }
    }

    let mut table = Table::new(vec![
        "config", "metric", "base", "cand", "delta", "limit", "verdict",
    ]);
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for b in &base.configs {
        let Some(c) = cand.configs.iter().find(|c| c.key == b.key) else {
            if !quiet {
                eprintln!("note: config {} only in baseline — skipped", b.key);
            }
            continue;
        };
        for &(metric, base_s, base_spread) in &b.walls {
            let Some(&(_, cand_s, cand_spread)) = c.walls.iter().find(|(m, _, _)| *m == metric)
            else {
                continue;
            };
            compared += 1;
            let threshold = floor.max(SPREAD_MULTIPLIER * base_spread.max(cand_spread));
            let delta = if base_s > 0.0 {
                (cand_s - base_s) / base_s
            } else {
                0.0
            };
            let regressed = delta > threshold && (cand_s - base_s) > ABS_GUARD_S;
            table.row(vec![
                b.key.clone(),
                metric.to_string(),
                format!("{base_s:.4}"),
                format!("{cand_s:.4}"),
                format!("{:+.1}%", delta * 100.0),
                format!("+{:.1}%", threshold * 100.0),
                if regressed {
                    "REGRESSED".to_string()
                } else {
                    "ok".to_string()
                },
            ]);
            if regressed {
                regressions.push(Regression {
                    key: b.key.clone(),
                    metric,
                    base: base_s,
                    cand: cand_s,
                    threshold,
                });
            }
        }
        // v8 memory gate: deterministic, so the floor alone bounds it.
        if let (Some(base_b), Some(cand_b)) = (b.graph_bytes_peak, c.graph_bytes_peak) {
            compared += 1;
            let delta = (cand_b - base_b) / base_b;
            let regressed = delta > floor && (cand_b - base_b) > ABS_GUARD_BYTES;
            table.row(vec![
                b.key.clone(),
                BYTE_METRIC.to_string(),
                format!("{base_b:.0}"),
                format!("{cand_b:.0}"),
                format!("{:+.1}%", delta * 100.0),
                format!("+{:.1}%", floor * 100.0),
                if regressed {
                    "REGRESSED".to_string()
                } else {
                    "ok".to_string()
                },
            ]);
            if regressed {
                regressions.push(Regression {
                    key: b.key.clone(),
                    metric: BYTE_METRIC,
                    base: base_b,
                    cand: cand_b,
                    threshold: floor,
                });
            }
        }
    }
    for c in &cand.configs {
        if !base.configs.iter().any(|b| b.key == c.key) && !quiet {
            eprintln!("note: config {} only in candidate — skipped", c.key);
        }
    }
    if compared == 0 {
        return Err("no overlapping configs to compare".into());
    }
    if !quiet {
        let sha = |s: &Option<String>| s.clone().unwrap_or_else(|| "?".into());
        eprintln!(
            "baseline v{} ({}) vs candidate v{} ({}): {compared} cells compared",
            base.version,
            sha(&base.git_sha),
            cand.version,
            sha(&cand.git_sha),
        );
        print!("{}", table.render());
    }
    Ok(regressions)
}

fn report_and_exit(regressions: &[Regression]) -> ! {
    if regressions.is_empty() {
        eprintln!("bench_diff: no significant regressions");
        std::process::exit(0);
    }
    for r in regressions {
        let unit = if r.metric == BYTE_METRIC { "B" } else { "s" };
        eprintln!(
            "REGRESSION: {} {}: {:.4}{unit} -> {:.4}{unit} ({:+.1}%, limit +{:.1}%)",
            r.key,
            r.metric,
            r.base,
            r.cand,
            (r.cand - r.base) / r.base * 100.0,
            r.threshold * 100.0,
        );
    }
    std::process::exit(1);
}

/// Proves the gate works using one real snapshot: self-compare must be
/// clean, a 2× sampling-wall perturbation must trip naming the config,
/// and a host mismatch must be refused.
fn self_test(path: &str, floor: f64) -> ! {
    let snap = load(path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    let clean =
        compare(&snap, &snap, floor, false, true).expect("self-comparison must be comparable");
    if !clean.is_empty() {
        eprintln!(
            "self-test FAILED: identical snapshots flagged {} regressions",
            clean.len()
        );
        std::process::exit(1);
    }
    eprintln!("self-test 1/4 ok: identical snapshots compare clean");

    let mut perturbed = snap.clone();
    let victim = perturbed
        .configs
        .iter_mut()
        .find(|rec| {
            rec.walls
                .iter()
                .any(|&(m, secs, _)| m == "sampling_wall_s" && secs > ABS_GUARD_S)
        })
        .unwrap_or_else(|| {
            eprintln!("self-test FAILED: no config with a sampling phase above the noise guard");
            std::process::exit(1);
        });
    let victim_key = victim.key.clone();
    for wall in &mut victim.walls {
        if wall.0 == "sampling_wall_s" || wall.0 == "wall_s" {
            wall.1 *= 2.0;
        }
    }
    let tripped = compare(&snap, &perturbed, floor, false, true)
        .expect("perturbed self-comparison must be comparable");
    let caught = tripped
        .iter()
        .any(|r| r.key == victim_key && r.metric == "sampling_wall_s");
    if !caught {
        eprintln!(
            "self-test FAILED: 2x sampling-wall perturbation of {victim_key} was not flagged"
        );
        std::process::exit(1);
    }
    eprintln!("self-test 2/4 ok: 2x sampling-wall perturbation of {victim_key} tripped the gate");

    // v8 byte gate: doubling a sharded row's per-rank graph footprint must
    // be flagged. Pre-v8 snapshots carry no byte metric — skip, don't fail.
    let mut bloated = snap.clone();
    match bloated
        .configs
        .iter_mut()
        .find(|rec| rec.graph_bytes_peak.is_some())
    {
        Some(victim) => {
            let victim_key = victim.key.clone();
            victim.graph_bytes_peak = victim.graph_bytes_peak.map(|b| b * 2.0);
            let tripped = compare(&snap, &bloated, floor, false, true)
                .expect("bloated self-comparison must be comparable");
            if !tripped
                .iter()
                .any(|r| r.key == victim_key && r.metric == BYTE_METRIC)
            {
                eprintln!(
                    "self-test FAILED: 2x graph_bytes_peak perturbation of {victim_key} was not flagged"
                );
                std::process::exit(1);
            }
            eprintln!(
                "self-test 3/4 ok: 2x graph_bytes_peak perturbation of {victim_key} tripped the gate"
            );
        }
        None => {
            eprintln!("self-test 3/4 skipped: snapshot carries no graph_bytes_peak rows (pre-v8)");
        }
    }

    let mut alien = snap.clone();
    alien.threads = Some(snap.threads.unwrap_or(1) + 1);
    match compare(&snap, &alien, floor, false, true) {
        Err(reason) => {
            eprintln!("self-test 4/4 ok: host mismatch refused ({reason})");
        }
        Ok(_) => {
            eprintln!("self-test FAILED: mismatched host provenance was not refused");
            std::process::exit(1);
        }
    }
    eprintln!("bench_diff self-test passed");
    std::process::exit(0);
}

fn main() {
    let args = Args::from_env();
    let floor = args.parse_or("floor", DEFAULT_FLOOR * 100.0) / 100.0;
    if floor < 0.0 {
        eprintln!("error: --floor must be non-negative");
        std::process::exit(2);
    }

    if let Some(path) = args.get("self-test") {
        self_test(path, floor);
    }

    let positional = args.positional();
    let [base_path, cand_path] = positional.as_slice() else {
        eprintln!(
            "usage: bench_diff BASELINE.json CANDIDATE.json [--floor PCT] [--allow-host-mismatch]\n       bench_diff --self-test SNAPSHOT.json"
        );
        std::process::exit(2);
    };

    let base = load(base_path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let cand = load(cand_path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    match compare(&base, &cand, floor, args.flag("allow-host-mismatch"), false) {
        Ok(regressions) => report_and_exit(&regressions),
        Err(reason) => {
            eprintln!("error: {reason}");
            std::process::exit(2);
        }
    }
}
