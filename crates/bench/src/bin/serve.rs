//! `serve` — the resident influence-query service.
//!
//! Builds (or restores) an RRR sketch **once**, then answers any number of
//! top-k / exclusion / spread queries from it over a zero-dependency
//! NDJSON line protocol — stdin/stdout by default, TCP with `--tcp ADDR`,
//! or a batch replay of a query file with `--queries FILE`.
//!
//! ```text
//! serve --standin cit-HepTh --scale-div 96 --k-max 16 [--epsilon E]
//!       [--seed S] [--model ic|lt]
//!       [--select auto|sequential|partitioned|lazy|hypergraph|fused]
//!       [--sample auto|reference|fused]
//!       [--rrr-store flat|varint|bitpack|spill] [--rrr-budget BYTES]
//!       [--snapshot-out FILE] [--snapshot-in FILE]
//!       [--queries FILE] [--tcp ADDR] [--read-timeout-ms MS]
//!       [--metrics FILE] [--no-timing]
//! ```
//!
//! Graph sources are the same as the `ripples` binary: `--input FILE`
//! (edge list), `--standin NAME [--scale-div D]`, or `--gen ba:N:M|er:N:M
//! [--gen-seed S]`.
//!
//! ## Protocol
//!
//! One JSON object per line in, one per line out (requests are parsed
//! with the bench JSON reader; every response is re-validated with the
//! trace crate's RFC 8259 validator before it is written):
//!
//! ```text
//! {"op":"topk","k":10}
//! {"op":"topk_excluding","k":10,"banned":[3,17]}
//! {"op":"spread","seeds":[3,17,40]}
//! {"op":"info"}
//! {"op":"quit"}
//! ```
//!
//! Responses carry `"ok":true` plus the answer and per-query accounting
//! (`wall_ns`, `entries_touched`, `covered`, `coverage`), or `"ok":false`
//! with an `"error"` string; the process never dies on a bad query.
//! `--no-timing` reports `wall_ns` as 0 — the one nondeterministic frame
//! field — so two replays of the same query file are byte-comparable
//! (CI's snapshot-restart parity gate relies on this).
//!
//! ## Snapshots
//!
//! `--snapshot-out FILE` writes the sealed sketch (versioned header with
//! graph fingerprint + RNG provenance, whole-file checksum) after the
//! build; `--snapshot-in FILE` restores it and **skips sampling
//! entirely** — the restored service answers bitwise-identically to the
//! one that wrote the file. Restore refuses (with a structured error) on
//! corrupt bytes or a fingerprint mismatch with the loaded graph.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use ripples_bench::json::{parse, Value};
use ripples_bench::Args;
use ripples_core::{ImmParams, SampleEngine, SelectEngine};
use ripples_diffusion::{DiffusionModel, RrrStoreKind, StorageConfig};
use ripples_graph::generators::{barabasi_albert, erdos_renyi, standin};
use ripples_graph::io::{read_edge_list_file, EdgeListOptions, VertexIds};
use ripples_graph::{Graph, Vertex, WeightModel};
use ripples_serve::{QueryReport, SketchService};
use ripples_trace::validate_json;

fn load_graph(args: &Args, model: DiffusionModel) -> Graph {
    let weights = WeightModel::UniformRandom { seed: 7 };
    let lt_normalize = model == DiffusionModel::LinearThreshold;
    if let Some(path) = args.get("input") {
        let options = EdgeListOptions {
            vertex_ids: VertexIds::Remap,
            undirected: args.flag("undirected"),
            default_prob: 1.0,
            weights: Some(weights),
        };
        read_edge_list_file(path, options).unwrap_or_else(|e| {
            eprintln!("error: cannot load {path}: {e}");
            std::process::exit(1);
        })
    } else if let Some(name) = args.get("standin") {
        let spec = standin(name).unwrap_or_else(|| {
            eprintln!("error: unknown stand-in `{name}`; see ripples-graph's catalog");
            std::process::exit(1);
        });
        let divisor = args.parse_or("scale-div", spec.default_divisor);
        spec.build(divisor, weights, lt_normalize)
    } else if let Some(spec) = args.get("gen") {
        let seed: u64 = args.parse_or("gen-seed", 42);
        let parts: Vec<&str> = spec.split(':').collect();
        let parse_num = |s: &str| -> u64 {
            s.parse().unwrap_or_else(|e| {
                eprintln!("error: bad --gen number `{s}`: {e}");
                std::process::exit(1);
            })
        };
        match parts.as_slice() {
            ["ba", n, m] => barabasi_albert(
                parse_num(n) as u32,
                parse_num(m) as u32,
                weights,
                lt_normalize,
                seed,
            ),
            ["er", n, m] => erdos_renyi(
                parse_num(n) as u32,
                parse_num(m) as usize,
                weights,
                lt_normalize,
                seed,
            ),
            _ => {
                eprintln!("error: --gen takes `ba:N:M` or `er:N:M`, got `{spec}`");
                std::process::exit(1);
            }
        }
    } else {
        eprintln!(
            "error: pass --input FILE, --standin NAME (e.g. --standin cit-HepTh), \
             or --gen ba:N:M|er:N:M"
        );
        std::process::exit(1);
    }
}

fn render_seeds(seeds: &[Vertex]) -> String {
    let mut s = String::from("[");
    for (i, v) in seeds.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push(']');
    s
}

/// `--no-timing`: zero `wall_ns` in every frame so replay output is
/// byte-stable across runs.
static NO_TIMING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn report_fields(r: &QueryReport) -> String {
    let wall = if NO_TIMING.load(std::sync::atomic::Ordering::Relaxed) {
        0
    } else {
        r.wall_nanos
    };
    format!(
        "\"wall_ns\":{},\"entries_touched\":{},\"covered\":{},\"coverage\":{}",
        wall, r.entries_touched, r.covered, r.coverage_fraction
    )
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn error_frame(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", escape(msg))
}

/// Extracts a `u32` vertex list from a JSON array field.
fn vertex_list(v: &Value, field: &str) -> Result<Vec<Vertex>, String> {
    let arr = v
        .get(field)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("`{field}` must be an array of vertex ids"))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .filter(|f| f.fract() == 0.0 && *f >= 0.0 && *f <= f64::from(u32::MAX))
                .map(|f| f as Vertex)
                .ok_or_else(|| format!("`{field}` entries must be non-negative integers"))
        })
        .collect()
}

/// Answers one request line; always returns a single JSON frame. `quit`
/// additionally signals the session loop to stop.
fn handle_line(svc: &mut SketchService, line: &str) -> (String, bool) {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return (error_frame("empty request line"), false);
    }
    let req = match parse(trimmed) {
        Ok(v) => v,
        Err(e) => return (error_frame(&format!("bad JSON: {e}")), false),
    };
    let op = match req.str("op") {
        Some(op) => op.to_string(),
        None => return (error_frame("missing `op` field"), false),
    };
    let frame = match op.as_str() {
        "topk" => {
            let k = req.num("k").filter(|f| f.fract() == 0.0 && *f >= 0.0);
            match k {
                None => error_frame("`k` must be a non-negative integer"),
                Some(k) => match svc.topk(k as u32) {
                    Ok((seeds, r)) => format!(
                        "{{\"ok\":true,\"op\":\"topk\",\"k\":{},\"seeds\":{},{}}}",
                        k as u32,
                        render_seeds(&seeds),
                        report_fields(&r)
                    ),
                    Err(e) => error_frame(&e.to_string()),
                },
            }
        }
        "topk_excluding" => {
            let k = req.num("k").filter(|f| f.fract() == 0.0 && *f >= 0.0);
            let banned = vertex_list(&req, "banned");
            match (k, banned) {
                (None, _) => error_frame("`k` must be a non-negative integer"),
                (_, Err(e)) => error_frame(&e),
                (Some(k), Ok(banned)) => match svc.topk_excluding(k as u32, &banned) {
                    Ok((seeds, r)) => format!(
                        "{{\"ok\":true,\"op\":\"topk_excluding\",\"k\":{},\"seeds\":{},{}}}",
                        k as u32,
                        render_seeds(&seeds),
                        report_fields(&r)
                    ),
                    Err(e) => error_frame(&e.to_string()),
                },
            }
        }
        "spread" => match vertex_list(&req, "seeds") {
            Err(e) => error_frame(&e),
            Ok(seeds) => match svc.spread_estimate(&seeds) {
                Ok((estimate, r)) => format!(
                    "{{\"ok\":true,\"op\":\"spread\",\"estimate\":{},{}}}",
                    estimate,
                    report_fields(&r)
                ),
                Err(e) => error_frame(&e.to_string()),
            },
        },
        "info" => {
            let no_timing = NO_TIMING.load(std::sync::atomic::Ordering::Relaxed);
            let quantile = |q| {
                if no_timing {
                    0
                } else {
                    svc.latency_quantile_nanos(q)
                }
            };
            format!(
                "{{\"ok\":true,\"op\":\"info\",\"n\":{},\"theta\":{},\"k_max\":{},\
                 \"store\":\"{}\",\"select\":\"{}\",\"sample\":\"{}\",\
                 \"resident_bytes\":{},\"queries_served\":{},\
                 \"query_p50_ns\":{},\"query_p99_ns\":{}}}",
                svc.num_vertices(),
                svc.theta(),
                svc.k_max(),
                svc.store_kind().tag(),
                svc.select_engine().tag(),
                svc.sample_engine().tag(),
                svc.resident_bytes(),
                svc.queries_served(),
                quantile(0.50),
                quantile(0.99),
            )
        }
        "quit" => return ("{\"ok\":true,\"op\":\"quit\"}".to_string(), true),
        other => error_frame(&format!("unknown op `{other}`")),
    };
    (frame, false)
}

/// Runs the request/response loop over any line source and sink.
fn session<R: BufRead, W: Write>(svc: &mut SketchService, reader: R, mut writer: W) {
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("serve: read error: {e}");
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (frame, quit) = handle_line(svc, &line);
        debug_assert!(
            validate_json(&frame).is_ok(),
            "serve produced invalid JSON: {frame}"
        );
        if writeln!(writer, "{frame}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if quit {
            break;
        }
    }
}

fn main() {
    let args = Args::from_env();

    let model = match args.get("model").unwrap_or("ic") {
        "ic" => DiffusionModel::IndependentCascade,
        "lt" => DiffusionModel::LinearThreshold,
        other => {
            eprintln!("error: unknown --model `{other}` (try ic|lt)");
            std::process::exit(1);
        }
    };
    let select = match args.get("select") {
        None => SelectEngine::Auto,
        Some(tag) => SelectEngine::from_tag(tag).unwrap_or_else(|| {
            eprintln!(
                "error: unknown --select `{tag}` \
                 (try auto|sequential|partitioned|lazy|hypergraph|fused)"
            );
            std::process::exit(1);
        }),
    };
    let sample = match args.get("sample") {
        None => SampleEngine::Reference,
        Some(tag) => SampleEngine::from_tag(tag).unwrap_or_else(|| {
            eprintln!("error: unknown --sample `{tag}` (try auto|reference|fused)");
            std::process::exit(1);
        }),
    };
    let storage = StorageConfig {
        kind: match args.get("rrr-store") {
            None => RrrStoreKind::Flat,
            Some(tag) => RrrStoreKind::from_tag(tag).unwrap_or_else(|| {
                eprintln!("error: unknown --rrr-store `{tag}` (try flat|varint|bitpack|spill)");
                std::process::exit(1);
            }),
        },
        budget: args.get("rrr-budget").map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: --rrr-budget takes a byte count, got `{s}`");
                std::process::exit(1);
            })
        }),
    };

    NO_TIMING.store(args.flag("no-timing"), std::sync::atomic::Ordering::Relaxed);

    let metrics_path = args.get("metrics").map(str::to_string);
    if metrics_path.is_some() {
        ripples_metrics::enable();
    }

    let graph = load_graph(&args, model);

    let mut svc = if let Some(snap) = args.get("snapshot-in") {
        // Restore path: the sketch comes off disk, sampling is skipped
        // entirely. Provenance (seed, ε, model, k_max) rides in the file.
        match SketchService::restore_from(Path::new(snap), &graph, select) {
            Ok(svc) => {
                eprintln!(
                    "serve: restored sketch from {snap}: θ={} k_max={} store={}",
                    svc.theta(),
                    svc.k_max(),
                    svc.store_kind().tag()
                );
                svc
            }
            Err(e) => {
                eprintln!("error: cannot restore {snap}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let k_max: u32 = args.parse_or("k-max", 16);
        if k_max == 0 {
            eprintln!("error: --k-max must be positive");
            std::process::exit(1);
        }
        let epsilon: f64 = args.parse_or("epsilon", 0.5);
        let seed: u64 = args.parse_or("seed", 0);
        let params = ImmParams::new(1, epsilon, model, seed).with_k_max(k_max);
        let svc = SketchService::build(&graph, params, select, sample, storage);
        eprintln!(
            "serve: built sketch in {:.3}s: θ={} k_max={} store={} ({} resident bytes)",
            svc.build_wall_s(),
            svc.theta(),
            svc.k_max(),
            svc.store_kind().tag(),
            svc.resident_bytes()
        );
        svc
    };

    if let Some(out) = args.get("snapshot-out") {
        match svc.snapshot_to(Path::new(out)) {
            Ok(()) => eprintln!("serve: snapshot written to {out}"),
            Err(e) => {
                eprintln!("error: cannot snapshot to {out}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(qfile) = args.get("queries") {
        // Batch replay: answer the whole pinned query file, then exit.
        let file = std::fs::File::open(qfile).unwrap_or_else(|e| {
            eprintln!("error: cannot open --queries {qfile}: {e}");
            std::process::exit(1);
        });
        let stdout = std::io::stdout();
        session(&mut svc, BufReader::new(file), stdout.lock());
    } else if let Some(addr) = args.get("tcp") {
        let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "serve: listening on {}",
            listener
                .local_addr()
                .map_or_else(|_| addr.to_string(), |a| a.to_string())
        );
        // One client at a time: queries borrow the single resident sketch.
        // A per-connection read timeout bounds how long a wedged client
        // (connected but silent, never closing) can hold the session —
        // its read errors out, the session ends, and the loop accepts the
        // next connection instead of starving it. 0 disables the timeout.
        let read_timeout_ms: u64 = args.parse_or("read-timeout-ms", 5000);
        let read_timeout =
            (read_timeout_ms > 0).then(|| std::time::Duration::from_millis(read_timeout_ms));
        for stream in listener.incoming() {
            match stream {
                Ok(stream) => {
                    if let Err(e) = stream.set_read_timeout(read_timeout) {
                        eprintln!("serve: cannot set read timeout: {e}");
                        continue;
                    }
                    let reader = BufReader::new(match stream.try_clone() {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("serve: cannot clone stream: {e}");
                            continue;
                        }
                    });
                    // Client I/O errors (including the timeout) end this
                    // session, never the process.
                    session(&mut svc, reader, stream);
                }
                Err(e) => eprintln!("serve: accept failed: {e}"),
            }
        }
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        session(&mut svc, stdin.lock(), stdout.lock());
    }

    if let Some(path) = &metrics_path {
        // A final one-sample metrics series of the serving session:
        // gauges (sketch bytes, latency quantiles) and counters, in the
        // same schema-v1 shape the batch binaries emit.
        let series = ripples_metrics::TimeSeries {
            interval_ms: 0,
            downsample_halvings: 0,
            samples: vec![ripples_metrics::snapshot()],
        };
        let json = series.to_json();
        if let Err(e) = validate_json(&json) {
            eprintln!("error: metrics snapshot is not valid JSON: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write --metrics {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("serve: metrics written to {path}");
    }
}
