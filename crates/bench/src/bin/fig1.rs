//! Figure 1: activated nodes as a function of seed-set size k at the two
//! accuracy settings the paper contrasts — ε = 0.5 (what the serial
//! state-of-the-art could afford) and ε = 0.13 (what the parallel
//! implementation enables), on the com-Orkut stand-in.
//!
//! Expected shape: both curves grow sub-linearly (submodularity); the
//! ε = 0.13 curve sits at or above ε = 0.5 for matching k and extends to
//! 2× the seed budget.
//!
//! Usage: `cargo run --release -p ripples-bench --bin fig1 -- \
//!            [--scale-div N] [--trials T] [--csv]`

use ripples_bench::{effective_divisor, measure, paper_graph, Args, Table};
use ripples_core::mt::imm_multithreaded;
use ripples_core::ImmParams;
use ripples_diffusion::{estimate_spread, DiffusionModel};
use ripples_graph::generators::standin;
use ripples_rng::StreamFactory;

fn main() {
    let args = Args::from_env();
    let scale_div: u32 = args.parse_or("scale-div", 4);
    let trials: u32 = args.parse_or("trials", 400);
    let spec = standin("com-Orkut").expect("catalog");
    let model = DiffusionModel::IndependentCascade;
    let graph = paper_graph(spec, effective_divisor(spec, scale_div), model);
    println!(
        "# Figure 1 reproduction: activated nodes vs k ({} stand-in, n = {}, m = {})",
        spec.name,
        graph.num_vertices(),
        graph.num_edges()
    );

    let factory = StreamFactory::new(0xF161);
    let mut table = Table::new(vec!["epsilon", "k", "theta", "activated", "time_s"]);
    // (ε, k sweep): the blue arc (serial-feasible) stops at k=100; the red
    // arc (parallel-enabled) reaches k=200 at higher precision.
    let settings: [(f64, &[u32]); 2] = [
        (0.5, &[25, 50, 75, 100]),
        (0.13, &[25, 50, 75, 100, 150, 200]),
    ];
    for (eps, ks) in settings {
        for &k in ks {
            let params = ImmParams::new(k, eps, model, 0xF1);
            let (result, elapsed) = measure(|| imm_multithreaded(&graph, &params, 0));
            let activated = estimate_spread(&graph, model, &result.seeds, trials, &factory);
            table.row(vec![
                format!("{eps:.2}"),
                k.to_string(),
                result.theta.to_string(),
                format!("{activated:.1}"),
                format!("{:.2}", elapsed.as_secs_f64()),
            ]);
            eprintln!("done: eps {eps} k {k} (θ = {})", result.theta);
        }
    }
    table.print(args.flag("csv"));
    println!("\n# expected shape: activation grows sub-linearly in k; the ε = 0.13 series");
    println!("# matches or beats ε = 0.5 at equal k and extends the frontier to k = 200");
}
