//! Figures 7 & 8: distributed strong scaling on the four biggest graphs
//! (ε = 0.13, k = 200) — up to 16 nodes of Puma (Figure 7) and up to 1024
//! nodes of Edison (Figure 8), both models.
//!
//! Real MPI clusters are unavailable here (see DESIGN.md), so the harness:
//!
//! 1. **executes** the real distributed algorithm on in-process ranks
//!    (validating collectives and cross-rank agreement), and
//! 2. **predicts** cluster-scale wall-clock by replaying the recorded work
//!    trace through the α–β communication model — the series the paper
//!    plots.
//!
//! Usage: `cargo run --release -p ripples-bench --bin fig7_8 -- \
//!            [--cluster puma|edison] [--model ic|lt|both] [--scale-div N] \
//!            [--epsilon E] [--k K] [--ranks R] [--csv]`

use ripples_bench::{big_four, effective_divisor, paper_graph, Args, Table};
use ripples_comm::{ClusterSpec, ThreadWorld};
use ripples_core::dist::imm_distributed;
use ripples_core::scaling::{predict_distributed, WorkTrace};
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;

fn main() {
    let args = Args::from_env();
    let scale_div: u32 = args.parse_or("scale-div", 16);
    let epsilon: f64 = args.parse_or("epsilon", 0.13);
    let k: u32 = args.parse_or("k", 200);
    let validation_ranks: u32 = args.parse_or("ranks", 2);
    let clusters: Vec<ClusterSpec> = match args.get("cluster").unwrap_or("both") {
        "edison" => vec![ClusterSpec::edison()],
        "puma" => vec![ClusterSpec::puma()],
        _ => vec![ClusterSpec::puma(), ClusterSpec::edison()],
    };
    let nodes_for = |cluster: &ClusterSpec| -> &'static [u32] {
        if cluster.name == "edison" {
            &[64, 128, 256, 512, 1024]
        } else {
            &[2, 4, 6, 8, 10, 12, 14, 16]
        }
    };
    let models: Vec<DiffusionModel> = match args.get("model").unwrap_or("both") {
        "ic" => vec![DiffusionModel::IndependentCascade],
        "lt" => vec![DiffusionModel::LinearThreshold],
        _ => vec![
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ],
    };

    println!("# Figures 7/8 reproduction: distributed strong scaling (ε = {epsilon}, k = {k})");
    println!("# validated on {validation_ranks} real in-process ranks, then replayed through the α–β model\n");

    let mut table = Table::new(vec![
        "cluster", "graph", "model", "nodes", "sample_s", "select_s", "comm_s", "total_s",
        "speedup",
    ]);
    for spec in big_four() {
        let divisor = effective_divisor(spec, scale_div);
        for &model in &models {
            let graph = paper_graph(spec, divisor, model);
            let params = ImmParams::new(k, epsilon, model, 0xF78);

            // Real distributed execution: ranks must agree bit-for-bit.
            let world = ThreadWorld::new(validation_ranks);
            let results = world.run(|comm| imm_distributed(comm, &graph, &params));
            let first = &results[0];
            for r in &results[1..] {
                assert_eq!(r.seeds, first.seeds, "{}: ranks disagreed", spec.name);
            }

            // Cluster-scale prediction from the union of local traces.
            let mut sample_work: Vec<u64> = Vec::new();
            for r in &results {
                sample_work.extend_from_slice(&r.sample_work);
            }
            let entries: u64 = results
                .iter()
                .map(|r| {
                    let offsets = (r.sample_work.len() + 1) * std::mem::size_of::<usize>();
                    (r.memory.peak_rrr_bytes.saturating_sub(offsets) / 4) as u64
                })
                .sum();
            let trace = WorkTrace {
                n: graph.num_vertices(),
                k,
                theta: first.theta,
                sample_work,
                rrr_entries: entries,
                allreduce_calls: u64::from(k + 1) * 4,
            };
            for cluster in &clusters {
                let points = predict_distributed(&trace, cluster, nodes_for(cluster));
                let base = points[0].total_s();
                for p in &points {
                    table.row(vec![
                        cluster.name.to_string(),
                        spec.name.to_string(),
                        model.tag().to_string(),
                        p.units.to_string(),
                        format!("{:.3}", p.sample_s),
                        format!("{:.3}", p.select_s),
                        format!("{:.3}", p.comm_s),
                        format!("{:.3}", p.total_s()),
                        format!("{:.2}x", base / p.total_s()),
                    ]);
                }
            }
            eprintln!("done: {} {} (θ = {})", spec.name, model.tag(), first.theta);
        }
    }
    table.print(args.flag("csv"));
    println!(
        "\n# expected shape (paper): IC keeps scaling to high node counts; LT saturates early"
    );
    println!("# (insufficient work per rank) and the All-Reduce term grows with lg(nodes)");
}
