//! A minimal RFC 8259 JSON reader for the harness's own artifacts.
//!
//! The workspace already has a dependency-free JSON *validator*
//! (`ripples_trace::validate_json`); this module adds the matching
//! *reader* so tools like `bench_diff` can consume the snapshots the
//! harness writes. It is deliberately small: full RFC 8259 grammar,
//! numbers surfaced as `f64`, object keys kept in file order. It is not
//! a general-purpose library — inputs are our own machine-written files,
//! so errors carry byte offsets and no recovery.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (read as `f64`; all harness numbers fit).
    Num(f64),
    /// A string with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in file order (our files never repeat keys).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `self[key]` as f64.
    #[must_use]
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// Convenience: `self[key]` as &str.
    #[must_use]
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }
}

/// Parses a complete JSON document (one value plus trailing whitespace).
///
/// # Errors
///
/// Returns a message with the byte offset of the first violation.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(format!("lone surrogate at byte {}", self.pos));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("bad codepoint at byte {}", self.pos))?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos));
                }
                Some(_) => {
                    // Copy the whole UTF-8 code point (input is a &str, so
                    // the bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(slice).map_err(|_| "non-ascii \\u escape")?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": "x\n\"y\""}, "d": null, "e": true}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2],
            Value::Num(1000.0)
        );
        assert_eq!(v.get("b").unwrap().str("c"), Some("x\n\"y\""));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn decodes_unicode_escapes() {
        let v = parse(r#""café 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("café 😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn roundtrips_a_real_snapshot_shape() {
        let doc = r#"{
  "schema": "ripples-perf-snapshot-v4",
  "host": {"threads": 4},
  "records": [
    {"graph": "er-sparse", "engine": "mt", "wall_s": 0.291616}
  ]
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.str("schema"), Some("ripples-perf-snapshot-v4"));
        let rec = &v.get("records").unwrap().as_array().unwrap()[0];
        assert_eq!(rec.num("wall_s"), Some(0.291616));
        assert_eq!(v.get("host").unwrap().num("threads"), Some(4.0));
    }
}
