//! Shared harness utilities for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! Each binary under `src/bin/` reproduces one table or figure (see
//! DESIGN.md §4 for the index); this library holds what they share: aligned
//! table printing, a minimal `--flag value` argument parser, timing
//! helpers, and the standard graph-preparation path (stand-in generation at
//! a chosen divisor with the paper's weight conventions).

#![warn(missing_docs)]

pub mod json;

use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::{standin_catalog, StandinSpec};
use ripples_graph::{Graph, WeightModel};
use std::time::{Duration, Instant};

/// Measures `f`, returning its output and the elapsed wall-clock.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Builds the experiment input for `spec` under the paper's weighting
/// conventions: IC uses uniform-random probabilities in `[0, 1)` (§4), LT
/// additionally renormalizes each vertex's incoming mass to at most one.
#[must_use]
pub fn paper_graph(spec: &StandinSpec, divisor: u32, model: DiffusionModel) -> Graph {
    let weights = WeightModel::UniformRandom { seed: 0xEDCE };
    match model {
        DiffusionModel::IndependentCascade => spec.build(divisor, weights, false),
        DiffusionModel::LinearThreshold => spec.build(divisor, weights, true),
    }
}

/// The stand-in divisor to use: the spec's default multiplied by
/// `--scale-div` (a cheap way to shrink every experiment for smoke runs).
#[must_use]
pub fn effective_divisor(spec: &StandinSpec, extra: u32) -> u32 {
    spec.default_divisor.saturating_mul(extra.max(1))
}

/// The four biggest graphs of the catalogue — the paper's distributed
/// experiments (Figures 7–8) use only these ("smaller graphs do not produce
/// sufficient work to justify high processor count").
#[must_use]
pub fn big_four() -> Vec<&'static StandinSpec> {
    ["com-YouTube", "soc-Pokec", "soc-LiveJournal1", "com-Orkut"]
        .iter()
        .map(|n| {
            standin_catalog()
                .iter()
                .find(|s| s.name.eq_ignore_ascii_case(n))
                .expect("catalog entry")
        })
        .collect()
}

/// Minimal `--flag value` / `--flag` argument parser for the experiment
/// binaries (no external CLI crates offline).
#[derive(Clone, Debug, Default)]
pub struct Args {
    pairs: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses `std::env::args` (skipping the binary name).
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (used by tests).
    #[allow(clippy::should_implement_trait)] // not an iterator-of-Args collection
    pub fn from_iter<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut pairs = Vec::new();
        let mut tokens = tokens.into_iter().peekable();
        while let Some(tok) = tokens.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = match tokens.peek() {
                    Some(next) if !next.starts_with("--") => tokens.next(),
                    _ => None,
                };
                pairs.push((name.to_string(), value));
            } else {
                // Bare positional tokens are recorded under an empty name.
                pairs.push((String::new(), Some(tok)));
            }
        }
        Self { pairs }
    }

    /// The raw string value of `--name`, if present with a value.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// True if `--name` appeared (with or without value).
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    /// Bare (non-`--flag`) tokens, in order. A token following a `--flag`
    /// is that flag's value, not a positional.
    #[must_use]
    pub fn positional(&self) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(n, _)| n.is_empty())
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    /// Parses `--name` as `T`, falling back to `default`.
    ///
    /// # Panics
    ///
    /// Panics (with a readable message) if the value fails to parse —
    /// experiment binaries prefer failing loudly to running the wrong
    /// configuration.
    #[must_use]
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| panic!("invalid value `{raw}` for --{name}")),
        }
    }
}

/// An aligned plain-text table printer for experiment output.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with right-aligned columns separated by two spaces.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| {
            row.iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as comma-separated values (for plotting scripts).
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(&self.rows) {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout, as CSV when `csv` is set.
    pub fn print(&self, csv: bool) {
        if csv {
            print!("{}", self.render_csv());
        } else {
            print!("{}", self.render());
        }
    }
}

/// Formats a `Duration` in seconds with millisecond resolution.
#[must_use]
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_values_and_flags() {
        let a = Args::from_iter(
            ["--k", "50", "--csv", "--model", "ic"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.get("k"), Some("50"));
        assert_eq!(a.parse_or("k", 0u32), 50);
        assert!(a.flag("csv"));
        assert!(!a.flag("absent"));
        assert_eq!(a.parse_or("missing", 7u32), 7);
        assert_eq!(a.get("model"), Some("ic"));
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn args_bad_parse_panics() {
        let a = Args::from_iter(["--k", "abc"].iter().map(|s| s.to_string()));
        let _ = a.parse_or("k", 0u32);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["x", "1"]);
        t.row(vec!["longer", "22"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
        let csv = t.render_csv();
        assert_eq!(csv.lines().next(), Some("name,value"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn big_four_are_the_paper_set() {
        let names: Vec<&str> = big_four().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["com-YouTube", "soc-Pokec", "soc-LiveJournal1", "com-Orkut"]
        );
    }

    #[test]
    fn paper_graph_lt_is_normalized() {
        let spec = ripples_graph::generators::standin("cit-HepTh").unwrap();
        let g = paper_graph(spec, 64, DiffusionModel::LinearThreshold);
        for v in 0..g.num_vertices() {
            assert!(g.in_weight_sum(v) <= 1.0 + 1e-5);
        }
    }
}
