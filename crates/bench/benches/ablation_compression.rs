//! Ablation 6: delta-varint compressed RRR storage versus the plain compact
//! arena — memory vs selection-time trade (extends §3.1's storage
//! discussion; DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};
use ripples_core::select::select_seeds_sequential;
use ripples_diffusion::{
    sample_batch_sequential, CompressedRrrCollection, DiffusionModel, RrrCollection,
};
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;

fn bench_compression(c: &mut Criterion) {
    let spec = standin("cit-HepTh").unwrap();
    let graph = spec.build(32, WeightModel::UniformRandom { seed: 8 }, false);
    let factory = StreamFactory::new(21);
    let mut plain = RrrCollection::new();
    sample_batch_sequential(
        &graph,
        DiffusionModel::IndependentCascade,
        &factory,
        0,
        3_000,
        &mut plain,
    );
    let compressed = CompressedRrrCollection::from(&plain);
    let n = graph.num_vertices();
    eprintln!(
        "storage: plain {} bytes, compressed {} bytes ({:.2}x smaller)",
        plain.resident_bytes(),
        compressed.resident_bytes(),
        plain.resident_bytes() as f64 / compressed.resident_bytes() as f64
    );

    let mut group = c.benchmark_group("rrr_compression");
    group.sample_size(10);
    group.bench_function("encode", |b| {
        b.iter(|| CompressedRrrCollection::from(&plain));
    });
    group.bench_function("select_plain", |b| {
        b.iter(|| select_seeds_sequential(&plain, n, 20));
    });
    group.bench_function("select_compressed", |b| {
        b.iter(|| compressed.select_greedy(n, 20));
    });
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
