//! Ablation 1 (DESIGN.md §6): sorted-list + binary-search membership
//! (the paper's §3.1 layout) versus hash-set membership during seed
//! selection's purge scans.

use criterion::{criterion_group, criterion_main, Criterion};
use ripples_diffusion::{sample_batch_sequential, DiffusionModel, RrrCollection};
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;
use std::collections::HashSet;

fn bench_membership(c: &mut Criterion) {
    let spec = standin("cit-HepTh").unwrap();
    let graph = spec.build(32, WeightModel::UniformRandom { seed: 1 }, false);
    let factory = StreamFactory::new(11);
    let mut collection = RrrCollection::new();
    sample_batch_sequential(
        &graph,
        DiffusionModel::IndependentCascade,
        &factory,
        0,
        2_000,
        &mut collection,
    );
    // Equivalent hash-set representation.
    let hashed: Vec<HashSet<u32>> = collection
        .iter()
        .map(|s| s.iter().copied().collect())
        .collect();
    let probes: Vec<u32> = (0..64).map(|i| (i * 131) % graph.num_vertices()).collect();

    let mut group = c.benchmark_group("membership");
    group.sample_size(10);
    group.bench_function("sorted_binary_search", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &v in &probes {
                for i in 0..collection.len() {
                    if collection.get(i).binary_search(&v).is_ok() {
                        hits += 1;
                    }
                }
            }
            hits
        });
    });
    group.bench_function("hash_set", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &v in &probes {
                for s in &hashed {
                    if s.contains(&v) {
                        hits += 1;
                    }
                }
            }
            hits
        });
    });
    group.finish();
}

criterion_group!(benches, bench_membership);
criterion_main!(benches);
