//! Shared-memory collective throughput of the MPI-substitute substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripples_comm::{Communicator, ThreadWorld};

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    for ranks in [2u32, 4] {
        for len in [1usize << 10, 1 << 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("ranks{ranks}"), len),
                &len,
                |b, &len| {
                    let world = ThreadWorld::new(ranks);
                    b.iter(|| {
                        world.run(|comm| {
                            let mut buf = vec![u64::from(comm.rank()); len];
                            comm.all_reduce_sum_u64(&mut buf);
                            buf[0]
                        })
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce);
criterion_main!(benches);
