//! Ablation 3 (DESIGN.md §6): one-direction compact storage (IMMOPT) vs
//! two-direction hypergraph storage (Tang-style IMM) — build cost and
//! selection cost, the trade Table 2 quantifies.

use criterion::{criterion_group, criterion_main, Criterion};
use ripples_core::select::{select_seeds_hypergraph, select_seeds_sequential};
use ripples_diffusion::{sample_batch_sequential, DiffusionModel, HyperGraph, RrrCollection};
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;

fn bench_storage(c: &mut Criterion) {
    let spec = standin("cit-HepTh").unwrap();
    let graph = spec.build(32, WeightModel::UniformRandom { seed: 3 }, false);
    let factory = StreamFactory::new(9);
    let mut collection = RrrCollection::new();
    sample_batch_sequential(
        &graph,
        DiffusionModel::IndependentCascade,
        &factory,
        0,
        4_000,
        &mut collection,
    );
    let n = graph.num_vertices();
    let k = 50;
    let hyper = HyperGraph::build(collection.clone(), n);

    let mut group = c.benchmark_group("storage_layouts");
    group.sample_size(10);
    group.bench_function("hypergraph_index_build", |b| {
        b.iter(|| HyperGraph::build(collection.clone(), n));
    });
    group.bench_function("select_compact_scan", |b| {
        b.iter(|| select_seeds_sequential(&collection, n, k));
    });
    group.bench_function("select_inverted_index", |b| {
        b.iter(|| select_seeds_hypergraph(&hyper, n, k));
    });
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
