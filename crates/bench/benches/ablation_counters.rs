//! Ablation 2 (DESIGN.md §6): interval-partitioned counters (the paper's
//! synchronization-free Algorithm 4) versus a shared atomic counter array —
//! the alternative the paper explicitly rejects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::prelude::*;
use ripples_diffusion::{sample_batch_sequential, DiffusionModel, RrrCollection};
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;
use std::sync::atomic::{AtomicU64, Ordering};

fn count_partitioned(collection: &RrrCollection, n: u32, parts: usize) -> Vec<u64> {
    let n_us = n as usize;
    let bounds: Vec<(u32, u32)> = (0..parts)
        .map(|t| {
            (
                ((n_us * t) / parts) as u32,
                ((n_us * (t + 1)) / parts) as u32,
            )
        })
        .collect();
    let mut counters = vec![0u64; n_us];
    let mut slices: Vec<&mut [u64]> = Vec::with_capacity(parts);
    let mut rest: &mut [u64] = &mut counters;
    for &(vl, vh) in &bounds {
        let (head, tail) = rest.split_at_mut((vh - vl) as usize);
        slices.push(head);
        rest = tail;
    }
    rayon::scope(|s| {
        for (slice, &(vl, vh)) in slices.iter_mut().zip(&bounds) {
            s.spawn(move |_| {
                for i in 0..collection.len() {
                    for &u in collection.partition_slice(i, vl, vh) {
                        slice[(u - vl) as usize] += 1;
                    }
                }
            });
        }
    });
    counters
}

fn count_atomic(collection: &RrrCollection, n: u32) -> Vec<u64> {
    let counters: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    (0..collection.len()).into_par_iter().for_each(|i| {
        for &u in collection.get(i) {
            counters[u as usize].fetch_add(1, Ordering::Relaxed);
        }
    });
    counters.into_iter().map(AtomicU64::into_inner).collect()
}

fn bench_counters(c: &mut Criterion) {
    let spec = standin("cit-HepTh").unwrap();
    let graph = spec.build(32, WeightModel::UniformRandom { seed: 2 }, false);
    let factory = StreamFactory::new(5);
    let mut collection = RrrCollection::new();
    sample_batch_sequential(
        &graph,
        DiffusionModel::IndependentCascade,
        &factory,
        0,
        4_000,
        &mut collection,
    );
    let n = graph.num_vertices();

    // Correctness cross-check before timing.
    assert_eq!(
        count_partitioned(&collection, n, 4),
        count_atomic(&collection, n)
    );

    let mut group = c.benchmark_group("counting_pass");
    group.sample_size(10);
    for parts in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("partitioned", parts), &parts, |b, &p| {
            b.iter(|| count_partitioned(&collection, n, p));
        });
    }
    group.bench_function("atomic", |b| {
        b.iter(|| count_atomic(&collection, n));
    });
    group.finish();
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
