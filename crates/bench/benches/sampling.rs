//! RRR-set generation throughput (Algorithm 3), IC vs LT.
//!
//! The paper's §4.2 rests on sampling being the dominant, memory-bound
//! phase and on LT sets being far cheaper than IC sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ripples_diffusion::{sample_batch_sequential, DiffusionModel, RrrCollection};
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;

fn bench_sampling(c: &mut Criterion) {
    let spec = standin("cit-HepTh").unwrap();
    let batch = 512usize;
    let mut group = c.benchmark_group("rrr_sampling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch as u64));
    for model in [
        DiffusionModel::IndependentCascade,
        DiffusionModel::LinearThreshold,
    ] {
        let lt = model == DiffusionModel::LinearThreshold;
        let graph = spec.build(32, WeightModel::UniformRandom { seed: 1 }, lt);
        let factory = StreamFactory::new(7);
        group.bench_with_input(BenchmarkId::new("batch", model.tag()), &graph, |b, g| {
            b.iter(|| {
                let mut out = RrrCollection::new();
                sample_batch_sequential(g, model, &factory, 0, batch, &mut out);
                out
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
