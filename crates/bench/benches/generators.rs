//! Synthetic graph-generator throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ripples_graph::generators::{barabasi_albert, erdos_renyi, rmat, RmatConfig};
use ripples_graph::WeightModel;

fn bench_generators(c: &mut Criterion) {
    let edges = 100_000usize;
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges as u64));
    group.bench_function("erdos_renyi", |b| {
        b.iter(|| erdos_renyi(20_000, edges, WeightModel::Constant(0.1), false, 1));
    });
    group.bench_function("rmat", |b| {
        b.iter(|| {
            rmat(
                &RmatConfig::graph500(15, edges, 1),
                WeightModel::Constant(0.1),
                false,
            )
        });
    });
    group.bench_function("barabasi_albert", |b| {
        b.iter(|| barabasi_albert(25_000, 4, WeightModel::Constant(0.1), false, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
