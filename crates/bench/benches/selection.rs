//! Seed-selection engines (Algorithm 4) over a prepared RRR collection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripples_core::select::{select_seeds_partitioned, select_seeds_sequential};
use ripples_diffusion::{sample_batch_sequential, DiffusionModel, RrrCollection};
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;

fn bench_selection(c: &mut Criterion) {
    let spec = standin("cit-HepTh").unwrap();
    let graph = spec.build(32, WeightModel::UniformRandom { seed: 1 }, false);
    let factory = StreamFactory::new(3);
    let mut collection = RrrCollection::new();
    sample_batch_sequential(
        &graph,
        DiffusionModel::IndependentCascade,
        &factory,
        0,
        4_000,
        &mut collection,
    );
    let n = graph.num_vertices();
    let k = 50;

    let mut group = c.benchmark_group("seed_selection");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| select_seeds_sequential(&collection, n, k));
    });
    for parts in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("partitioned", parts), &parts, |b, &p| {
            b.iter(|| select_seeds_partitioned(&collection, n, k, p));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
