//! End-to-end engine comparison on one small input: hypergraph baseline vs
//! IMMOPT vs multithreaded IMM vs the Monte-Carlo CELF greedy — the
//! motivating cost gap of the whole RIS line of work.

use criterion::{criterion_group, criterion_main, Criterion};
use ripples_core::celf::celf_greedy;
use ripples_core::community::community_imm;
use ripples_core::mt::imm_multithreaded;
use ripples_core::seq::{imm_baseline, immopt_sequential};
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::erdos_renyi;
use ripples_graph::WeightModel;

fn bench_end_to_end(c: &mut Criterion) {
    let graph = erdos_renyi(
        500,
        4_000,
        WeightModel::UniformRandom { seed: 6 },
        false,
        10,
    );
    let model = DiffusionModel::IndependentCascade;
    let params = ImmParams::new(5, 0.5, model, 8);

    let mut group = c.benchmark_group("end_to_end_k5");
    group.sample_size(10);
    group.bench_function("imm_hypergraph_baseline", |b| {
        b.iter(|| imm_baseline(&graph, &params));
    });
    group.bench_function("immopt_sequential", |b| {
        b.iter(|| immopt_sequential(&graph, &params));
    });
    group.bench_function("imm_multithreaded", |b| {
        b.iter(|| imm_multithreaded(&graph, &params, 0));
    });
    group.bench_function("celf_mc_greedy_100trials", |b| {
        b.iter(|| celf_greedy(&graph, model, 5, 100, 8));
    });
    group.bench_function("community_imm_heuristic", |b| {
        b.iter(|| community_imm(&graph, &params));
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
