//! Ablation 5 (DESIGN.md §6): per-sample SplitMix64 stream derivation (our
//! reproducibility-preserving default) versus the paper's leap-frogged LCG
//! (TRNG-style), as raw draw throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ripples_rng::{Lcg64, LeapFrog, SplitMix64, StreamFactory};

fn bench_rng(c: &mut Criterion) {
    const DRAWS: u64 = 1 << 16;
    let mut group = c.benchmark_group("rng_draws");
    group.sample_size(20);
    group.throughput(Throughput::Elements(DRAWS));

    group.bench_function("splitmix_single_stream", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let mut acc = 0.0f64;
            for _ in 0..DRAWS {
                acc += rng.unit_f64();
            }
            acc
        });
    });
    group.bench_function("splitmix_stream_per_64_draws", |b| {
        // Models the per-sample stream derivation cost: a new stream every
        // 64 draws (a typical RRR set's coin-flip count).
        let factory = StreamFactory::new(1);
        b.iter(|| {
            let mut acc = 0.0f64;
            for s in 0..(DRAWS / 64) {
                let mut rng = factory.sample_stream(s);
                for _ in 0..64 {
                    acc += rng.unit_f64();
                }
            }
            acc
        });
    });
    group.bench_function("lcg_leapfrog_rank0_of_16", |b| {
        let base = Lcg64::new(1);
        let mut lf = LeapFrog::new(&base, 0, 16);
        b.iter(|| {
            let mut acc = 0.0f64;
            for _ in 0..DRAWS {
                acc += lf.unit_f64();
            }
            acc
        });
    });
    group.bench_function("lcg_plain", |b| {
        let mut rng = Lcg64::new(1);
        b.iter(|| {
            let mut acc = 0.0f64;
            for _ in 0..DRAWS {
                acc += rng.unit_f64();
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rng);
criterion_main!(benches);
