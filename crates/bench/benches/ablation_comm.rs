//! Ablation 8: dense All-Reduce (the paper's §3.2 selection) vs sparse
//! All-Gatherv counter aggregation — wall-clock here, plus the modeled byte
//! volumes that matter at cluster scale (printed once before timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripples_comm::{Communicator, ThreadWorld};
use ripples_core::dist::{imm_distributed_full, DistRngMode, DistSelectMode};
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;

fn bench_comm_modes(c: &mut Criterion) {
    let spec = standin("cit-HepTh").unwrap();
    let graph = spec.build(32, WeightModel::UniformRandom { seed: 6 }, false);
    let params = ImmParams::new(20, 0.5, DiffusionModel::IndependentCascade, 4);
    let world = ThreadWorld::new(2);

    for (label, mode) in [
        ("dense", DistSelectMode::DenseAllReduce),
        ("sparse", DistSelectMode::SparseAllGather),
    ] {
        let bytes = world
            .run(|comm| {
                let _ =
                    imm_distributed_full(comm, &graph, &params, DistRngMode::IndexedStreams, mode);
                comm.stats().bytes_moved
            })
            .into_iter()
            .max()
            .unwrap();
        eprintln!("{label}: modeled bytes moved per rank = {bytes}");
    }

    let mut group = c.benchmark_group("dist_select_comm");
    group.sample_size(10);
    for (label, mode) in [
        ("dense_allreduce", DistSelectMode::DenseAllReduce),
        ("sparse_allgather", DistSelectMode::SparseAllGather),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                world.run(|comm| {
                    imm_distributed_full(comm, &graph, &params, DistRngMode::IndexedStreams, mode)
                        .theta
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_comm_modes);
criterion_main!(benches);
