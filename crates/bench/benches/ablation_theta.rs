//! Ablation 7: TIM⁺'s KPT estimator vs IMM's martingale estimator — sample
//! budgets and end-to-end cost at the same `(ε, ℓ)` guarantee (the
//! "significant improvement over its predecessors" of the paper's intro).

use criterion::{criterion_group, criterion_main, Criterion};
use ripples_core::seq::immopt_sequential;
use ripples_core::tim::tim_plus;
use ripples_core::ImmParams;
use ripples_diffusion::DiffusionModel;
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;

fn bench_theta(c: &mut Criterion) {
    let spec = standin("cit-HepTh").unwrap();
    let graph = spec.build(32, WeightModel::UniformRandom { seed: 4 }, false);
    let params = ImmParams::new(20, 0.5, DiffusionModel::IndependentCascade, 2);

    // Report the θ gap once, outside timing.
    let imm = immopt_sequential(&graph, &params);
    let tim = tim_plus(&graph, &params);
    eprintln!(
        "sample budgets at eps=0.5 k=20: IMM θ = {}, TIM+ θ = {} ({:.2}x)",
        imm.theta,
        tim.theta,
        tim.theta as f64 / imm.theta as f64
    );

    let mut group = c.benchmark_group("estimator");
    group.sample_size(10);
    group.bench_function("imm_martingale", |b| {
        b.iter(|| immopt_sequential(&graph, &params));
    });
    group.bench_function("tim_plus_kpt", |b| {
        b.iter(|| tim_plus(&graph, &params));
    });
    group.finish();
}

criterion_group!(benches, bench_theta);
criterion_main!(benches);
