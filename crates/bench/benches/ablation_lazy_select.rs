//! Ablation 4 (DESIGN.md §6): CELF-style lazy greedy versus full-rescan
//! greedy on the RRR cover problem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripples_core::select::{select_seeds_lazy, select_seeds_sequential};
use ripples_diffusion::{sample_batch_sequential, DiffusionModel, RrrCollection};
use ripples_graph::generators::standin;
use ripples_graph::WeightModel;
use ripples_rng::StreamFactory;

fn bench_lazy(c: &mut Criterion) {
    let spec = standin("cit-HepTh").unwrap();
    let graph = spec.build(32, WeightModel::UniformRandom { seed: 4 }, false);
    let factory = StreamFactory::new(13);
    let mut collection = RrrCollection::new();
    sample_batch_sequential(
        &graph,
        DiffusionModel::IndependentCascade,
        &factory,
        0,
        3_000,
        &mut collection,
    );
    let n = graph.num_vertices();

    let mut group = c.benchmark_group("lazy_vs_eager_selection");
    group.sample_size(10);
    for k in [10u32, 50] {
        group.bench_with_input(BenchmarkId::new("eager", k), &k, |b, &k| {
            b.iter(|| select_seeds_sequential(&collection, n, k));
        });
        group.bench_with_input(BenchmarkId::new("lazy", k), &k, |b, &k| {
            b.iter(|| select_seeds_lazy(&collection, n, k));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lazy);
criterion_main!(benches);
