//! Vertex relabeling (permutation) of a graph.
//!
//! The correctness oracle (`ripples-oracle`) uses permutations for its
//! metamorphic relabeling check: influence maximization is equivariant under
//! renaming vertices — permute the input, and the (appropriately
//! tie-broken) output comes back permuted. This module provides the
//! permutation object and the graph-relabeling helper those checks build on.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::Vertex;
use ripples_rng::SplitMix64;

/// A bijection on `0..len`, stored with its inverse for O(1) mapping in both
/// directions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<Vertex>,
    inverse: Vec<Vertex>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    #[must_use]
    pub fn identity(n: u32) -> Self {
        let forward: Vec<Vertex> = (0..n).collect();
        Self {
            inverse: forward.clone(),
            forward,
        }
    }

    /// A uniformly random permutation on `0..n` (Fisher–Yates, seeded).
    #[must_use]
    pub fn random(n: u32, seed: u64) -> Self {
        let mut forward: Vec<Vertex> = (0..n).collect();
        let mut rng = SplitMix64::for_stream(seed, 0x5045_524d); // "PERM"
        for i in (1..forward.len()).rev() {
            let j = rng.bounded_u64(i as u64 + 1) as usize;
            forward.swap(i, j);
        }
        Self::from_mapping(forward).expect("shuffled identity is a bijection")
    }

    /// Builds a permutation from `forward[old_id] = new_id`.
    ///
    /// Returns `None` unless `forward` is a bijection on `0..forward.len()`.
    #[must_use]
    pub fn from_mapping(forward: Vec<Vertex>) -> Option<Self> {
        let n = forward.len();
        let mut inverse = vec![Vertex::MAX; n];
        for (old_id, &new_id) in forward.iter().enumerate() {
            if (new_id as usize) >= n || inverse[new_id as usize] != Vertex::MAX {
                return None;
            }
            inverse[new_id as usize] = old_id as Vertex;
        }
        Some(Self { forward, inverse })
    }

    /// Domain size.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.forward.len() as u32
    }

    /// Whether the domain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Maps an old id to its new id.
    #[must_use]
    pub fn apply(&self, v: Vertex) -> Vertex {
        self.forward[v as usize]
    }

    /// Maps a new id back to its old id.
    #[must_use]
    pub fn invert(&self, v: Vertex) -> Vertex {
        self.inverse[v as usize]
    }

    /// Maps a slice of old ids to new ids, preserving order.
    #[must_use]
    pub fn apply_all(&self, vs: &[Vertex]) -> Vec<Vertex> {
        vs.iter().map(|&v| self.apply(v)).collect()
    }

    /// Maps a slice of new ids back to old ids, preserving order.
    #[must_use]
    pub fn invert_all(&self, vs: &[Vertex]) -> Vec<Vertex> {
        vs.iter().map(|&v| self.invert(v)).collect()
    }

    /// The inverse permutation as its own object.
    #[must_use]
    pub fn inverted(&self) -> Self {
        Self {
            forward: self.inverse.clone(),
            inverse: self.forward.clone(),
        }
    }
}

/// Relabels `graph` through `perm`: edge `u → v` becomes
/// `perm(u) → perm(v)` with its probability preserved.
///
/// # Panics
///
/// Panics if `perm.len() != graph.num_vertices()`.
#[must_use]
pub fn permute_graph(graph: &Graph, perm: &Permutation) -> Graph {
    assert_eq!(
        perm.len(),
        graph.num_vertices(),
        "permutation domain must match the vertex count"
    );
    let mut builder = GraphBuilder::new(graph.num_vertices()).keep_self_loops();
    builder.reserve(graph.num_edges());
    for (u, v, p) in graph.edges() {
        builder
            .add_edge(perm.apply(u), perm.apply(v), p)
            .expect("relabeled edge must be valid");
    }
    builder.build().expect("relabeled graph must build")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new(5);
        for &(u, v, p) in &[
            (0u32, 1u32, 0.3f32),
            (1, 2, 0.7),
            (2, 0, 0.5),
            (3, 4, 0.9),
            (0, 3, 0.2),
        ] {
            b.add_edge(u, v, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn identity_roundtrip() {
        let g = sample();
        let id = Permutation::identity(g.num_vertices());
        assert_eq!(permute_graph(&g, &id), g);
    }

    #[test]
    fn apply_invert_roundtrip() {
        let p = Permutation::random(64, 9);
        for v in 0..64 {
            assert_eq!(p.invert(p.apply(v)), v);
            assert_eq!(p.apply(p.invert(v)), v);
        }
        assert_eq!(p.inverted().inverted(), p);
    }

    #[test]
    fn random_is_deterministic_and_varies_by_seed() {
        let a = Permutation::random(32, 1);
        let b = Permutation::random(32, 1);
        let c = Permutation::random(32, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn permuted_graph_preserves_structure() {
        let g = sample();
        let perm = Permutation::random(g.num_vertices(), 7);
        let pg = permute_graph(&g, &perm);
        assert_eq!(pg.num_vertices(), g.num_vertices());
        assert_eq!(pg.num_edges(), g.num_edges());
        for (u, v, p) in g.edges() {
            assert_eq!(
                pg.edge_prob(perm.apply(u), perm.apply(v)),
                Some(p),
                "edge {u}→{v} lost"
            );
        }
        for v in 0..g.num_vertices() {
            assert_eq!(pg.out_degree(perm.apply(v)), g.out_degree(v));
            assert_eq!(pg.in_degree(perm.apply(v)), g.in_degree(v));
        }
        pg.validate().unwrap();
    }

    #[test]
    fn permute_then_inverse_restores() {
        let g = sample();
        let perm = Permutation::random(g.num_vertices(), 3);
        let back = permute_graph(&permute_graph(&g, &perm), &perm.inverted());
        assert_eq!(back, g);
    }

    #[test]
    fn from_mapping_rejects_non_bijections() {
        assert!(Permutation::from_mapping(vec![0, 0]).is_none());
        assert!(Permutation::from_mapping(vec![0, 2]).is_none());
        assert!(Permutation::from_mapping(vec![1, 0, 2]).is_some());
    }

    #[test]
    #[should_panic(expected = "domain must match")]
    fn size_mismatch_panics() {
        let g = sample();
        let _ = permute_graph(&g, &Permutation::identity(3));
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert_eq!(p.apply_all(&[]), Vec::<Vertex>::new());
    }
}
