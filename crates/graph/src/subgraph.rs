//! Induced subgraph extraction.
//!
//! Needed by the community-based influence-maximization heuristic
//! (Halappanavar et al., the paper's reference \[14\]): each detected
//! community is materialized as its own graph, mined independently, and the
//! per-community seeds are mapped back through the returned vertex table.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::Vertex;

/// A subgraph induced by a vertex subset, together with the mapping back to
/// the parent graph's vertex ids.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The induced graph over the renumbered vertices `0..members.len()`.
    pub graph: Graph,
    /// `members[new_id] = old_id` (sorted ascending).
    pub members: Vec<Vertex>,
}

impl InducedSubgraph {
    /// Maps a subgraph vertex id back to the parent graph.
    #[must_use]
    pub fn to_parent(&self, v: Vertex) -> Vertex {
        self.members[v as usize]
    }
}

/// Extracts the subgraph induced by `members` (need not be sorted or
/// deduplicated; both are normalized). Edge probabilities are preserved.
///
/// # Panics
///
/// Panics if any member id is out of range for `graph`.
#[must_use]
pub fn induced_subgraph(graph: &Graph, members: &[Vertex]) -> InducedSubgraph {
    let mut members: Vec<Vertex> = members.to_vec();
    members.sort_unstable();
    members.dedup();
    for &m in &members {
        assert!(m < graph.num_vertices(), "member {m} out of range");
    }
    // Old-id → new-id lookup; dense array keeps extraction O(n + m_sub).
    let mut remap = vec![u32::MAX; graph.num_vertices() as usize];
    for (new_id, &old_id) in members.iter().enumerate() {
        remap[old_id as usize] = new_id as u32;
    }
    let mut builder = GraphBuilder::new(members.len() as u32);
    for &old_u in &members {
        let new_u = remap[old_u as usize];
        for (old_v, p) in graph.out_edges(old_u) {
            let new_v = remap[old_v as usize];
            if new_v != u32::MAX {
                builder
                    .add_edge(new_u, new_v, p)
                    .expect("remapped edge must be valid");
            }
        }
    }
    InducedSubgraph {
        graph: builder.build().expect("induced subgraph must build"),
        members,
    }
}

/// Splits a graph into the subgraphs induced by a label assignment
/// (`labels[v]` in `0..community_count`), returned in label order.
#[must_use]
pub fn split_by_labels(
    graph: &Graph,
    labels: &[u32],
    community_count: u32,
) -> Vec<InducedSubgraph> {
    assert_eq!(
        labels.len(),
        graph.num_vertices() as usize,
        "labels must cover every vertex"
    );
    let mut groups: Vec<Vec<Vertex>> = vec![Vec::new(); community_count as usize];
    for (v, &l) in labels.iter().enumerate() {
        assert!(l < community_count, "label {l} out of range");
        groups[l as usize].push(v as Vertex);
    }
    groups
        .into_iter()
        .map(|members| induced_subgraph(graph, &members))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        // Two triangles joined by one bridge: {0,1,2} and {3,4,5}.
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_undirected(u, v, 0.5).unwrap();
        }
        b.add_edge(2, 3, 0.9).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = sample();
        let sub = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 6); // triangle, both directions
        assert_eq!(sub.members, vec![0, 1, 2]);
        // Bridge 2→3 must be gone.
        for (u, v, _) in sub.graph.edges() {
            assert!(u < 3 && v < 3);
        }
        sub.graph.validate().unwrap();
    }

    #[test]
    fn probabilities_preserved() {
        let g = sample();
        let sub = induced_subgraph(&g, &[2, 3]);
        // Only the bridge survives, renumbered to 0→1.
        assert_eq!(sub.graph.num_edges(), 1);
        assert_eq!(sub.graph.edge_prob(0, 1), Some(0.9));
        assert_eq!(sub.to_parent(0), 2);
        assert_eq!(sub.to_parent(1), 3);
    }

    #[test]
    fn unsorted_duplicated_members_normalized() {
        let g = sample();
        let a = induced_subgraph(&g, &[2, 0, 1, 0]);
        let b = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.members, b.members);
    }

    #[test]
    fn split_covers_all_vertices() {
        let g = sample();
        let labels = vec![0u32, 0, 0, 1, 1, 1];
        let parts = split_by_labels(&g, &labels, 2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].members, vec![0, 1, 2]);
        assert_eq!(parts[1].members, vec![3, 4, 5]);
        let total: usize = parts.iter().map(|p| p.graph.num_vertices() as usize).sum();
        assert_eq!(total, 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_member() {
        let g = sample();
        let _ = induced_subgraph(&g, &[99]);
    }

    #[test]
    fn empty_member_set() {
        let g = sample();
        let sub = induced_subgraph(&g, &[]);
        assert!(sub.graph.is_empty());
    }
}
