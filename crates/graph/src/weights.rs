//! Edge-probability models.
//!
//! The paper assigns IC probabilities "uniformly at random in the range
//! [0; 1]" (§4, Experimental Setup), explicitly contrasting with Tang et
//! al.'s constant 0.10, and notes that the choice changes runtimes
//! nonlinearly. The weighted-cascade and trivalency schemes are the other
//! two standard assignments in the influence-maximization literature and are
//! provided for parameter-sensitivity studies.

use crate::types::Vertex;
use ripples_rng::SplitMix64;

/// How activation probabilities are assigned to edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightModel {
    /// Every edge gets an independent uniform draw from `[0, 1)` — the
    /// paper's setting. The seed makes assignment deterministic.
    UniformRandom {
        /// Seed for the per-edge stream derivation.
        seed: u64,
    },
    /// Every edge gets the same probability (Tang et al. use 0.10).
    Constant(
        /// The shared probability.
        f32,
    ),
    /// Edge `(u, v)` gets `1 / in-degree(v)` — the weighted-cascade model of
    /// Kempe et al., under which every vertex's incoming weight sums to
    /// exactly one.
    WeightedCascade,
    /// Every edge draws uniformly from the trivalency set {0.1, 0.01, 0.001}
    /// (Chen et al.).
    Trivalency {
        /// Seed for the per-edge stream derivation.
        seed: u64,
    },
}

impl WeightModel {
    /// Assigns probabilities to a sorted, deduplicated edge list in place.
    ///
    /// Randomized models key each edge's draw on its *position in the sorted
    /// list*, so the assignment is a pure function of (model, edge set) —
    /// independent of the order edges were inserted in.
    pub(crate) fn apply(self, num_vertices: u32, edges: &mut [(Vertex, Vertex, f32)]) {
        match self {
            WeightModel::UniformRandom { seed } => {
                let mut rng = SplitMix64::for_stream(seed, 0x57_45_49_47);
                for e in edges.iter_mut() {
                    e.2 = rng.unit_f64() as f32;
                }
            }
            WeightModel::Constant(p) => {
                let p = p.clamp(0.0, 1.0);
                for e in edges.iter_mut() {
                    e.2 = p;
                }
            }
            WeightModel::WeightedCascade => {
                let mut in_deg = vec![0u32; num_vertices as usize];
                for &(_, v, _) in edges.iter() {
                    in_deg[v as usize] += 1;
                }
                for e in edges.iter_mut() {
                    e.2 = 1.0 / in_deg[e.1 as usize] as f32;
                }
            }
            WeightModel::Trivalency { seed } => {
                const LEVELS: [f32; 3] = [0.1, 0.01, 0.001];
                let mut rng = SplitMix64::for_stream(seed, 0x54_52_49_56);
                for e in edges.iter_mut() {
                    e.2 = LEVELS[rng.bounded_u64(3) as usize];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star(model: WeightModel) -> crate::Graph {
        // Edges 0->3, 1->3, 2->3 plus 3->0.
        let mut b = GraphBuilder::new(4).assign_weights(model);
        for u in 0..3 {
            b.add_arc(u, 3).unwrap();
        }
        b.add_arc(3, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn constant_assigns_everywhere() {
        let g = star(WeightModel::Constant(0.1));
        for (_, _, p) in g.edges() {
            assert!((p - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_clamps() {
        let g = star(WeightModel::Constant(7.0));
        for (_, _, p) in g.edges() {
            assert_eq!(p, 1.0);
        }
    }

    #[test]
    fn weighted_cascade_sums_to_one() {
        let g = star(WeightModel::WeightedCascade);
        assert!((g.in_weight_sum(3) - 1.0).abs() < 1e-6);
        assert!((g.in_weight_sum(0) - 1.0).abs() < 1e-6);
        for (_, v, p) in g.edges() {
            assert!((p - 1.0 / g.in_degree(v) as f32).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_random_is_deterministic_per_seed() {
        let a = star(WeightModel::UniformRandom { seed: 5 });
        let b = star(WeightModel::UniformRandom { seed: 5 });
        let c = star(WeightModel::UniformRandom { seed: 6 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_random_in_unit_interval() {
        let g = star(WeightModel::UniformRandom { seed: 1 });
        for (_, _, p) in g.edges() {
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn trivalency_uses_levels() {
        let g = star(WeightModel::Trivalency { seed: 9 });
        for (_, _, p) in g.edges() {
            assert!([0.1f32, 0.01, 0.001].iter().any(|&l| (p - l).abs() < 1e-9));
        }
    }

    #[test]
    fn model_is_copy_and_comparable() {
        let m = WeightModel::UniformRandom { seed: 42 };
        let m2 = m;
        assert_eq!(m, m2);
        assert_ne!(m, WeightModel::WeightedCascade);
    }
}
