//! Graph summary statistics (the columns of the paper's Table 2).

use crate::csr::Graph;

/// The per-graph summary the paper reports in Table 2: vertex count, edge
/// count, average degree, and maximum degree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub nodes: u32,
    /// Number of directed edges.
    pub edges: usize,
    /// Average out-degree (m / n).
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
}

impl GraphStats {
    /// Computes the summary for `graph`.
    #[must_use]
    pub fn of(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let m = graph.num_edges();
        let mut max_out = 0;
        let mut max_in = 0;
        for v in 0..n {
            max_out = max_out.max(graph.out_degree(v));
            max_in = max_in.max(graph.in_degree(v));
        }
        Self {
            nodes: n,
            edges: m,
            avg_degree: if n == 0 { 0.0 } else { m as f64 / f64::from(n) },
            max_out_degree: max_out,
            max_in_degree: max_in,
        }
    }
}

/// Histogram of out-degrees: entry `d` counts vertices with out-degree `d`.
/// The vector is truncated after the last nonzero entry.
#[must_use]
pub fn out_degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in 0..graph.num_vertices() {
        let d = graph.out_degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// An empirical estimate of the power-law exponent of the degree
/// distribution via the Hill estimator over degrees ≥ `d_min`.
///
/// Returns `None` when fewer than 10 vertices meet the cut-off. Used by the
/// generator tests to confirm the SNAP stand-ins are heavy-tailed.
#[must_use]
pub fn powerlaw_exponent_estimate(graph: &Graph, d_min: usize) -> Option<f64> {
    let d_min = d_min.max(1);
    let mut log_sum = 0.0f64;
    let mut count = 0usize;
    for v in 0..graph.num_vertices() {
        let d = graph.out_degree(v);
        if d >= d_min {
            log_sum += (d as f64 / d_min as f64).ln();
            count += 1;
        }
    }
    if count < 10 {
        return None;
    }
    Some(1.0 + count as f64 / log_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_on_star() {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 4);
        assert!((s.avg_degree - 0.8).abs() < 1e-9);
        assert_eq!(s.max_out_degree, 4);
        assert_eq!(s.max_in_degree, 1);
    }

    #[test]
    fn stats_on_empty() {
        let g = GraphBuilder::new(0).build().unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn histogram_counts() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build().unwrap();
        let h = out_degree_histogram(&g);
        // degrees: 0 -> 2, 1 -> 1, 2 -> 0, 3 -> 0
        assert_eq!(h, vec![2, 1, 1]);
    }

    #[test]
    fn powerlaw_estimate_requires_mass() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert!(powerlaw_exponent_estimate(&g, 1).is_none());
    }
}
