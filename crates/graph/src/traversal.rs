//! Deterministic traversals: BFS and weakly-connected components.
//!
//! These are *non-probabilistic* utilities used by tests, generators, and
//! the centrality crate; the probabilistic BFS variants at the heart of the
//! paper live in `ripples-diffusion`.

use crate::csr::Graph;
use crate::types::Vertex;
use std::collections::VecDeque;

/// Breadth-first search over out-edges from `source`.
///
/// Returns the BFS distance for every vertex (`u32::MAX` when unreachable).
#[must_use]
pub fn bfs_distances(graph: &Graph, source: Vertex) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut dist = vec![u32::MAX; n];
    if n == 0 {
        return dist;
    }
    assert!((source as usize) < n, "source vertex out of range");
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in graph.out_neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The set of vertices reachable from `source` over out-edges (including
/// `source`), in BFS discovery order.
#[must_use]
pub fn reachable_from(graph: &Graph, source: Vertex) -> Vec<Vertex> {
    let n = graph.num_vertices() as usize;
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source as usize] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in graph.out_neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Labels weakly-connected components (edges treated as undirected).
///
/// Returns `(labels, component_count)`; labels are dense in
/// `0..component_count`, assigned in order of the smallest vertex in each
/// component.
#[must_use]
pub fn weakly_connected_components(graph: &Graph) -> (Vec<u32>, u32) {
    let n = graph.num_vertices() as usize;
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(start as Vertex);
        while let Some(u) = queue.pop_front() {
            for &v in graph
                .out_neighbors(u)
                .iter()
                .chain(graph.in_neighbors(u).iter())
            {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n.saturating_sub(1) {
            b.add_edge(u, u + 1, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        // Directed: nothing reaches back to 0.
        let d2 = bfs_distances(&g, 2);
        assert_eq!(d2, vec![u32::MAX, u32::MAX, 0, 1, 2]);
    }

    #[test]
    fn reachable_set() {
        let g = path_graph(4);
        assert_eq!(reachable_from(&g, 1), vec![1, 2, 3]);
        assert_eq!(reachable_from(&g, 3), vec![3]);
    }

    #[test]
    fn components_on_disjoint_paths() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(3, 4, 1.0).unwrap();
        let g = b.build().unwrap();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert_ne!(labels[5], labels[3]);
    }

    #[test]
    fn weak_connectivity_ignores_direction() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn empty_graph_traversals() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(bfs_distances(&g, 0).is_empty());
        let (labels, count) = weakly_connected_components(&g);
        assert!(labels.is_empty());
        assert_eq!(count, 0);
    }
}
