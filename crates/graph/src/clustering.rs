//! Triangle counting and clustering coefficients.
//!
//! Used to validate the SNAP stand-ins: the real datasets are published
//! with clustering coefficients, and a credible stand-in should land in the
//! same qualitative regime (social graphs are strongly clustered, R-MAT
//! less so — a known R-MAT limitation the stand-in docs call out).

use crate::csr::Graph;

/// Counts triangles in the *undirected view* of the graph (each unordered
/// vertex triple with all three connections, in any direction, counts
/// once), using the standard sorted-adjacency merge over the u < v < w
/// orientation.
#[must_use]
pub fn triangle_count(graph: &Graph) -> u64 {
    let n = graph.num_vertices();
    // Undirected neighbor lists restricted to higher ids.
    let mut higher: Vec<Vec<u32>> = Vec::with_capacity(n as usize);
    for v in 0..n {
        let mut nb: Vec<u32> = graph
            .out_neighbors(v)
            .iter()
            .chain(graph.in_neighbors(v).iter())
            .copied()
            .filter(|&u| u > v)
            .collect();
        nb.sort_unstable();
        nb.dedup();
        higher.push(nb);
    }
    let mut triangles = 0u64;
    for v in 0..n as usize {
        let nv = &higher[v];
        for (i, &u) in nv.iter().enumerate() {
            // Merge-intersect higher[v][i+1..] with higher[u].
            let mut a = i + 1;
            let mut b = 0usize;
            let nu = &higher[u as usize];
            while a < nv.len() && b < nu.len() {
                match nv[a].cmp(&nu[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        triangles += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }
    triangles
}

/// Global clustering coefficient of the undirected view:
/// `3·triangles / open-or-closed wedges`.
#[must_use]
pub fn global_clustering_coefficient(graph: &Graph) -> f64 {
    let n = graph.num_vertices();
    let mut wedges = 0u64;
    for v in 0..n {
        let mut nb: Vec<u32> = graph
            .out_neighbors(v)
            .iter()
            .chain(graph.in_neighbors(v).iter())
            .copied()
            .filter(|&u| u != v)
            .collect();
        nb.sort_unstable();
        nb.dedup();
        let d = nb.len() as u64;
        wedges += d * d.saturating_sub(1) / 2;
    }
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(graph) as f64 / wedges as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn triangle_graph() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected(0, 1, 1.0).unwrap();
        b.add_undirected(1, 2, 1.0).unwrap();
        b.add_undirected(2, 0, 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(triangle_count(&g), 1);
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_no_triangles() {
        let mut b = GraphBuilder::new(4);
        for u in 0..3 {
            b.add_undirected(u, u + 1, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn k4_has_four_triangles() {
        let mut b = GraphBuilder::new(4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_undirected(i, j, 1.0).unwrap();
            }
        }
        let g = b.build().unwrap();
        assert_eq!(triangle_count(&g), 4);
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn directed_edges_count_as_undirected() {
        // One directed orientation only — still a triangle in the
        // undirected view.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 0, 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }
}
