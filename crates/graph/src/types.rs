//! Shared scalar types and the crate error type.

use std::fmt;

/// Vertex identifier.
///
/// `u32` halves the memory footprint of adjacency arrays relative to `usize`
/// on 64-bit targets; the paper's largest input (com-Orkut, 3.07M vertices)
/// fits with five orders of magnitude to spare.
pub type Vertex = u32;

/// Errors produced while building or loading graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint is ≥ the declared vertex count.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: Vertex,
        /// The declared vertex count.
        num_vertices: u32,
    },
    /// An edge probability is not a finite number in `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f32,
    },
    /// The input text could not be parsed as an edge list.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Binary graph data is malformed.
    Corrupt(
        /// Description of the problem.
        String,
    ),
    /// An underlying I/O failure (message-only so the error stays `Clone`).
    Io(
        /// Stringified `std::io::Error`.
        String,
    ),
    /// The graph would exceed implementation limits (≥ 2³² vertices/edges).
    TooLarge(
        /// Description of the violated limit.
        String,
    ),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::InvalidProbability { value } => {
                write!(
                    f,
                    "edge probability {value} is not a finite value in [0, 1]"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Corrupt(msg) => write!(f, "corrupt graph data: {msg}"),
            GraphError::Io(msg) => write!(f, "I/O error: {msg}"),
            GraphError::TooLarge(msg) => write!(f, "graph too large: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("vertex 9"));
        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(GraphError::Corrupt("x".into())
            .to_string()
            .contains("corrupt"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
