//! Deterministic synthetic network generators.
//!
//! The paper evaluates on eight SNAP graphs. Those datasets cannot be
//! redistributed with this repository, so every experiment instead runs on
//! *stand-ins* produced by these generators (see
//! [`snap_standins`]), and accepts real SNAP files through
//! [`crate::io::read_edge_list_file`] for users who have them. All
//! generators are deterministic functions of their seed.

pub mod barabasi_albert;
pub mod coexpression;
pub mod erdos_renyi;
pub mod rmat;
pub mod snap_standins;
pub mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use coexpression::{coexpression, CoexpressionConfig};
pub use erdos_renyi::erdos_renyi;
pub use rmat::{rmat, RmatConfig};
pub use snap_standins::{standin, standin_catalog, StandinSpec};
pub use watts_strogatz::watts_strogatz;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::Vertex;
use crate::weights::WeightModel;

/// Builds a weighted graph from a list of directed arcs.
///
/// Shared tail of every generator: arcs are deduplicated, weighted by
/// `model`, and LT-normalized when `lt_normalize` is set.
pub(crate) fn arcs_to_graph(
    num_vertices: u32,
    arcs: &[(Vertex, Vertex)],
    model: WeightModel,
    lt_normalize: bool,
) -> Graph {
    let mut builder = GraphBuilder::new(num_vertices);
    builder.reserve(arcs.len());
    let mut wb = builder.assign_weights(model);
    for &(u, v) in arcs {
        // Generators only emit in-range endpoints; treat failure as a bug.
        wb.add_arc(u, v).expect("generator produced invalid arc");
    }
    let wb = if lt_normalize {
        wb.normalize_for_lt()
    } else {
        wb
    };
    wb.build().expect("generator produced unbuildable graph")
}
