//! R-MAT (recursive matrix) Kronecker-style graphs.
//!
//! R-MAT (Chakrabarti, Zhan, Faloutsos 2004) recursively bisects the
//! adjacency matrix, dropping each edge into quadrants with probabilities
//! `(a, b, c, d)`. Skewed parameters (`a ≫ d`) yield the heavy-tailed,
//! community-ish structure of real social networks; it is the generator
//! behind Graph500 and the natural stand-in for the paper's SNAP inputs.

use super::arcs_to_graph;
use crate::csr::Graph;
use crate::types::Vertex;
use crate::weights::WeightModel;
use ripples_rng::SplitMix64;

/// Parameters of an R-MAT generation.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of the vertex-id space: the graph has `2^scale` vertices.
    pub scale: u32,
    /// Number of edge-insertion attempts (realized edge count is lower after
    /// deduplication, noticeably so for very skewed parameter sets).
    pub edges: usize,
    /// Quadrant probability a (top-left / "celebrity to celebrity").
    pub a: f64,
    /// Quadrant probability b (top-right).
    pub b: f64,
    /// Quadrant probability c (bottom-left).
    pub c: f64,
    /// Emit each generated edge in both directions.
    pub undirected: bool,
    /// Generation seed.
    pub seed: u64,
}

impl RmatConfig {
    /// The Graph500 reference parameter set (a=0.57, b=0.19, c=0.19).
    #[must_use]
    pub fn graph500(scale: u32, edges: usize, seed: u64) -> Self {
        Self {
            scale,
            edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            undirected: false,
            seed,
        }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph.
///
/// # Panics
///
/// Panics if `scale` is 0 or > 31, or the quadrant probabilities are not a
/// sub-distribution (each in `[0,1]`, a+b+c ≤ 1).
#[must_use]
pub fn rmat(config: &RmatConfig, model: WeightModel, lt_normalize: bool) -> Graph {
    assert!(
        (1..=31).contains(&config.scale),
        "scale must be in 1..=31, got {}",
        config.scale
    );
    let d = config.d();
    for p in [config.a, config.b, config.c, d] {
        assert!((0.0..=1.0).contains(&p), "quadrant probabilities invalid");
    }
    let n: u32 = 1 << config.scale;
    let mut rng = SplitMix64::for_stream(config.seed, 0x524d_4154);
    let mut arcs: Vec<(Vertex, Vertex)> =
        Vec::with_capacity(config.edges * if config.undirected { 2 } else { 1 });
    let ab = config.a + config.b;
    let a_frac = if ab > 0.0 { config.a / ab } else { 0.5 };
    let cd = 1.0 - ab;
    let c_frac = if cd > 0.0 { config.c / cd } else { 0.5 };
    let mut produced = 0usize;
    while produced < config.edges {
        let mut u: u32 = 0;
        let mut v: u32 = 0;
        for _ in 0..config.scale {
            u <<= 1;
            v <<= 1;
            // Choose the quadrant; SMOOTH variant perturbs the split points
            // slightly per level to avoid exact-power-of-two staircases.
            let noise = 0.9 + 0.2 * rng.unit_f64();
            let top = rng.unit_f64() < (ab * noise).min(1.0);
            let left = if top {
                rng.unit_f64() < a_frac
            } else {
                rng.unit_f64() < c_frac
            };
            if !top {
                u |= 1;
            }
            if !left {
                v |= 1;
            }
        }
        if u == v {
            continue;
        }
        arcs.push((u, v));
        if config.undirected {
            arcs.push((v, u));
        }
        produced += 1;
    }
    arcs_to_graph(n, &arcs, model, lt_normalize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn respects_scale() {
        let g = rmat(
            &RmatConfig::graph500(8, 2000, 3),
            WeightModel::Constant(0.1),
            false,
        );
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 1000);
        g.validate().unwrap();
    }

    #[test]
    fn skew_creates_hubs() {
        let g = rmat(
            &RmatConfig::graph500(10, 8000, 5),
            WeightModel::Constant(0.1),
            false,
        );
        let s = GraphStats::of(&g);
        // With a=0.57 the top quadrant concentrates edges on low ids.
        assert!(
            s.max_out_degree as f64 > 8.0 * s.avg_degree,
            "max {} vs avg {}",
            s.max_out_degree,
            s.avg_degree
        );
    }

    #[test]
    fn undirected_symmetry() {
        let cfg = RmatConfig {
            undirected: true,
            ..RmatConfig::graph500(7, 500, 2)
        };
        let g = rmat(&cfg, WeightModel::Constant(0.1), false);
        for (u, v, _) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn deterministic() {
        let cfg = RmatConfig::graph500(7, 600, 11);
        let a = rmat(&cfg, WeightModel::Constant(0.1), false);
        let b = rmat(&cfg, WeightModel::Constant(0.1), false);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn rejects_zero_scale() {
        let _ = rmat(
            &RmatConfig::graph500(0, 10, 1),
            WeightModel::Constant(0.1),
            false,
        );
    }

    #[test]
    #[should_panic(expected = "quadrant")]
    fn rejects_bad_quadrants() {
        let cfg = RmatConfig {
            a: 0.9,
            b: 0.9,
            c: 0.9,
            ..RmatConfig::graph500(5, 10, 1)
        };
        let _ = rmat(&cfg, WeightModel::Constant(0.1), false);
    }
}
