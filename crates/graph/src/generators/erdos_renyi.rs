//! Erdős–Rényi `G(n, m)` random directed graphs.

use super::arcs_to_graph;
use crate::csr::Graph;
use crate::types::Vertex;
use crate::weights::WeightModel;
use ripples_rng::SplitMix64;

/// Generates a directed Erdős–Rényi graph with `n` vertices and
/// approximately `m` edges (duplicates are merged, so the realized count can
/// be slightly lower for dense requests).
///
/// # Panics
///
/// Panics if `n == 0` and `m > 0`, or `n == 1` and `m > 0` (self-loops are
/// the only possible arcs and are dropped).
#[must_use]
pub fn erdos_renyi(n: u32, m: usize, model: WeightModel, lt_normalize: bool, seed: u64) -> Graph {
    assert!(
        m == 0 || n >= 2,
        "G(n, m) with m > 0 needs at least two vertices"
    );
    let mut rng = SplitMix64::for_stream(seed, 0x4552);
    let mut arcs: Vec<(Vertex, Vertex)> = Vec::with_capacity(m);
    while arcs.len() < m {
        let u = rng.bounded_u64(u64::from(n)) as Vertex;
        let v = rng.bounded_u64(u64::from(n)) as Vertex;
        if u != v {
            arcs.push((u, v));
        }
    }
    arcs_to_graph(n, &arcs, model, lt_normalize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_size() {
        let g = erdos_renyi(200, 1000, WeightModel::Constant(0.1), false, 7);
        assert_eq!(g.num_vertices(), 200);
        // Dedup can only shrink, and only slightly at this density.
        assert!(g.num_edges() > 900 && g.num_edges() <= 1000);
        g.validate().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi(50, 200, WeightModel::Constant(0.5), false, 1);
        let b = erdos_renyi(50, 200, WeightModel::Constant(0.5), false, 1);
        let c = erdos_renyi(50, 200, WeightModel::Constant(0.5), false, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_edges_ok() {
        let g = erdos_renyi(10, 0, WeightModel::Constant(0.1), false, 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_impossible_request() {
        let _ = erdos_renyi(1, 5, WeightModel::Constant(0.1), false, 3);
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(20, 150, WeightModel::Constant(0.1), false, 11);
        for (u, v, _) in g.edges() {
            assert_ne!(u, v);
        }
    }
}
