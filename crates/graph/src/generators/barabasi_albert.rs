//! Barabási–Albert preferential-attachment graphs.

use super::arcs_to_graph;
use crate::csr::Graph;
use crate::types::Vertex;
use crate::weights::WeightModel;
use ripples_rng::SplitMix64;

/// Generates an undirected Barabási–Albert graph (emitted as arcs in both
/// directions) with `n` vertices, each new vertex attaching to `attach`
/// existing vertices chosen proportionally to degree.
///
/// Uses the standard repeated-endpoint trick: sampling a uniform entry of
/// the running endpoint list is exactly degree-proportional sampling.
///
/// # Panics
///
/// Panics if `attach == 0` or `n <= attach`.
#[must_use]
pub fn barabasi_albert(
    n: u32,
    attach: u32,
    model: WeightModel,
    lt_normalize: bool,
    seed: u64,
) -> Graph {
    assert!(attach > 0, "attach must be positive");
    assert!(n > attach, "need more vertices than attachments per vertex");
    let mut rng = SplitMix64::for_stream(seed, 0x4241);
    // Endpoint multiset: vertex v appears deg(v) times.
    let mut endpoints: Vec<Vertex> = Vec::with_capacity(2 * (n as usize) * (attach as usize));
    let mut arcs: Vec<(Vertex, Vertex)> = Vec::with_capacity(2 * (n as usize) * (attach as usize));

    // Seed clique-ish core: a path over the first `attach + 1` vertices so
    // every early vertex has nonzero degree.
    for v in 0..attach {
        let u = v;
        let w = v + 1;
        arcs.push((u, w));
        arcs.push((w, u));
        endpoints.push(u);
        endpoints.push(w);
    }

    let mut picked: Vec<Vertex> = Vec::with_capacity(attach as usize);
    for v in (attach + 1)..n {
        picked.clear();
        // Rejection loop: distinct targets for this vertex.
        while picked.len() < attach as usize {
            let t = endpoints[rng.bounded_u64(endpoints.len() as u64) as usize];
            if t != v && !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            arcs.push((v, t));
            arcs.push((t, v));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    arcs_to_graph(n, &arcs, model, lt_normalize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{out_degree_histogram, powerlaw_exponent_estimate};

    #[test]
    fn size_and_symmetry() {
        let g = barabasi_albert(300, 3, WeightModel::Constant(0.1), false, 5);
        assert_eq!(g.num_vertices(), 300);
        for (u, v, _) in g.edges() {
            assert!(g.has_edge(v, u), "missing reverse of ({u},{v})");
        }
        g.validate().unwrap();
    }

    #[test]
    fn heavy_tail() {
        let g = barabasi_albert(2000, 4, WeightModel::Constant(0.1), false, 9);
        let hist = out_degree_histogram(&g);
        let max_deg = hist.len() - 1;
        // Preferential attachment must grow hubs well past the attach count.
        assert!(max_deg > 20, "max degree {max_deg} suspiciously small");
        let gamma = powerlaw_exponent_estimate(&g, 8).expect("enough mass");
        assert!(
            (1.5..4.5).contains(&gamma),
            "exponent {gamma} outside scale-free range"
        );
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(100, 2, WeightModel::Constant(0.1), false, 1);
        let b = barabasi_albert(100, 2, WeightModel::Constant(0.1), false, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn minimum_viable() {
        let g = barabasi_albert(3, 1, WeightModel::Constant(0.5), false, 2);
        assert_eq!(g.num_vertices(), 3);
        assert!(g.num_edges() >= 4);
    }

    #[test]
    #[should_panic(expected = "attach must be positive")]
    fn zero_attach_panics() {
        let _ = barabasi_albert(10, 0, WeightModel::Constant(0.1), false, 1);
    }
}
