//! Watts–Strogatz small-world graphs.

use super::arcs_to_graph;
use crate::csr::Graph;
use crate::types::Vertex;
use crate::weights::WeightModel;
use ripples_rng::SplitMix64;

/// Generates an undirected Watts–Strogatz small-world graph: a ring lattice
/// where each vertex connects to its `k` nearest neighbors on each side,
/// with each lattice edge rewired to a random endpoint with probability
/// `beta`.
///
/// # Panics
///
/// Panics unless `n > 2 * k` and `k ≥ 1` and `beta ∈ [0, 1]`.
#[must_use]
pub fn watts_strogatz(
    n: u32,
    k: u32,
    beta: f64,
    model: WeightModel,
    lt_normalize: bool,
    seed: u64,
) -> Graph {
    assert!(k >= 1, "k must be at least 1");
    assert!(n > 2 * k, "need n > 2k for a valid ring lattice");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut rng = SplitMix64::for_stream(seed, 0x5753);
    let mut arcs: Vec<(Vertex, Vertex)> = Vec::with_capacity(2 * (n as usize) * (k as usize));
    for u in 0..n {
        for j in 1..=k {
            let mut v = (u + j) % n;
            if rng.unit_f64() < beta {
                // Rewire the far endpoint to a uniform non-self vertex.
                loop {
                    let cand = rng.bounded_u64(u64::from(n)) as Vertex;
                    if cand != u {
                        v = cand;
                        break;
                    }
                }
            }
            arcs.push((u, v));
            arcs.push((v, u));
        }
    }
    arcs_to_graph(n, &arcs, model, lt_normalize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_when_beta_zero() {
        let g = watts_strogatz(20, 2, 0.0, WeightModel::Constant(0.1), false, 1);
        // Every vertex links to its 2 neighbors each side → degree 4.
        for v in 0..20 {
            assert_eq!(g.out_degree(v), 4, "vertex {v}");
        }
        g.validate().unwrap();
    }

    #[test]
    fn rewiring_changes_structure() {
        let a = watts_strogatz(100, 3, 0.0, WeightModel::Constant(0.1), false, 1);
        let b = watts_strogatz(100, 3, 0.5, WeightModel::Constant(0.1), false, 1);
        assert_ne!(a, b);
        b.validate().unwrap();
    }

    #[test]
    fn symmetric() {
        let g = watts_strogatz(60, 2, 0.3, WeightModel::Constant(0.1), false, 4);
        for (u, v, _) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    #[should_panic(expected = "n > 2k")]
    fn rejects_small_ring() {
        let _ = watts_strogatz(4, 2, 0.1, WeightModel::Constant(0.1), false, 1);
    }
}
