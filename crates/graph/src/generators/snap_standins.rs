//! Scaled-down synthetic analogues of the paper's eight SNAP datasets.
//!
//! Table 2 of the paper evaluates on eight SNAP graphs that cannot be
//! redistributed here. Each [`StandinSpec`] records the original graph's
//! vitals (vertex count, edge count, directedness) and R-MAT skew parameters
//! chosen so the stand-in reproduces the original's qualitative degree
//! profile (heavy-tailed for the social networks, milder for com-Amazon /
//! com-DBLP, extreme for com-YouTube). Building at `divisor = d` produces a
//! graph with roughly `n/d` vertices and `m/d` edges — average degree, the
//! quantity that drives sampling cost, is preserved at every divisor.
//!
//! Experiments that want the real datasets can load them with
//! [`crate::io::read_edge_list_file`] and reuse every downstream harness
//! unchanged.

use super::rmat::{rmat, RmatConfig};
use crate::csr::Graph;
use crate::weights::WeightModel;

/// A catalogue entry describing one SNAP graph and its stand-in generator.
#[derive(Clone, Copy, Debug)]
pub struct StandinSpec {
    /// SNAP dataset name (e.g. `"cit-HepTh"`).
    pub name: &'static str,
    /// Vertex count of the original dataset.
    pub orig_nodes: u64,
    /// Edge count of the original dataset (undirected count for the `com-*`
    /// graphs, matching the paper's Table 2).
    pub orig_edges: u64,
    /// Whether the original is a directed graph.
    pub directed: bool,
    /// R-MAT top-left quadrant probability (degree skew knob).
    pub rmat_a: f64,
    /// R-MAT top-right quadrant probability.
    pub rmat_b: f64,
    /// R-MAT bottom-left quadrant probability.
    pub rmat_c: f64,
    /// Divisor giving a single-node-friendly default size.
    pub default_divisor: u32,
}

impl StandinSpec {
    /// Builds the stand-in at the spec's default divisor.
    #[must_use]
    pub fn build_default(&self, model: WeightModel, lt_normalize: bool) -> Graph {
        self.build(self.default_divisor, model, lt_normalize)
    }

    /// Builds the stand-in scaled down by `divisor` (1 = full size).
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    #[must_use]
    pub fn build(&self, divisor: u32, model: WeightModel, lt_normalize: bool) -> Graph {
        assert!(divisor > 0, "divisor must be positive");
        let target_nodes = (self.orig_nodes / u64::from(divisor)).max(64);
        let target_edges = (self.orig_edges / u64::from(divisor)).max(128) as usize;
        // R-MAT vertex-id spaces are powers of two; round up so the realized
        // average degree errs slightly low rather than high.
        let scale = 64 - (target_nodes - 1).leading_zeros();
        let config = RmatConfig {
            scale,
            edges: target_edges,
            a: self.rmat_a,
            b: self.rmat_b,
            c: self.rmat_c,
            undirected: !self.directed,
            seed: stable_name_seed(self.name),
        };
        rmat(&config, model, lt_normalize)
    }

    /// The paper's average degree for the original dataset (out+in for the
    /// undirected graphs, as in Table 2).
    #[must_use]
    pub fn orig_avg_degree(&self) -> f64 {
        let deg_edges = if self.directed {
            self.orig_edges
        } else {
            2 * self.orig_edges
        };
        deg_edges as f64 / self.orig_nodes as f64
    }
}

/// Deterministic per-name seed so each stand-in is stable across runs.
fn stable_name_seed(name: &str) -> u64 {
    // FNV-1a; any stable string hash works.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The eight graphs of the paper's Table 2, in the paper's order.
#[must_use]
pub fn standin_catalog() -> &'static [StandinSpec] {
    const CATALOG: [StandinSpec; 8] = [
        StandinSpec {
            name: "cit-HepTh",
            orig_nodes: 27_770,
            orig_edges: 352_807,
            directed: true,
            rmat_a: 0.55,
            rmat_b: 0.20,
            rmat_c: 0.20,
            default_divisor: 8,
        },
        StandinSpec {
            name: "soc-Epinions1",
            orig_nodes: 75_879,
            orig_edges: 508_837,
            directed: true,
            rmat_a: 0.57,
            rmat_b: 0.19,
            rmat_c: 0.19,
            default_divisor: 8,
        },
        StandinSpec {
            name: "com-Amazon",
            orig_nodes: 334_863,
            orig_edges: 925_872,
            directed: false,
            rmat_a: 0.45,
            rmat_b: 0.22,
            rmat_c: 0.22,
            default_divisor: 16,
        },
        StandinSpec {
            name: "com-DBLP",
            orig_nodes: 317_080,
            orig_edges: 1_049_866,
            directed: false,
            rmat_a: 0.45,
            rmat_b: 0.22,
            rmat_c: 0.22,
            default_divisor: 16,
        },
        StandinSpec {
            name: "com-YouTube",
            orig_nodes: 1_134_890,
            orig_edges: 2_987_624,
            directed: false,
            rmat_a: 0.63,
            rmat_b: 0.17,
            rmat_c: 0.17,
            default_divisor: 32,
        },
        StandinSpec {
            name: "soc-Pokec",
            orig_nodes: 1_632_803,
            orig_edges: 30_622_564,
            directed: true,
            rmat_a: 0.57,
            rmat_b: 0.19,
            rmat_c: 0.19,
            default_divisor: 64,
        },
        StandinSpec {
            name: "soc-LiveJournal1",
            orig_nodes: 4_847_571,
            orig_edges: 68_993_773,
            directed: true,
            rmat_a: 0.57,
            rmat_b: 0.19,
            rmat_c: 0.19,
            default_divisor: 128,
        },
        StandinSpec {
            name: "com-Orkut",
            orig_nodes: 3_072_441,
            orig_edges: 117_185_083,
            directed: false,
            rmat_a: 0.57,
            rmat_b: 0.19,
            rmat_c: 0.19,
            default_divisor: 128,
        },
    ];
    &CATALOG
}

/// Looks a stand-in up by its SNAP name (case-insensitive).
#[must_use]
pub fn standin(name: &str) -> Option<&'static StandinSpec> {
    standin_catalog()
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn catalog_has_paper_order() {
        let names: Vec<&str> = standin_catalog().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "cit-HepTh",
                "soc-Epinions1",
                "com-Amazon",
                "com-DBLP",
                "com-YouTube",
                "soc-Pokec",
                "soc-LiveJournal1",
                "com-Orkut"
            ]
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(standin("CIT-HEPTH").is_some());
        assert!(standin("nope").is_none());
    }

    #[test]
    fn orig_avg_degree_matches_table2() {
        // Paper's Table 2: cit-HepTh 12.70, com-Amazon 5.53.
        let hep = standin("cit-HepTh").unwrap();
        assert!((hep.orig_avg_degree() - 12.70).abs() < 0.02);
        let amz = standin("com-Amazon").unwrap();
        assert!((amz.orig_avg_degree() - 5.53).abs() < 0.02);
    }

    #[test]
    fn builds_at_small_scale() {
        // Use a large divisor so the test is fast.
        let spec = standin("cit-HepTh").unwrap();
        let g = spec.build(32, WeightModel::Constant(0.1), false);
        assert!(g.num_vertices() >= 64);
        assert!(g.num_edges() > 1_000);
        g.validate().unwrap();
    }

    #[test]
    fn deterministic_per_name() {
        let spec = standin("soc-Epinions1").unwrap();
        let a = spec.build(64, WeightModel::Constant(0.1), false);
        let b = spec.build(64, WeightModel::Constant(0.1), false);
        assert_eq!(a, b);
    }

    #[test]
    fn degree_preserved_across_divisors() {
        let spec = standin("soc-Epinions1").unwrap();
        let coarse = spec.build(64, WeightModel::Constant(0.1), false);
        let fine = spec.build(32, WeightModel::Constant(0.1), false);
        let d_coarse = GraphStats::of(&coarse).avg_degree;
        let d_fine = GraphStats::of(&fine).avg_degree;
        // Dedup losses differ slightly between sizes; degrees stay close.
        assert!(
            (d_coarse - d_fine).abs() / d_fine < 0.5,
            "avg degree drifted: {d_coarse} vs {d_fine}"
        );
    }

    #[test]
    fn undirected_standins_are_symmetric() {
        let spec = standin("com-Amazon").unwrap();
        let g = spec.build(64, WeightModel::Constant(0.1), false);
        for (u, v, _) in g.edges().take(500) {
            assert!(g.has_edge(v, u));
        }
    }
}
