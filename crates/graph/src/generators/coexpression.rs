//! Modular "co-expression network" generator for the Section 5 case study.
//!
//! The paper's biology case study runs influence maximization on feature
//! co-expression networks inferred by GENIE3 from omics data. Those networks
//! have (i) modular structure — groups of co-regulated transcripts /
//! metabolites — and (ii) a small set of high-degree "regulator" hubs that
//! bridge modules (transcription factors, central metabolites such as
//! glucose or trehalose). We cannot redistribute the omics data, so this
//! generator produces networks with the same two structural ingredients;
//! the case-study claims being reproduced (partial overlap between IMM seeds
//! and degree/betweenness rankings, with complementary discoveries) depend
//! only on that structure.

use super::arcs_to_graph;
use crate::csr::Graph;
use crate::types::Vertex;
use crate::weights::WeightModel;
use ripples_rng::SplitMix64;

/// Parameters for the co-expression generator.
#[derive(Clone, Copy, Debug)]
pub struct CoexpressionConfig {
    /// Number of modules ("pathways").
    pub modules: u32,
    /// Vertices per module.
    pub module_size: u32,
    /// Number of global hub vertices ("regulators"), appended after the
    /// module vertices.
    pub hubs: u32,
    /// Probability of an intra-module edge between any pair.
    pub intra_density: f64,
    /// Expected number of inter-module edges per module pair.
    pub inter_edges_per_pair: f64,
    /// Each hub connects to this fraction of every module.
    pub hub_coverage: f64,
    /// Generation seed.
    pub seed: u64,
}

impl Default for CoexpressionConfig {
    fn default() -> Self {
        Self {
            modules: 20,
            module_size: 60,
            hubs: 12,
            intra_density: 0.12,
            inter_edges_per_pair: 1.5,
            hub_coverage: 0.08,
            seed: 0xb10,
        }
    }
}

impl CoexpressionConfig {
    /// Total vertex count.
    #[must_use]
    pub fn num_vertices(&self) -> u32 {
        self.modules * self.module_size + self.hubs
    }
}

/// Generates an undirected modular co-expression-like network.
#[must_use]
pub fn coexpression(config: &CoexpressionConfig, model: WeightModel, lt_normalize: bool) -> Graph {
    assert!(
        config.modules >= 1 && config.module_size >= 2,
        "modules too small"
    );
    assert!((0.0..=1.0).contains(&config.intra_density));
    assert!((0.0..=1.0).contains(&config.hub_coverage));
    let n = config.num_vertices();
    let mut rng = SplitMix64::for_stream(config.seed, 0x434f_4558);
    let mut arcs: Vec<(Vertex, Vertex)> = Vec::new();
    let ms = config.module_size;

    let push_undirected = |arcs: &mut Vec<(Vertex, Vertex)>, a: Vertex, b: Vertex| {
        arcs.push((a, b));
        arcs.push((b, a));
    };

    // Intra-module edges: G(module_size, p) per module, plus a spanning path
    // so modules are connected.
    for mod_idx in 0..config.modules {
        let base = mod_idx * ms;
        for i in 0..ms.saturating_sub(1) {
            push_undirected(&mut arcs, base + i, base + i + 1);
        }
        for i in 0..ms {
            for j in (i + 1)..ms {
                if rng.unit_f64() < config.intra_density {
                    push_undirected(&mut arcs, base + i, base + j);
                }
            }
        }
    }

    // Sparse inter-module edges (Poisson-ish: expected count per pair).
    for a in 0..config.modules {
        for b in (a + 1)..config.modules {
            let mut expect = config.inter_edges_per_pair;
            while expect > 0.0 {
                let fire = if expect >= 1.0 {
                    true
                } else {
                    rng.unit_f64() < expect
                };
                if fire {
                    let u = a * ms + rng.bounded_u64(u64::from(ms)) as u32;
                    let v = b * ms + rng.bounded_u64(u64::from(ms)) as u32;
                    push_undirected(&mut arcs, u, v);
                }
                expect -= 1.0;
            }
        }
    }

    // Hubs: each connects to a fraction of every module.
    let hub_base = config.modules * ms;
    for h in 0..config.hubs {
        let hub = hub_base + h;
        for mod_idx in 0..config.modules {
            let base = mod_idx * ms;
            for i in 0..ms {
                if rng.unit_f64() < config.hub_coverage {
                    push_undirected(&mut arcs, hub, base + i);
                }
            }
        }
    }

    arcs_to_graph(n, &arcs, model, lt_normalize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::weakly_connected_components;

    fn small() -> CoexpressionConfig {
        CoexpressionConfig {
            modules: 5,
            module_size: 20,
            hubs: 3,
            intra_density: 0.15,
            inter_edges_per_pair: 1.0,
            hub_coverage: 0.1,
            seed: 7,
        }
    }

    #[test]
    fn size_matches_config() {
        let cfg = small();
        let g = coexpression(&cfg, WeightModel::WeightedCascade, false);
        assert_eq!(g.num_vertices(), cfg.num_vertices());
        g.validate().unwrap();
    }

    #[test]
    fn hubs_outrank_module_vertices() {
        let cfg = CoexpressionConfig::default();
        let g = coexpression(&cfg, WeightModel::WeightedCascade, false);
        let hub_base = cfg.modules * cfg.module_size;
        let avg_module_degree: f64 =
            (0..hub_base).map(|v| g.out_degree(v) as f64).sum::<f64>() / f64::from(hub_base);
        let avg_hub_degree: f64 = (hub_base..g.num_vertices())
            .map(|v| g.out_degree(v) as f64)
            .sum::<f64>()
            / f64::from(cfg.hubs);
        assert!(
            avg_hub_degree > 3.0 * avg_module_degree,
            "hubs {avg_hub_degree} vs modules {avg_module_degree}"
        );
    }

    #[test]
    fn connected() {
        let g = coexpression(&small(), WeightModel::WeightedCascade, false);
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 1, "co-expression stand-in should be connected");
    }

    #[test]
    fn deterministic() {
        let a = coexpression(&small(), WeightModel::WeightedCascade, false);
        let b = coexpression(&small(), WeightModel::WeightedCascade, false);
        assert_eq!(a, b);
    }
}
