//! Immutable bidirectional CSR graph storage.

use crate::types::Vertex;

/// A directed graph with per-edge activation probabilities, stored as two
/// compressed-sparse-row structures: one over out-edges (forward diffusion)
/// and one over in-edges (reverse-reachability sampling).
///
/// The structure is immutable after construction; build instances through
/// [`crate::GraphBuilder`] or the generators. Probabilities are stored twice
/// (once per direction) so both traversal directions stream contiguously —
/// the reverse BFS in `ripples-diffusion` is the hottest loop in the whole
/// system and must not chase an edge-id indirection per neighbor.
#[derive(Clone, Debug, PartialEq)]
pub struct Graph {
    pub(crate) num_vertices: u32,
    // Forward CSR: edges grouped by source, targets sorted within a group.
    pub(crate) out_offsets: Vec<usize>,
    pub(crate) out_targets: Vec<Vertex>,
    pub(crate) out_probs: Vec<f32>,
    // Reverse CSR: edges grouped by destination, sources sorted in a group.
    pub(crate) in_offsets: Vec<usize>,
    pub(crate) in_sources: Vec<Vertex>,
    pub(crate) in_probs: Vec<f32>,
}

impl Graph {
    /// Number of vertices `n`.
    #[inline]
    #[must_use]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of directed edges `m`.
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// True if the graph has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_vertices == 0
    }

    /// Out-degree of `v`.
    #[inline]
    #[must_use]
    pub fn out_degree(&self, v: Vertex) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v`.
    #[inline]
    #[must_use]
    pub fn in_degree(&self, v: Vertex) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Targets of the out-edges of `v`, sorted ascending.
    #[inline]
    #[must_use]
    pub fn out_neighbors(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Activation probabilities aligned with [`Graph::out_neighbors`].
    #[inline]
    #[must_use]
    pub fn out_probs(&self, v: Vertex) -> &[f32] {
        let v = v as usize;
        &self.out_probs[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Sources of the in-edges of `v`, sorted ascending.
    #[inline]
    #[must_use]
    pub fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Activation probabilities aligned with [`Graph::in_neighbors`].
    #[inline]
    #[must_use]
    pub fn in_probs(&self, v: Vertex) -> &[f32] {
        let v = v as usize;
        &self.in_probs[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Iterates `(target, probability)` pairs of the out-edges of `v`.
    #[inline]
    pub fn out_edges(&self, v: Vertex) -> impl Iterator<Item = (Vertex, f32)> + '_ {
        self.out_neighbors(v)
            .iter()
            .copied()
            .zip(self.out_probs(v).iter().copied())
    }

    /// Iterates `(source, probability)` pairs of the in-edges of `v`.
    #[inline]
    pub fn in_edges(&self, v: Vertex) -> impl Iterator<Item = (Vertex, f32)> + '_ {
        self.in_neighbors(v)
            .iter()
            .copied()
            .zip(self.in_probs(v).iter().copied())
    }

    /// Iterates every edge as `(source, target, probability)` in forward CSR
    /// order.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex, f32)> + '_ {
        (0..self.num_vertices).flat_map(move |u| self.out_edges(u).map(move |(v, p)| (u, v, p)))
    }

    /// True if the directed edge `(u, v)` exists (binary search on the
    /// sorted adjacency of `u`).
    #[must_use]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// The probability of edge `(u, v)`, if present.
    #[must_use]
    pub fn edge_prob(&self, u: Vertex, v: Vertex) -> Option<f32> {
        self.out_neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.out_probs(u)[i])
    }

    /// Sum of in-edge probabilities of `v` (the LT "total incoming weight").
    #[must_use]
    pub fn in_weight_sum(&self, v: Vertex) -> f64 {
        self.in_probs(v).iter().map(|&p| f64::from(p)).sum()
    }

    /// Resident bytes of the CSR arrays (used by the memory experiments).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.out_offsets.len() + self.in_offsets.len()) * size_of::<usize>()
            + (self.out_targets.len() + self.in_sources.len()) * size_of::<Vertex>()
            + (self.out_probs.len() + self.in_probs.len()) * size_of::<f32>()
    }

    /// Content fingerprint of the graph: an FNV-1a fold over `n`, `m`, the
    /// forward CSR arrays, and the bit patterns of the edge probabilities.
    /// Two graphs fingerprint equal iff their forward CSR content is
    /// byte-identical (the reverse CSR is derived from the same edges), so
    /// the serve mode's sketch snapshots can refuse restoration against a
    /// different graph without storing the graph itself.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        #[inline]
        fn fold(h: &mut u64, x: u64) {
            for shift in (0..64).step_by(8) {
                *h ^= (x >> shift) & 0xFF;
                *h = h.wrapping_mul(FNV_PRIME);
            }
        }
        let mut h = FNV_OFFSET;
        fold(&mut h, u64::from(self.num_vertices));
        fold(&mut h, self.out_targets.len() as u64);
        for &o in &self.out_offsets {
            fold(&mut h, o as u64);
        }
        for &t in &self.out_targets {
            fold(&mut h, u64::from(t));
        }
        for &p in &self.out_probs {
            fold(&mut h, u64::from(p.to_bits()));
        }
        h
    }

    /// Checks the internal invariants; used by tests and after IO.
    ///
    /// Invariants: offset arrays are monotone and span the edge arrays; both
    /// directions contain the same edge multiset; adjacency lists are sorted;
    /// probabilities are finite and in `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices as usize;
        if self.out_offsets.len() != n + 1 || self.in_offsets.len() != n + 1 {
            return Err("offset arrays must have n+1 entries".into());
        }
        for w in [&self.out_offsets, &self.in_offsets] {
            if w[0] != 0 || *w.last().unwrap() != self.out_targets.len() {
                return Err("offsets must start at 0 and end at m".into());
            }
            if w.windows(2).any(|p| p[0] > p[1]) {
                return Err("offsets must be monotone".into());
            }
        }
        if self.out_targets.len() != self.out_probs.len()
            || self.in_sources.len() != self.in_probs.len()
            || self.out_targets.len() != self.in_sources.len()
        {
            return Err("edge arrays must have equal lengths".into());
        }
        for v in 0..self.num_vertices {
            if self.out_neighbors(v).windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("out-adjacency of {v} not strictly sorted"));
            }
            if self.in_neighbors(v).windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("in-adjacency of {v} not strictly sorted"));
            }
        }
        if self
            .out_probs
            .iter()
            .chain(self.in_probs.iter())
            .any(|p| !p.is_finite() || !(0.0..=1.0).contains(p))
        {
            return Err("probabilities must be finite in [0,1]".into());
        }
        // Directions agree: every out-edge appears as an in-edge with the
        // same probability.
        let mut fwd: Vec<(Vertex, Vertex, u32)> =
            self.edges().map(|(u, v, p)| (u, v, p.to_bits())).collect();
        let mut rev: Vec<(Vertex, Vertex, u32)> = (0..self.num_vertices)
            .flat_map(|v| self.in_edges(v).map(move |(u, p)| (u, v, p.to_bits())))
            .collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        if fwd != rev {
            return Err("forward and reverse CSR disagree".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn diamond() -> crate::Graph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.25).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 0.75).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn adjacency_contents() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_probs(0), &[0.5, 0.25]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_probs(3), &[1.0, 0.75]);
    }

    #[test]
    fn edge_queries() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edge_prob(2, 3), Some(0.75));
        assert_eq!(g.edge_prob(3, 2), None);
    }

    #[test]
    fn edge_iterator_covers_all() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(0, 1, 0.5)));
        assert!(edges.contains(&(2, 3, 0.75)));
    }

    #[test]
    fn validates() {
        diamond().validate().unwrap();
    }

    #[test]
    fn fingerprint_distinguishes_content() {
        let g = diamond();
        assert_eq!(g.fingerprint(), diamond().fingerprint(), "deterministic");
        // Different probability: different fingerprint.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.25).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        let other = b.build().unwrap();
        assert_ne!(g.fingerprint(), other.fingerprint());
        // Different topology: different fingerprint.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        let sparse = b.build().unwrap();
        assert_ne!(g.fingerprint(), sparse.fingerprint());
        // Vertex count matters even with no edges.
        let e3 = GraphBuilder::new(3).build().unwrap();
        let e4 = GraphBuilder::new(4).build().unwrap();
        assert_ne!(e3.fingerprint(), e4.fingerprint());
    }

    #[test]
    fn in_weight_sum() {
        let g = diamond();
        assert!((g.in_weight_sum(3) - 1.75).abs() < 1e-9);
        assert_eq!(g.in_weight_sum(0), 0.0);
    }

    #[test]
    fn resident_bytes_positive() {
        assert!(diamond().resident_bytes() > 0);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(g.is_empty());
        assert_eq!(g.num_edges(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn isolated_vertices() {
        let g = GraphBuilder::new(5).build().unwrap();
        for v in 0..5 {
            assert_eq!(g.out_degree(v), 0);
            assert_eq!(g.in_degree(v), 0);
        }
        g.validate().unwrap();
    }
}
