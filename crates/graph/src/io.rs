//! Graph I/O: SNAP-style edge-list text and a compact binary format.
//!
//! The text format is line-oriented: `source<ws>target[<ws>probability]`,
//! with `#`-prefixed comment lines, exactly what the SNAP collection ships.
//! Vertex ids are remapped densely in first-appearance order when
//! `read_edge_list` is given `VertexIds::Remap` (SNAP files have gaps), or
//! taken literally with `VertexIds::Literal`.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::{GraphError, Vertex};
use crate::weights::WeightModel;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// How textual vertex ids map to internal ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VertexIds {
    /// Ids in the file are used as-is; the vertex count is `max id + 1`.
    Literal,
    /// Ids are remapped densely in first-appearance order (SNAP files have
    /// sparse id spaces).
    Remap,
}

/// Options for reading an edge list.
#[derive(Clone, Copy, Debug)]
pub struct EdgeListOptions {
    /// Id handling (default: remap).
    pub vertex_ids: VertexIds,
    /// Treat each line as an undirected edge (insert both directions).
    pub undirected: bool,
    /// Probability assigned to edges without an explicit third column.
    pub default_prob: f32,
    /// Weight model applied after loading; `None` keeps file probabilities.
    pub weights: Option<WeightModel>,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        Self {
            vertex_ids: VertexIds::Remap,
            undirected: false,
            default_prob: 1.0,
            weights: None,
        }
    }
}

/// Reads an edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R, options: EdgeListOptions) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut raw_edges: Vec<(u64, u64, f32)> = Vec::new();
    let mut max_id = 0u64;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: u64 = parse_field(parts.next(), line_no, "source")?;
        let v: u64 = parse_field(parts.next(), line_no, "target")?;
        let p: f32 = match parts.next() {
            Some(tok) => tok.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid probability `{tok}`"),
            })?,
            None => options.default_prob,
        };
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "too many fields (expected 2 or 3)".into(),
            });
        }
        max_id = max_id.max(u).max(v);
        raw_edges.push((u, v, p));
    }

    let (num_vertices, edges) = match options.vertex_ids {
        VertexIds::Literal => {
            if !raw_edges.is_empty() && max_id >= u64::from(u32::MAX) {
                return Err(GraphError::TooLarge(format!(
                    "literal vertex id {max_id} exceeds u32 range"
                )));
            }
            let n = if raw_edges.is_empty() {
                0
            } else {
                (max_id + 1) as u32
            };
            let edges: Vec<(Vertex, Vertex, f32)> = raw_edges
                .into_iter()
                .map(|(u, v, p)| (u as Vertex, v as Vertex, p))
                .collect();
            (n, edges)
        }
        VertexIds::Remap => {
            let mut map: HashMap<u64, Vertex> = HashMap::new();
            let mut next: Vertex = 0;
            let mut edges = Vec::with_capacity(raw_edges.len());
            for (u, v, p) in raw_edges {
                let mut id_of = |x: u64| -> Result<Vertex, GraphError> {
                    if let Some(&id) = map.get(&x) {
                        return Ok(id);
                    }
                    if next == u32::MAX {
                        return Err(GraphError::TooLarge(
                            "more than u32::MAX distinct vertices".into(),
                        ));
                    }
                    let id = next;
                    map.insert(x, id);
                    next += 1;
                    Ok(id)
                };
                let iu = id_of(u)?;
                let iv = id_of(v)?;
                edges.push((iu, iv, p));
            }
            (next, edges)
        }
    };

    let mut builder = GraphBuilder::new(num_vertices);
    builder.reserve(edges.len() * if options.undirected { 2 } else { 1 });
    if let Some(model) = options.weights {
        let mut wb = builder.assign_weights(model);
        for (u, v, _) in edges {
            if options.undirected {
                wb.add_undirected(u, v)?;
            } else {
                wb.add_arc(u, v)?;
            }
        }
        wb.build()
    } else {
        for (u, v, p) in edges {
            if options.undirected {
                builder.add_undirected(u, v, p)?;
            } else {
                builder.add_edge(u, v, p)?;
            }
        }
        builder.build()
    }
}

fn parse_field(tok: Option<&str>, line: usize, what: &str) -> Result<u64, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what} field"),
    })?;
    tok.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} `{tok}`"),
    })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    options: EdgeListOptions,
) -> Result<Graph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, options)
}

/// Writes the graph as a `source target probability` edge list.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# ripples-rs edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v, p) in graph.edges() {
        writeln!(w, "{u}\t{v}\t{p}")?;
    }
    w.flush()?;
    Ok(())
}

const BINARY_MAGIC: &[u8; 8] = b"RIPGRPH1";

/// Serializes the graph to a compact little-endian binary stream.
///
/// Layout: magic, n (u32), m (u64), then per-edge (source u32, target u32,
/// prob f32) in forward CSR order. The reverse CSR is rebuilt on load.
pub fn write_binary<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&graph.num_vertices().to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for (u, v, p) in graph.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
        w.write_all(&p.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Deserializes a graph written by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| GraphError::Corrupt(format!("missing magic: {e}")))?;
    if &magic != BINARY_MAGIC {
        return Err(GraphError::Corrupt("bad magic".into()));
    }
    let mut buf4 = [0u8; 4];
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf4)?;
    let n = u32::from_le_bytes(buf4);
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8);
    if m > u64::from(u32::MAX) {
        return Err(GraphError::Corrupt("edge count exceeds u32 limit".into()));
    }
    let mut builder = GraphBuilder::new(n);
    builder.reserve(m as usize);
    for i in 0..m {
        let mut edge = [0u8; 12];
        r.read_exact(&mut edge)
            .map_err(|_| GraphError::Corrupt(format!("truncated at edge {i} of {m}")))?;
        let u = u32::from_le_bytes(edge[0..4].try_into().unwrap());
        let v = u32::from_le_bytes(edge[4..8].try_into().unwrap());
        let p = f32::from_le_bytes(edge[8..12].try_into().unwrap());
        builder
            .add_edge(u, v, p)
            .map_err(|e| GraphError::Corrupt(format!("invalid edge {i}: {e}")))?;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.25).unwrap();
        b.add_edge(2, 3, 0.125).unwrap();
        b.add_edge(3, 0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(
            buf.as_slice(),
            EdgeListOptions {
                vertex_ids: VertexIds::Literal,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTAGRPH\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(
            read_binary(buf.as_slice()),
            Err(GraphError::Corrupt(_))
        ));
    }

    #[test]
    fn parses_comments_and_default_probs() {
        let text = "# a comment\n% another\n0 1\n1 2 0.5\n\n";
        let g = read_edge_list(
            text.as_bytes(),
            EdgeListOptions {
                vertex_ids: VertexIds::Literal,
                default_prob: 0.75,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_prob(0, 1), Some(0.75));
        assert_eq!(g.edge_prob(1, 2), Some(0.5));
    }

    #[test]
    fn remap_compacts_sparse_ids() {
        let text = "100 200\n200 4000\n";
        let g = read_edge_list(text.as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn undirected_doubles_edges() {
        let text = "0 1\n";
        let g = read_edge_list(
            text.as_bytes(),
            EdgeListOptions {
                vertex_ids: VertexIds::Literal,
                undirected: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["0\n", "a b\n", "0 1 x\n", "0 1 0.5 9\n"] {
            let err = read_edge_list(bad.as_bytes(), EdgeListOptions::default()).unwrap_err();
            assert!(matches!(err, GraphError::Parse { .. }), "input {bad:?}");
        }
    }

    #[test]
    fn weight_model_overrides_file_probs() {
        let text = "0 1 0.9\n1 2 0.9\n";
        let g = read_edge_list(
            text.as_bytes(),
            EdgeListOptions {
                vertex_ids: VertexIds::Literal,
                weights: Some(WeightModel::Constant(0.1)),
                ..Default::default()
            },
        )
        .unwrap();
        for (_, _, p) in g.edges() {
            assert!((p - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes(), EdgeListOptions::default()).unwrap();
        assert!(g.is_empty());
    }
}
